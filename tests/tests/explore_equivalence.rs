//! Engine-equivalence guarantees of the exploration rework: the
//! fingerprinted, exact, and parallel engines must produce *the same
//! graph* — identical statistics, identical state indexing, identical
//! edges, identical counterexample traces — on every scenario in the
//! repository, so that switching engines can never change a checking
//! verdict.
//!
//! Also covered: the deliberate-collision knob (`fp_bits`) showing
//! that fingerprint collisions only ever *under*-approximate and that
//! exact mode recovers the full space, and a property-based check that
//! the compiled successor stepper agrees with the interpretive one on
//! every reachable state.

use opentla_check::{
    check_invariant, explore, explore_parallel, CompiledSystem, EvalScratch, ExploreOptions,
    StateGraph, System, VisitedMode,
};
use opentla_kernel::Expr;
use opentla_queue::{FairnessStyle, QueueChain};
use opentla_scenarios::{AlternatingBit, ArbiterFairness, Mutex, TokenRing};
use proptest::prelude::*;

/// Every scenario family in the repo, at sizes that keep the whole
/// file fast while still giving the parallel engine real breadth.
fn scenarios() -> Vec<(&'static str, System)> {
    vec![
        (
            "abp",
            AlternatingBit::new(2).complete_system().expect("abp builds"),
        ),
        (
            "mutex",
            Mutex::with_clients(2, ArbiterFairness::Weak)
                .product()
                .expect("mutex builds"),
        ),
        (
            "ring",
            TokenRing::new(3).complete_system().expect("ring builds"),
        ),
        (
            "chain2",
            QueueChain::new(2, 1, 2, FairnessStyle::Joint)
                .complete_system()
                .expect("chain2 builds"),
        ),
        (
            "chain3",
            QueueChain::new(3, 1, 2, FairnessStyle::Joint)
                .complete_system()
                .expect("chain3 builds"),
        ),
    ]
}

/// Byte-for-byte graph equality: statistics, state arena (order
/// included), initial states, every edge list, and the BFS tree as
/// observed through shortest traces.
fn assert_identical(name: &str, a: &StateGraph, b: &StateGraph) {
    assert_eq!(a.stats(), b.stats(), "{name}: stats differ");
    assert_eq!(a.states(), b.states(), "{name}: state order differs");
    assert_eq!(a.init(), b.init(), "{name}: initial states differ");
    for id in 0..a.len() {
        assert_eq!(a.edges(id), b.edges(id), "{name}: edges of {id} differ");
        assert_eq!(
            a.trace_to(id),
            b.trace_to(id),
            "{name}: shortest trace to {id} differs"
        );
    }
    assert_eq!(a.deadlocks(), b.deadlocks(), "{name}: deadlocks differ");
}

#[test]
fn exact_mode_is_identical_to_fingerprint_mode_everywhere() {
    for (name, sys) in scenarios() {
        let fp = explore(&sys, &ExploreOptions::default()).unwrap();
        let exact = explore(
            &sys,
            &ExploreOptions {
                mode: VisitedMode::Exact,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert_identical(name, &fp, &exact);
    }
}

#[test]
fn parallel_engine_is_identical_to_sequential_everywhere() {
    for (name, sys) in scenarios() {
        let seq = explore(&sys, &ExploreOptions::default()).unwrap();
        for threads in [1, 2, 4] {
            for mode in [VisitedMode::Fingerprint, VisitedMode::Exact] {
                let par = explore_parallel(
                    &sys,
                    &ExploreOptions {
                        threads: Some(threads),
                        mode,
                        ..ExploreOptions::default()
                    },
                )
                .unwrap();
                assert_identical(&format!("{name}/threads={threads}/{mode:?}"), &seq, &par);
            }
        }
    }
}

/// Counterexamples — the user-visible artifact of a check — must not
/// depend on the engine. "Every variable stays at its initial value"
/// fails at the first transition of every scenario, so it yields a
/// short counterexample everywhere.
#[test]
fn counterexample_traces_do_not_depend_on_the_engine() {
    for (name, sys) in scenarios() {
        let seq = explore(&sys, &ExploreOptions::default()).unwrap();
        let par = explore_parallel(
            &sys,
            &ExploreOptions {
                threads: Some(3),
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        let frozen = sys
            .vars()
            .iter()
            .map(|v| Expr::var(v).eq(Expr::con(seq.state(seq.init()[0]).get(v).clone())))
            .reduce(|a, b| a.and(b))
            .expect("at least one variable");
        let cx_seq = check_invariant(&sys, &seq, &frozen).unwrap();
        let cx_par = check_invariant(&sys, &par, &frozen).unwrap();
        match (cx_seq.counterexample(), cx_par.counterexample()) {
            (Some(a), Some(b)) => {
                assert_eq!(a.states(), b.states(), "{name}: trace states differ");
                assert_eq!(a.actions(), b.actions(), "{name}: trace actions differ");
                assert_eq!(a.reason(), b.reason(), "{name}: reasons differ");
            }
            (a, b) => panic!(
                "{name}: engines disagree on the verdict (seq: {:?}, par: {:?})",
                a.is_some(),
                b.is_some()
            ),
        }
    }
}

/// Forcing fingerprint collisions (`fp_bits` far below 64) can only
/// shrink the explored space — never invent states — and every state
/// the collided run does report is genuinely reachable. Exact mode is
/// immune to the knob: it recovers the full space at any width.
#[test]
fn forced_collisions_underapproximate_and_exact_mode_recovers() {
    let sys = QueueChain::new(2, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .expect("chain builds");
    let full = explore(&sys, &ExploreOptions::default()).unwrap();
    for threads in [1, 4] {
        let collided = explore_parallel(
            &sys,
            &ExploreOptions {
                fp_bits: 8,
                threads: Some(threads),
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert!(
            collided.len() < full.len(),
            "8-bit fingerprints over {} states must collide",
            full.len()
        );
        for s in collided.states() {
            assert!(
                full.index_of(s).is_some(),
                "collided run reported an unreachable state"
            );
        }
        let exact = explore_parallel(
            &sys,
            &ExploreOptions {
                fp_bits: 8,
                mode: VisitedMode::Exact,
                threads: Some(threads),
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert_identical("exact recovery", &full, &exact);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The compiled successor stepper agrees with the interpretive
    /// `System::successors` on arbitrary reachable states.
    #[test]
    fn compiled_successors_match_interpretive(pick in any::<u64>()) {
        let sys = Mutex::with_clients(2, ArbiterFairness::Weak)
            .product()
            .expect("mutex builds");
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let s = graph.state(pick as usize % graph.len());
        let interpreted = sys.successors(s).unwrap();
        let compiled = CompiledSystem::compile(&sys);
        let mut out = Vec::new();
        let mut scratch = EvalScratch::new();
        compiled.successors_into(s, &mut out, &mut scratch).unwrap();
        prop_assert_eq!(interpreted, out);
    }
}
