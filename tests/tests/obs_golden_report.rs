//! Golden-report test for the observability layer: real scenarios
//! (the alternating-bit protocol and a two-queue chain) explored under
//! a [`JsonlRecorder`], with every emitted line parsed and validated
//! against the schema — phase nesting well-formed, timestamps
//! monotonic, final progress snapshot equal to the run report — and
//! the stream's *shape* (event kinds, field sets, run ordering)
//! snapshotted. Timings are never asserted, so the test is
//! deterministic.

use opentla_check::{
    explore_governed_with, obs::validate_stream, obs::StreamSummary, Budget, ExploreOptions,
    JsonlRecorder, RecorderHandle, System, VisitedMode,
};
use opentla_queue::{FairnessStyle, QueueChain};
use opentla_scenarios::AlternatingBit;
use std::io::Write;
use std::sync::{Arc, Mutex};

/// A `Write` sink shared with the test, so the recorder's output can
/// be read back without touching the filesystem.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// The engine matrix every scenario is recorded under: sequential
/// fingerprinted, sequential exact, and 4-worker parallel.
const CONFIGS: [(VisitedMode, usize); 3] = [
    (VisitedMode::Fingerprint, 1),
    (VisitedMode::Exact, 1),
    (VisitedMode::Fingerprint, 4),
];

/// Explores `sys` under all of [`CONFIGS`] into one JSONL stream and
/// returns the raw text plus its validated summary.
fn recorded_stream(sys: &System) -> (String, StreamSummary) {
    let buf = Arc::new(Mutex::new(Vec::new()));
    let recorder = Arc::new(JsonlRecorder::from_writer(SharedBuf(buf.clone())));
    let handle = RecorderHandle::new(recorder.clone());
    for (mode, threads) in CONFIGS {
        let budget = Budget::default().with_recorder(handle.clone());
        let opts = ExploreOptions {
            mode,
            threads: Some(threads),
            // The golden shape deliberately pins parallel
            // instrumentation (worker_level events) on a tiny graph,
            // so disable the small-graph sequential routing here.
            small_graph_cutoff: Some(0),
            ..ExploreOptions::default()
        };
        let run = explore_governed_with(sys, &budget, &opts).expect("explores");
        assert!(run.outcome.is_complete());
    }
    recorder.flush();
    let text = String::from_utf8(buf.lock().unwrap().clone()).expect("utf-8 stream");
    let summary = validate_stream(&text)
        .unwrap_or_else(|e| panic!("stream fails schema validation: {e}\n{text}"));
    (text, summary)
}

fn scenarios() -> Vec<(&'static str, System)> {
    vec![
        (
            "abp",
            AlternatingBit::new(2).complete_system().expect("abp builds"),
        ),
        (
            "chain2",
            QueueChain::new(2, 1, 2, FairnessStyle::Joint)
                .complete_system()
                .expect("chain2 builds"),
        ),
    ]
}

/// Schema validity plus cross-engine agreement: one run report per
/// engine config, all complete, all with identical state/transition/
/// depth totals (the acceptance criterion's byte-identical totals).
#[test]
fn golden_streams_validate_and_engines_agree() {
    for (name, sys) in scenarios() {
        let (_text, summary) = recorded_stream(&sys);
        assert_eq!(summary.runs.len(), CONFIGS.len(), "{name}: one report per engine");
        let first = &summary.runs[0];
        assert!(first.states > 0 && first.transitions > 0, "{name}: empty run");
        for run in &summary.runs {
            assert!(run.complete, "{name}: {} did not complete", run.engine);
            let (a, b) = (
                format!("{}/{}/{}", run.states, run.transitions, run.depth),
                format!("{}/{}/{}", first.states, first.transitions, first.depth),
            );
            assert_eq!(a, b, "{name}: {} totals diverge", run.engine);
        }
        // The engine labels and modes record what actually ran.
        assert_eq!(summary.runs[0].engine, "explore_sequential");
        assert_eq!(summary.runs[0].mode, "fingerprint");
        assert_eq!(summary.runs[1].engine, "explore_sequential");
        assert_eq!(summary.runs[1].mode, "exact");
        assert_eq!(summary.runs[2].engine, "explore_parallel");
        assert_eq!(summary.runs[2].threads, 4, "{name}");
    }
}

/// The stream's shape — which event kinds appear and which fields each
/// kind carries — is golden. Timings, counts-of-progress-events, and
/// other run-to-run variation are deliberately not asserted.
#[test]
fn golden_stream_shape() {
    let (_text, summary) = recorded_stream(&scenarios().remove(0).1);

    let kinds: Vec<&str> = summary.kinds.keys().map(String::as_str).collect();
    assert_eq!(
        kinds,
        [
            "phase_enter",
            "phase_exit",
            "progress",
            "run_end",
            "run_start",
            "worker_level"
        ],
        "event-kind set changed — update the golden shape deliberately"
    );

    let fields = |kind: &str| -> Vec<&str> {
        summary.fields[kind].iter().map(String::as_str).collect()
    };
    assert_eq!(fields("run_start"), ["v", "t", "ev", "engine", "threads", "mode"]);
    assert_eq!(fields("run_end"), ["v", "t", "ev", "report"]);
    assert_eq!(fields("phase_enter"), ["v", "t", "ev", "phase"]);
    assert_eq!(fields("phase_exit"), ["v", "t", "ev", "phase"]);
    assert_eq!(
        fields("worker_level"),
        ["v", "t", "ev", "worker", "level", "claimed", "inserted"]
    );
    // Progress fields: the core four always, the optional
    // frontier/level context on the per-level snapshots.
    let progress = fields("progress");
    for required in ["v", "t", "ev", "states", "transitions", "elapsed_nanos", "states_per_sec"] {
        assert!(progress.contains(&required), "progress missing {required}: {progress:?}");
    }

    // Phase nesting: exploration phases never nest inside each other.
    assert_eq!(summary.max_phase_depth, 1);
}

/// Event ordering within each run is golden: run_start first, then the
/// exploration phases in engine order, a final exact progress
/// snapshot, and run_end last.
#[test]
fn golden_event_ordering() {
    let (text, _summary) = recorded_stream(&scenarios().remove(1).1);
    let kinds_in_order: Vec<String> = text
        .lines()
        .filter(|l| !l.trim().is_empty())
        .map(|l| {
            let obj = opentla_check::obs::Json::parse(l).expect("valid line");
            obj.get("ev").and_then(|j| j.as_str()).expect("ev field").to_string()
        })
        .collect();
    assert_eq!(kinds_in_order.first().map(String::as_str), Some("run_start"));
    assert_eq!(kinds_in_order.last().map(String::as_str), Some("run_end"));
    // Each run_end is immediately preceded by the final exact progress
    // snapshot explore emits from the finished graph's statistics.
    for (i, kind) in kinds_in_order.iter().enumerate() {
        if kind == "run_end" {
            assert_eq!(
                kinds_in_order[i - 1],
                "progress",
                "run_end at event {i} not preceded by the final snapshot"
            );
        }
    }
    // Runs are sequential: a run_start only ever follows a run_end (or
    // opens the stream).
    for (i, kind) in kinds_in_order.iter().enumerate() {
        if kind == "run_start" && i > 0 {
            assert_eq!(kinds_in_order[i - 1], "run_end", "run_start at event {i} nested");
        }
    }
}
