//! Adversarial fault injection end-to-end: the flagship lossy-ABP and
//! crash–restart queue-chain demos, a saboteur driven by
//! `faults::hostile_env`, and resource-governed checking degrading to
//! partial results.
//!
//! The point of every diagnosis below is the paper's `⊳` margin: when
//! the environment first breaks its assumption `E` at step `k`, the
//! guarantee `M` is still intact at state `k` — "M held k+1 steps,
//! E broken at step k", one step longer.

use opentla::{check_ag_safety_diagnosed, escalate, faults, Budget, Outcome};
use opentla_check::{explore, explore_governed, ExploreOptions, Verdict};
use opentla_kernel::Formula;
use opentla_queue::{FairnessStyle, QueueChain};
use opentla_scenarios::AlternatingBit;

#[test]
fn lossy_abp_wire_produces_a_one_step_longer_diagnosis() {
    let w = AlternatingBit::new(2);
    let sys = w.lossy_system().unwrap();
    let graph = explore(&sys, &ExploreOptions::default()).unwrap();
    // In-order delivery is genuinely lost…
    assert!(
        !opentla_check::check_invariant(&sys, &graph, &w.in_order_invariant())
            .unwrap()
            .holds(),
        "the lossy wire must deliver a stale payload"
    );
    // …but the receiver's E_r ⊳ M_r survives, with the loss pinned on
    // the injected fault.
    let report = check_ag_safety_diagnosed(
        &sys,
        &graph,
        &w.receiver_assumption(),
        &w.receiver_guarantee(),
    )
    .unwrap();
    assert!(report.holds());
    let brk = report.env_break.expect("the fault must break E_r");
    assert_eq!(brk.action.as_deref(), Some("fault:lossy[sync_f]"));
    let text = brk.to_string();
    assert!(text.contains(&format!("E broken at step {}", brk.step)), "{text}");
    assert!(
        text.contains(&format!("M held {} steps", brk.step + 1)),
        "{text}"
    );
    // The trace really ends at the breaking state.
    assert_eq!(brk.trace.states().len(), brk.step + 1);
}

#[test]
fn crash_restart_environment_is_outlived_by_the_chained_queues() {
    let chain = QueueChain::new(2, 1, 2, FairnessStyle::None);
    let sys = chain.crashy_env_system().unwrap();
    let graph = explore(&sys, &ExploreOptions::default()).unwrap();
    let report = check_ag_safety_diagnosed(
        &sys,
        &graph,
        &chain.outer_assumption(),
        &chain.big_queue_guarantee().unwrap(),
    )
    .unwrap();
    assert!(
        report.holds(),
        "retracting a pending handshake hurts only the environment"
    );
    let brk = report.env_break.expect("the crash must break QE");
    assert_eq!(brk.action.as_deref(), Some("fault:crash_restart"));
    assert!(
        brk.to_string()
            .contains(&format!("M held {} steps", brk.step + 1)),
        "{brk}"
    );
}

#[test]
fn crash_restart_queue_is_refuted_with_action_and_step() {
    let chain = QueueChain::new(2, 1, 2, FairnessStyle::None);
    let sys = chain.crashy_queue_system(1).unwrap();
    let graph = explore(&sys, &ExploreOptions::default()).unwrap();
    let report = check_ag_safety_diagnosed(
        &sys,
        &graph,
        &chain.outer_assumption(),
        &chain.big_queue_guarantee().unwrap(),
    )
    .unwrap();
    assert!(!report.holds(), "a crashed buffer drops queued elements");
    let cx = match &report.verdict {
        Verdict::Violated(cx) => cx,
        other => panic!("expected a violation, got {other:?}"),
    };
    // The improved diagnosis names the offending action, the step it
    // struck, and the violated conjunct of the guarantee.
    assert!(cx.reason().contains("fault:crash_restart"), "{}", cx.reason());
    assert!(cx.reason().contains("step"), "{}", cx.reason());
    assert!(cx.reason().contains("violated conjunct"), "{}", cx.reason());
}

#[test]
fn hostile_env_saboteur_breaks_the_assumption_on_schedule() {
    // Arm a saboteur against the ABP's in-order invariant, used here
    // as the environment assumption of the *sender*'s view: normal
    // protocol actions maintain it, so only the saboteur can break it
    // — and only once the step clock reaches `break_at`.
    let w = AlternatingBit::new(2);
    let base = w.complete_system().unwrap();
    let break_at = 2;
    let sys = faults::hostile_env(&base, &w.in_order_invariant(), break_at).unwrap();
    let graph = explore(&sys, &ExploreOptions::default()).unwrap();
    let env = Formula::pred(w.in_order_invariant()).always();
    let report = check_ag_safety_diagnosed(
        &sys,
        &graph,
        &env,
        &w.sender_guarantee(),
    )
    .unwrap();
    assert!(report.holds(), "the saboteur leaves the sender untouched");
    let brk = report.env_break.expect("the saboteur must break E");
    let action = brk.action.as_deref().unwrap();
    assert!(
        action.starts_with("fault:hostile_env"),
        "expected a saboteur action, got {action}"
    );
    // The clock keeps the saboteur disarmed before `break_at`, so the
    // break can only land strictly after that many steps.
    assert!(
        brk.step > break_at as usize,
        "break at step {} despite break_at = {break_at}",
        brk.step
    );
}

#[test]
fn governed_exploration_of_a_faulted_system_degrades_gracefully() {
    let w = AlternatingBit::new(2);
    let sys = w.lossy_system().unwrap();
    // A budget of 3 states exhausts but still hands back the partial
    // graph with honest statistics and a nonempty frontier.
    let run = explore_governed(&sys, &Budget::default().states(3)).unwrap();
    assert_eq!(run.graph.len(), 3);
    match &run.outcome {
        Outcome::Exhausted {
            reason,
            frontier_size,
            stats,
            ..
        } => {
            assert_eq!(stats.states, 3);
            assert!(*frontier_size > 0, "work must remain");
            assert!(reason.to_string().contains("state limit of 3"));
        }
        other => panic!("expected exhaustion, got {other}"),
    }
    // Geometric escalation eventually completes the same exploration.
    let full = escalate(&Budget::default().states(3), 4, 6, |b| {
        explore_governed(&sys, b)
    })
    .unwrap();
    assert!(full.outcome.is_complete());
    assert_eq!(
        full.graph.len(),
        explore(&sys, &ExploreOptions::default()).unwrap().len()
    );
}
