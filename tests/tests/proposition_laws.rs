//! Semantic validation of Propositions 1, 3, and 4 over randomly
//! generated canonical components and exhaustively enumerated behavior
//! sets — the syntactic proof rules checked against the trace oracle.

use opentla::{ComponentSpec, disjoint, proposition_3_reduction};
use opentla_check::{GuardedAction, Init};
use opentla_kernel::{Domain, Expr, Formula, Value, VarId, Vars};
use opentla_semantics::{all_lassos, eval, EvalCtx, Universe};
use proptest::prelude::*;

/// A random guarded action over two bit variables: `if a = ga then
/// target := tv`, where the guard variable, guard value, target, and
/// target value are drawn.
fn arb_action(vars: [VarId; 2]) -> impl Strategy<Value = GuardedAction> {
    (0..2usize, 0..2i64, 0..2usize, 0..2i64).prop_map(move |(gv, gval, tv, tval)| {
        GuardedAction::new(
            format!("a{gv}{gval}{tv}{tval}"),
            Expr::var(vars[gv]).eq(Expr::int(gval)),
            vec![(vars[tv], Expr::int(tval))],
        )
    })
}

fn two_bit_world() -> (Vars, VarId, VarId) {
    let mut vars = Vars::new();
    let a = vars.declare("a", Domain::bits());
    let b = vars.declare("b", Domain::bits());
    (vars, a, b)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// **Proposition 1**, semantically: for a random canonical
    /// component `Init ∧ □[N]_v ∧ WF(sub-action)`, the closure computed
    /// syntactically (the safety part) agrees with the *semantic*
    /// closure (every prefix extendable) on every lasso of the
    /// two-bit universe. (Behavior length is kept small because the
    /// semantic side runs the bounded extension search per prefix.)
    #[test]
    fn proposition_1_semantic(
        act1 in two_bit_world_actions(),
        act2 in two_bit_world_actions(),
        fair_first in any::<bool>(),
    ) {
        let (vars, a, b) = two_bit_world();
        let component = ComponentSpec::builder("rand")
            .outputs([a, b])
            .init(Init::new([(a, Value::Int(0)), (b, Value::Int(0))]))
            .action(act1)
            .action(act2)
            .weak_fairness([usize::from(!fair_first)])
            .build()
            .unwrap();
        let full = component.formula();
        let syntactic_closure = component.closure(); // Proposition 1.
        let universe = Universe::new(vars);
        let ctx = EvalCtx::with_universe(universe.clone());
        for sigma in all_lassos(&universe, 2) {
            // Semantic closure of the full formula: C(full).
            let semantic = eval(&full.clone().closure(), &sigma, &ctx).unwrap();
            let syntactic = eval(&syntactic_closure, &sigma, &ctx).unwrap();
            prop_assert_eq!(
                semantic, syntactic,
                "Proposition 1 disagrees on {:?}", sigma
            );
        }
    }

    /// **Proposition 4**, semantically: for interleaving component
    /// closures `E` (owning `a`) and `M` (owning `b`), every behavior
    /// satisfying `(Init_E ∨ Init_M) ∧ Disjoint(a, b)` satisfies
    /// `C(E) ⊥ C(M)`.
    #[test]
    fn proposition_4_semantic(
        e_act in two_bit_world_actions(),
        m_act in two_bit_world_actions(),
    ) {
        let (vars, a, b) = two_bit_world();
        // Restrict each action to its owner's variable; skip draws that
        // update the other one (the strategy draws either).
        prop_assume!(e_act.touched().all(|v| v == a));
        prop_assume!(m_act.touched().all(|v| v == b));
        let e = ComponentSpec::builder("E")
            .outputs([a])
            .inputs([b])
            .init(Init::new([(a, Value::Int(0))]))
            .action(e_act)
            .build()
            .unwrap();
        let m = ComponentSpec::builder("M")
            .outputs([b])
            .inputs([a])
            .init(Init::new([(b, Value::Int(0))]))
            .action(m_act)
            .build()
            .unwrap();
        let init_disj = Formula::pred(Expr::any([
            e.init().as_pred(),
            m.init().as_pred(),
        ]));
        let g = disjoint(&[vec![a], vec![b]]);
        let hypothesis = init_disj.and(g);
        let conclusion = e.closure().ortho(m.closure());
        let universe = Universe::new(vars);
        let ctx = EvalCtx::with_universe(universe.clone());
        for sigma in all_lassos(&universe, 3) {
            let h = eval(&hypothesis, &sigma, &ctx).unwrap();
            let c = eval(&conclusion, &sigma, &ctx).unwrap();
            prop_assert!(!h || c, "Proposition 4 fails on {sigma:?}");
        }
    }
}

/// Helper strategy (proptest macros need a named function).
fn two_bit_world_actions() -> impl Strategy<Value = GuardedAction> {
    let (_, a, b) = two_bit_world();
    arb_action([a, b])
}

/// **Proposition 3**, as a validity-level statement over an enumerated
/// universe, with randomized instantiations of `E`, `M`, and `R` drawn
/// from canonical stay-at-zero / follower specs: whenever both
/// hypotheses are valid over the whole behavior set, so is the
/// conclusion.
#[test]
fn proposition_3_validity_combinations() {
    let (vars, a, b) = two_bit_world();
    let universe = Universe::new(vars);
    let ctx = EvalCtx::default();
    let stays = |v: VarId| {
        Formula::pred(Expr::var(v).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![v]))
    };
    let follower = |out: VarId, inp: VarId| {
        Formula::pred(Expr::var(out).eq(Expr::int(0))).and(Formula::act_box(
            Expr::all([
                Expr::prime(out).eq(Expr::var(inp)),
                Expr::prime(inp).eq(Expr::var(inp)),
            ]),
            vec![out],
        ))
    };
    let candidates_r = [Formula::tt(), follower(a, b), stays(a), disjoint(&[vec![a], vec![b]])];
    let lassos = all_lassos(&universe, 3);
    let mut checked = 0;
    for r in &candidates_r {
        let red = proposition_3_reduction(stays(b), r.clone(), stays(a), vec![a]);
        let h1_valid = lassos
            .iter()
            .all(|s| eval(&red.implication, s, &ctx).unwrap());
        let h2_valid = lassos
            .iter()
            .all(|s| eval(&red.orthogonality, s, &ctx).unwrap());
        if h1_valid && h2_valid {
            checked += 1;
            for sigma in &lassos {
                assert!(
                    eval(&red.conclusion, sigma, &ctx).unwrap(),
                    "Proposition 3 conclusion fails on {sigma:?} with R = {r:?}"
                );
            }
        }
    }
    assert!(checked >= 1, "at least one R must make the hypotheses valid");
}

/// The `Disjoint` guarantee of a closed product holds semantically on
/// every behavior the product can take (the structural claim that the
/// `compose` engine records as obligation `G`).
#[test]
fn closed_product_satisfies_disjoint_semantically() {
    use opentla_scenarios::Fig1;
    let w = Fig1::new();
    let sys = opentla::closed_product(w.vars(), &[&w.pi_c(), &w.pi_d()]).unwrap();
    let graph = opentla_check::explore(&sys, &opentla_check::ExploreOptions::default())
        .unwrap();
    let g = disjoint(&[vec![w.c()], vec![w.d()]]);
    let ctx = EvalCtx::default();
    // Walk a few behaviors of the product and evaluate G on them.
    for &init in graph.init() {
        let mut states = vec![graph.state(init).clone()];
        let mut cur = init;
        for _ in 0..4 {
            match graph.edges(cur).first() {
                Some(e) => {
                    cur = e.target;
                    states.push(graph.state(cur).clone());
                }
                None => break,
            }
        }
        let sigma = opentla_semantics::Lasso::stutter_extend(states).unwrap();
        assert!(eval(&g, &sigma, &ctx).unwrap());
    }
}
