//! End-to-end queue experiments at larger parameters than the unit
//! tests, plus negative controls.

use opentla::CompositionOptions;
use opentla_check::{
    check_invariant, check_liveness, explore, ExploreOptions, LiveTarget,
};
use opentla_kernel::Expr;
use opentla_queue::{DoubleQueue, FairnessStyle, QueueChain, SingleQueue};
use opentla_semantics::{eval, EvalCtx};

#[test]
fn single_queue_scales_with_capacity_and_values() {
    // State-space growth sanity across the parameter grid the
    // benchmarks sweep.
    let mut last = 0;
    for n in 1..=3 {
        let world = SingleQueue::new(n, 2, FairnessStyle::Joint);
        let sys = world.complete_system().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert!(
            graph.len() > last,
            "state space must grow with N: {} vs {last}",
            graph.len()
        );
        last = graph.len();
        let verdict =
            check_invariant(&sys, &graph, &world.capacity_invariant()).unwrap();
        assert!(verdict.holds(), "capacity invariant at N = {n}");
    }
}

#[test]
fn double_queue_composition_n2() {
    let w = DoubleQueue::new(2, 2, FairnessStyle::Joint);
    let cert = w.prove_composition(&CompositionOptions::default()).unwrap();
    assert!(cert.holds(), "{}", cert.display(w.vars()));
    assert!(cert.product_states > 500, "got {}", cert.product_states);
}

#[test]
fn double_queue_refinement_n2_v3() {
    let w = DoubleQueue::new(2, 3, FairnessStyle::Joint);
    let report = w.prove_refinement(&ExploreOptions::default()).unwrap();
    assert!(report.holds());
    assert!(report.simulation.holds());
}

#[test]
fn split_fairness_composition_also_proves() {
    // The paper's equivalence note: WF(Enq) ∧ WF(Deq) in place of
    // WF(Q_M) yields the same theorem, now with two H2b obligations.
    let w = DoubleQueue::new(1, 2, FairnessStyle::Split);
    let cert = w.prove_composition(&CompositionOptions::default()).unwrap();
    assert!(cert.holds(), "{}", cert.display(w.vars()));
    let h2b = cert
        .obligations
        .iter()
        .filter(|o| o.id.starts_with("H2b"))
        .count();
    assert_eq!(h2b, 2);
}

#[test]
fn value_transmission_is_faithful() {
    // FIFO end-to-end: if 1 is the only value ever sent, only 1 can
    // come out. Run the complete system where the environment is
    // restricted by construction of the value domain... with |V| = 2 we
    // instead check a step invariant: whatever Deq emits was at the
    // head of q.
    let world = SingleQueue::new(2, 2, FairnessStyle::Joint);
    let sys = world.complete_system().unwrap();
    let graph = explore(&sys, &ExploreOptions::default()).unwrap();
    // Step invariant: when o.sig flips (a Deq), the emitted o.val'
    // equals Head(q).
    let o = world.output();
    let q = world.q();
    let deq_emits_head = Expr::all([
        Expr::prime(o.sig).ne(Expr::var(o.sig)),
    ])
    .implies(Expr::prime(o.val).eq(Expr::var(q).head()));
    let all_vars: Vec<_> = world.vars().iter().collect();
    let verdict =
        opentla_check::check_step_invariant(&sys, &graph, &deq_emits_head, &all_vars)
            .unwrap();
    assert!(verdict.holds());
}

#[test]
fn pending_output_is_drained() {
    // Liveness through the pipe: a value in flight on o is eventually
    // acknowledged (the environment's Get is not fair, so this needs...
    // no — Get is an environment action with no fairness, so a pending
    // output may in fact linger forever. The dischargeable property is
    // the converse: a nonempty queue with a ready output channel
    // eventually sends (WF(Q_M) forces Deq).
    let world = SingleQueue::new(1, 2, FairnessStyle::Joint);
    let sys = world.complete_system().unwrap();
    let graph = explore(&sys, &ExploreOptions::default()).unwrap();
    let o = world.output();
    let p = Expr::all([
        o.ready_to_send(),
        Expr::var(world.q()).len().gt(Expr::int(0)),
    ]);
    let sent = o.ready_to_ack();
    let verdict =
        check_liveness(&sys, &graph, &LiveTarget::LeadsTo(p, sent)).unwrap();
    assert!(verdict.holds());

    // And the negative control: "a pending output is eventually
    // acknowledged" fails, because the environment never promised
    // fairness for Get.
    let verdict = check_liveness(
        &sys,
        &graph,
        &LiveTarget::LeadsTo(o.ready_to_ack(), o.ready_to_send()),
    )
    .unwrap();
    assert!(
        !verdict.holds(),
        "no fairness was assumed for the environment's Get"
    );
}

#[test]
fn chain_matches_double_at_k2() {
    // QueueChain with k = 2 proves the same statement as DoubleQueue.
    let chain = QueueChain::new(2, 1, 2, FairnessStyle::Joint);
    assert_eq!(chain.big_capacity(), 3);
    let cert = chain.prove_composition(&CompositionOptions::default()).unwrap();
    assert!(cert.holds());
    let dbl = DoubleQueue::new(1, 2, FairnessStyle::Joint);
    let cert2 = dbl.prove_composition(&CompositionOptions::default()).unwrap();
    assert_eq!(cert.product_states, cert2.product_states);
}

#[test]
fn composition_counterexamples_replay_semantically() {
    // Break queue 2 (capacity lie: claim the pair implements a
    // (2N+2)-element queue) and replay the failing obligation's
    // counterexample through the trace semantics.
    use opentla::{AgSpec, CompositionProblem};
    use opentla_kernel::{Domain, Substitution, Vars};
    use opentla_queue::queue_component;

    let w = DoubleQueue::new(1, 2, FairnessStyle::Joint);
    let mut vars: Vars = w.vars().clone();
    let q_big = vars.declare("q_too_big", Domain::seqs_up_to(w.values(), 4));
    let too_big = queue_component("QM[2N+2]", w.i(), w.o(), q_big, 4, FairnessStyle::Joint)
        .unwrap();
    let target = AgSpec::new(w.env().clone(), too_big).unwrap();
    let ag1 = w.ag1().unwrap();
    let ag2 = w.ag2().unwrap();
    let mapping = Substitution::new([(
        q_big,
        Expr::var(w.q2())
            .concat(w.z().in_flight())
            .concat(Expr::var(w.q1())),
    )]);
    let problem = CompositionProblem {
        vars: &vars,
        components: vec![&ag1, &ag2],
        target: &target,
        mapping,
    };
    let cert = opentla::compose(&problem, &CompositionOptions::default()).unwrap();
    // The safety part still holds (a too-big abstract queue allows
    // everything the real one does), but H2b fails: the abstract
    // (2N+2)-queue's fairness demands an Enq when |q̄| = 2N+1 and the
    // input is pending — which the saturated concrete pair cannot do.
    assert!(!cert.holds());
    let failure = cert.first_failure().unwrap();
    assert!(failure.id.starts_with("H2b"), "{}", failure.id);
    let opentla::ObligationStatus::Failed(cx) = &failure.status else {
        panic!("failed obligation must carry a counterexample");
    };
    // Replay: the lasso is a fair behavior of the product.
    let product = opentla::closed_product(
        &vars,
        &[w.env(), w.queue1(), w.queue2()],
    )
    .unwrap();
    let lasso = cx.to_lasso();
    let ctx = EvalCtx::with_universe(product.universe().clone());
    assert!(eval(&product.formula(), &lasso, &ctx).unwrap());
}
