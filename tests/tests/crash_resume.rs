//! Crash-tolerance end-to-end: interrupt/resume byte-identity across
//! every engine configuration, snapshot save→load round trips,
//! typed errors for corrupted or mismatched snapshots, panic-isolated
//! parallel workers, and frontier-preserving escalation whose total
//! work is O(final state space).

use std::path::PathBuf;
use std::sync::Arc;

use opentla_check::{
    check_liveness, check_liveness_resumable, explore, explore_escalating,
    explore_governed_with, explore_resumable, resume_exploration, Budget, CheckError,
    CheckpointError, CountingRecorder, Exploration, ExploreOptions, GuardedAction, Init,
    LiveSnapshot, LiveTarget, LivenessOptions, Outcome, RecorderHandle, Reduction,
    Snapshot, StateGraph, System, VisitedMode, WorkerPanic,
};
use opentla_kernel::{Domain, Expr, Value, VarId, Vars};
use opentla_queue::{FairnessStyle, QueueChain};
use opentla_scenarios::{AlternatingBit, ArbiterFairness, Mutex, TokenRing};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A unique throwaway snapshot path (tests run in parallel; the
/// process id plus a counter keeps them from clobbering each other).
fn snap_path(tag: &str) -> PathBuf {
    static COUNTER: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "opentla_crash_resume_{}_{tag}_{n}.snap",
        std::process::id()
    ))
}

/// Byte-for-byte graph equality: statistics, state arena order,
/// initial states, edges, and the BFS tree.
fn assert_identical(label: &str, a: &StateGraph, b: &StateGraph) {
    assert_eq!(a.stats(), b.stats(), "{label}: stats differ");
    assert_eq!(a.states(), b.states(), "{label}: state order differs");
    assert_eq!(a.init(), b.init(), "{label}: initial states differ");
    for id in 0..a.len() {
        assert_eq!(a.edges(id), b.edges(id), "{label}: edges of {id} differ");
        assert_eq!(
            a.trace_to(id),
            b.trace_to(id),
            "{label}: shortest trace to {id} differs"
        );
    }
}

fn options(
    threads: usize,
    mode: VisitedMode,
    reduction: Reduction,
    fp_bits: u32,
) -> ExploreOptions {
    ExploreOptions {
        threads: Some(threads),
        mode,
        reduction,
        fp_bits,
        ..ExploreOptions::default()
    }
}

fn run_unlimited(system: &System, opts: &ExploreOptions) -> Exploration {
    let run = explore_governed_with(system, &Budget::unlimited(), opts)
        .expect("exploration succeeds");
    assert!(matches!(run.outcome, Outcome::Complete));
    run
}

/// POR over the system's first variable as the observable set — enough
/// to make the ample machinery genuinely fire.
fn por_on_first_var(system: &System) -> Reduction {
    let v0 = system.vars().iter().next().expect("system has variables");
    Reduction::none().with_por(Expr::var(v0).eq(Expr::int(0)).unprimed_vars())
}

fn scenarios() -> Vec<(&'static str, System)> {
    vec![
        ("abp", AlternatingBit::new(2).complete_system().unwrap()),
        ("ring", TokenRing::new(3).complete_system().unwrap()),
        (
            "mutex",
            Mutex::with_clients(3, ArbiterFairness::Weak).product().unwrap(),
        ),
        (
            "chain2",
            QueueChain::new(2, 1, 2, FairnessStyle::Joint)
                .complete_system()
                .unwrap(),
        ),
    ]
}

/// The core round trip, one configuration: explore uninterrupted as
/// the reference; explore again under a budget that exhausts mid-run
/// with checkpointing on; then resume from the on-disk snapshot with
/// the budget lifted. The resumed graph must be byte-identical to the
/// uninterrupted one — states, edges, traces, everything.
fn interrupt_and_resume(label: &str, system: &System, opts: &ExploreOptions) {
    let reference = run_unlimited(system, opts);
    let total = reference.graph.len();
    let path = snap_path("matrix");

    let cut = (total * 2 / 5).max(2);
    let interrupted = explore_resumable(
        system,
        &Budget::default().states(cut).with_checkpoint(&path, 16),
        opts,
    )
    .expect("interrupted run still succeeds");
    let token = interrupted
        .outcome
        .resume_token()
        .unwrap_or_else(|| panic!("{label}: exhausted run must leave a resume token"))
        .clone();
    assert_eq!(token.path, path, "{label}: token points at the spec path");
    assert!(path.exists(), "{label}: snapshot file must exist");

    // Resume from disk: the same call, bigger budget.
    let recorder = Arc::new(CountingRecorder::new());
    let resumed = explore_resumable(
        system,
        &Budget::unlimited()
            .with_checkpoint(&path, 1 << 20)
            .with_recorder(RecorderHandle::new(recorder.clone())),
        opts,
    )
    .expect("resumed run succeeds");
    assert!(
        matches!(resumed.outcome, Outcome::Complete),
        "{label}: resumed run must complete"
    );
    assert_eq!(recorder.resumes(), 1, "{label}: resume event must be emitted");
    assert_identical(label, &reference.graph, &resumed.graph);
    assert_eq!(
        reference.reduction, resumed.reduction,
        "{label}: reduction stats must survive the round trip"
    );

    // Resume from the in-memory snapshot too — same result.
    let snap = interrupted.snapshot.as_deref().expect("in-memory snapshot");
    let resumed_mem = resume_exploration(system, &Budget::unlimited(), opts, snap)
        .expect("in-memory resume succeeds");
    assert_identical(&format!("{label}/mem"), &reference.graph, &resumed_mem.graph);

    let _ = std::fs::remove_file(&path);
}

#[test]
fn interrupt_resume_identity_unreduced() {
    for (name, system) in &scenarios() {
        for mode in [VisitedMode::Fingerprint, VisitedMode::Exact] {
            for threads in [1usize, 2, 4] {
                let label = format!("{name}/none/{mode:?}/threads={threads}");
                interrupt_and_resume(
                    &label,
                    system,
                    &options(threads, mode, Reduction::none(), 64),
                );
            }
        }
    }
}

#[test]
fn interrupt_resume_identity_reduced() {
    for (name, system) in &scenarios() {
        let por = por_on_first_var(system);
        for mode in [VisitedMode::Fingerprint, VisitedMode::Exact] {
            for threads in [1usize, 2, 4] {
                let label = format!("{name}/por/{mode:?}/threads={threads}");
                interrupt_and_resume(&label, system, &options(threads, mode, por.clone(), 64));
            }
        }
    }
}

/// The collision knob is pinned in the snapshot header: a resumed
/// collision-forcing run reproduces the uninterrupted collision-forcing
/// run exactly (first-id-wins conflation and all).
#[test]
fn interrupt_resume_identity_with_forced_collisions() {
    let system = QueueChain::new(2, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .unwrap();
    for threads in [1usize, 2] {
        let label = format!("chain2/fp12/threads={threads}");
        interrupt_and_resume(
            &label,
            &system,
            &options(threads, VisitedMode::Fingerprint, Reduction::none(), 12),
        );
    }
}

/// Golden chain4 through a parallel interrupt: exhaust a 2-thread run
/// at 20 000 states, resume with 4 threads, and land exactly on the
/// pre-reduction golden numbers.
#[test]
fn golden_chain4_survives_parallel_interrupt_and_thread_change() {
    let system = QueueChain::new(4, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .unwrap();
    let path = snap_path("chain4");
    let opts2 = options(2, VisitedMode::Fingerprint, Reduction::none(), 64);
    let interrupted = explore_resumable(
        &system,
        &Budget::default().states(20_000).with_checkpoint(&path, 4096),
        &opts2,
    )
    .unwrap();
    assert!(interrupted.outcome.resume_token().is_some());

    // Thread count is not pinned: resume the 2-thread snapshot with 4.
    let opts4 = options(4, VisitedMode::Fingerprint, Reduction::none(), 64);
    let resumed = explore_resumable(
        &system,
        &Budget::unlimited().with_checkpoint(&path, 1 << 20),
        &opts4,
    )
    .unwrap();
    assert!(matches!(resumed.outcome, Outcome::Complete));
    let stats = resumed.graph.stats();
    assert_eq!(stats.states, 54358, "chain4 state count regressed");
    assert_eq!(stats.transitions, 164736, "chain4 transition count regressed");
    assert_eq!(stats.depth, 55, "chain4 BFS depth regressed");
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Corruption and mismatch: typed errors, never panics or wrong graphs
// ---------------------------------------------------------------------

/// Produces a real snapshot file to corrupt.
fn write_sample_snapshot(tag: &str) -> (System, PathBuf) {
    let system = QueueChain::new(2, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .unwrap();
    let path = snap_path(tag);
    let run = explore_resumable(
        &system,
        &Budget::default().states(50).with_checkpoint(&path, 8),
        &ExploreOptions::default(),
    )
    .unwrap();
    assert!(run.outcome.resume_token().is_some());
    assert!(path.exists());
    (system, path)
}

#[test]
fn corrupted_snapshot_is_a_typed_error_not_a_panic() {
    let (system, path) = write_sample_snapshot("corrupt");
    let original = std::fs::read(&path).unwrap();

    // Flip a byte in the middle of the body.
    let mut flipped = original.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xff;
    std::fs::write(&path, &flipped).unwrap();
    assert!(matches!(
        Snapshot::load(&path),
        Err(CheckpointError::ChecksumMismatch)
    ));
    // ...and the typed error surfaces through the resume API.
    let err = explore_resumable(
        &system,
        &Budget::unlimited().with_checkpoint(&path, 8),
        &ExploreOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        CheckError::Checkpoint(CheckpointError::ChecksumMismatch)
    ));

    // Truncate to half: checksum (or structure) cannot survive.
    std::fs::write(&path, &original[..original.len() / 2]).unwrap();
    match Snapshot::load(&path) {
        Err(
            CheckpointError::ChecksumMismatch
            | CheckpointError::Corrupt { .. }
            | CheckpointError::Io { .. },
        ) => {}
        other => panic!("truncated snapshot must fail typed, got {other:?}"),
    }

    // Not a snapshot at all.
    std::fs::write(&path, b"definitely not a snapshot").unwrap();
    assert!(matches!(Snapshot::load(&path), Err(CheckpointError::BadMagic)));

    let _ = std::fs::remove_file(&path);
}

#[test]
fn mismatched_snapshot_is_refused() {
    let (system, path) = write_sample_snapshot("mismatch");
    let snap = Snapshot::load(&path).unwrap();

    // Different system.
    let other = TokenRing::new(3).complete_system().unwrap();
    let err = resume_exploration(&other, &Budget::unlimited(), &ExploreOptions::default(), &snap)
        .unwrap_err();
    assert!(matches!(
        err,
        CheckError::Checkpoint(CheckpointError::Mismatch { .. })
    ));

    // Different fingerprint width, visited mode, or reduction activity.
    for opts in [
        options(1, VisitedMode::Fingerprint, Reduction::none(), 32),
        options(1, VisitedMode::Exact, Reduction::none(), 64),
        options(1, VisitedMode::Fingerprint, por_on_first_var(&system), 64),
    ] {
        let err = resume_exploration(&system, &Budget::unlimited(), &opts, &snap).unwrap_err();
        assert!(
            matches!(err, CheckError::Checkpoint(CheckpointError::Mismatch { .. })),
            "resume under different configuration must be refused"
        );
    }

    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Panic isolation
// ---------------------------------------------------------------------

/// An injected worker panic mid-expansion must not lose states, edges,
/// or the run: the coordinator repairs the level, the run degrades to
/// the surviving workers, and the final graph is byte-identical to the
/// sequential one.
#[test]
fn worker_panic_degrades_gracefully_without_losing_states() {
    for (name, system) in &scenarios() {
        let reference = run_unlimited(
            system,
            &options(1, VisitedMode::Fingerprint, Reduction::none(), 64),
        );
        for after_claims in [0u64, 5] {
            let recorder = Arc::new(CountingRecorder::new());
            let mut opts = options(4, VisitedMode::Fingerprint, Reduction::none(), 64);
            opts.worker_panic = Some(WorkerPanic { after_claims });
            let run = explore_governed_with(
                system,
                &Budget::unlimited().with_recorder(RecorderHandle::new(recorder.clone())),
                &opts,
            )
            .expect("run survives the worker panic");
            assert!(
                matches!(run.outcome, Outcome::Complete),
                "{name}: degraded run still completes"
            );
            assert_eq!(
                recorder.worker_failures(),
                1,
                "{name}: exactly one worker failure is reported"
            );
            assert_identical(
                &format!("{name}/panic-after-{after_claims}"),
                &reference.graph,
                &run.graph,
            );
        }
    }
}

/// Panic isolation under reduction: the reduced worker's counters roll
/// back to the claim mark, so the repaired run's reduction stats match
/// the healthy run's.
#[test]
fn worker_panic_under_reduction_keeps_stats_consistent() {
    let system = TokenRing::new(3).complete_system().unwrap();
    let por = por_on_first_var(&system);
    let reference = run_unlimited(&system, &options(1, VisitedMode::Fingerprint, por.clone(), 64));
    let recorder = Arc::new(CountingRecorder::new());
    let mut opts = options(3, VisitedMode::Fingerprint, por, 64);
    opts.worker_panic = Some(WorkerPanic { after_claims: 1 });
    let run = explore_governed_with(
        &system,
        &Budget::unlimited().with_recorder(RecorderHandle::new(recorder.clone())),
        &opts,
    )
    .unwrap();
    assert!(matches!(run.outcome, Outcome::Complete));
    assert_eq!(recorder.worker_failures(), 1);
    assert_identical("ring/panic-reduced", &reference.graph, &run.graph);
    assert_eq!(
        reference.reduction, run.reduction,
        "reduction stats must not double-count the repaired expansion"
    );
}

// ---------------------------------------------------------------------
// Frontier-preserving escalation
// ---------------------------------------------------------------------

/// Escalation resumes instead of restarting: the run completes, the
/// graph is byte-identical to a direct run, every attempt banked the
/// previous one's work (resume events fire), and — measured in
/// checkpoint cadence units — the total work stays O(final state
/// space) + one cadence per attempt, not O(attempts × state space).
#[test]
fn escalation_resumes_from_the_preserved_frontier() {
    let system = QueueChain::new(3, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .unwrap();
    let opts = options(1, VisitedMode::Fingerprint, Reduction::none(), 64);
    let reference = run_unlimited(&system, &opts);
    let total = reference.graph.len();

    const CADENCE: u64 = 64;
    // Work meter for the uninterrupted run, in cadence units.
    let direct_path = snap_path("esc-direct");
    let direct_recorder = Arc::new(CountingRecorder::new());
    let direct = explore_resumable(
        &system,
        &Budget::unlimited()
            .with_checkpoint(&direct_path, CADENCE)
            .with_recorder(RecorderHandle::new(direct_recorder.clone())),
        &opts,
    )
    .unwrap();
    assert!(matches!(direct.outcome, Outcome::Complete));
    let direct_work = direct_recorder.checkpoints();
    let _ = std::fs::remove_file(&direct_path);

    let path = snap_path("escalate");
    let recorder = Arc::new(CountingRecorder::new());
    let attempts = 12usize;
    let escalated = explore_escalating(
        &system,
        &Budget::default()
            .states((total / 10).max(2))
            .with_checkpoint(&path, CADENCE)
            .with_recorder(RecorderHandle::new(recorder.clone())),
        2,
        attempts,
        &opts,
    )
    .unwrap();
    assert!(
        matches!(escalated.outcome, Outcome::Complete),
        "12 doublings from total/10 must complete"
    );
    assert_identical("escalate/chain3", &reference.graph, &escalated.graph);
    assert!(
        recorder.resumes() >= 2,
        "attempts must resume, not restart (saw {} resumes)",
        recorder.resumes()
    );
    // The regression: escalated work ≤ uninterrupted work + one
    // cadence of slack per attempt. A restart-based escalation would
    // blow through this bound by a factor of attempts.
    assert!(
        recorder.checkpoints() <= direct_work + attempts as u64,
        "escalation re-did too much work: {} checkpoints vs {} direct + {} slack",
        recorder.checkpoints(),
        direct_work,
        attempts
    );
    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Liveness interrupt/resume
// ---------------------------------------------------------------------

/// A strong-fairness obligation on the system's last action — the
/// target shape that exercises every liveness phase (fairness tables,
/// SCC pass, per-component scans, Streett recursion).
fn live_target(system: &System) -> LiveTarget {
    let frame = system.frame();
    let last = system.actions().last().expect("system has actions");
    LiveTarget::fair(opentla_kernel::Fairness::strong(
        last.action_expr(&frame),
        last.touched().collect(),
    ))
}

fn assert_same_liveness_verdict(
    label: &str,
    a: &opentla_check::Verdict,
    b: &opentla_check::Verdict,
) {
    match (a, b) {
        (opentla_check::Verdict::Holds, opentla_check::Verdict::Holds) => {}
        (opentla_check::Verdict::Violated(x), opentla_check::Verdict::Violated(y)) => {
            assert_eq!(x.reason(), y.reason(), "{label}: reason differs");
            assert_eq!(x.states(), y.states(), "{label}: lasso states differ");
            assert_eq!(x.actions(), y.actions(), "{label}: lasso actions differ");
            assert_eq!(x.loop_start(), y.loop_start(), "{label}: loop start differs");
        }
        _ => panic!("{label}: verdicts diverge"),
    }
}

/// Interrupt a liveness check mid-run, resume from its on-disk
/// [`LiveSnapshot`] with escalating budgets until it completes: the
/// final verdict and lasso must be identical to the uninterrupted
/// check's, resume events must fire, and the first interruption must
/// report real pending work.
#[test]
fn liveness_interrupt_and_resume_reproduces_verdict() {
    let system = QueueChain::new(3, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .unwrap();
    let graph = explore(&system, &ExploreOptions::default()).unwrap();
    let target = live_target(&system);
    let reference = check_liveness(&system, &graph, &target).unwrap();

    let path = snap_path("liveness");
    let recorder = Arc::new(CountingRecorder::new());
    let mut budget_t = 500usize;
    let mut legs = 0usize;
    let final_run = loop {
        let run = check_liveness_resumable(
            &system,
            &graph,
            &target,
            &Budget::default()
                .transitions(budget_t)
                .with_checkpoint(&path, 8)
                .with_recorder(RecorderHandle::new(recorder.clone())),
            &LivenessOptions::default(),
        )
        .expect("liveness legs succeed");
        legs += 1;
        if run.outcome.is_complete() {
            break run;
        }
        let token = run
            .outcome
            .resume_token()
            .expect("exhausted liveness run must leave a resume token");
        assert_eq!(token.path, path, "token points at the spec path");
        assert!(path.exists(), "liveness snapshot file must exist");
        if legs == 1 {
            if let Outcome::Exhausted { frontier_size, .. } = &run.outcome {
                assert!(
                    *frontier_size >= 1,
                    "a freshly interrupted table scan has pending rows"
                );
            }
        }
        budget_t *= 2;
        assert!(legs < 30, "budget doubling must terminate");
    };
    assert!(legs >= 2, "the first budget must actually interrupt the check");
    assert!(
        recorder.resumes() >= 1,
        "resumed legs must emit resume events (saw {})",
        recorder.resumes()
    );
    assert_same_liveness_verdict(
        "chain3/liveness-resume",
        &reference,
        &final_run.verdict.expect("complete runs carry a verdict"),
    );
    let _ = std::fs::remove_file(&path);
}

/// Corrupted or mismatched liveness snapshots are typed errors through
/// both the loader and the resumable entry point — never panics, never
/// silently-wrong verdicts.
#[test]
fn corrupted_or_mismatched_live_snapshot_is_refused() {
    let system = QueueChain::new(2, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .unwrap();
    let graph = explore(&system, &ExploreOptions::default()).unwrap();
    let target = live_target(&system);
    let path = snap_path("live-corrupt");
    let run = check_liveness_resumable(
        &system,
        &graph,
        &target,
        &Budget::default().transitions(40).with_checkpoint(&path, 8),
        &LivenessOptions::default(),
    )
    .unwrap();
    assert!(run.outcome.resume_token().is_some(), "run must interrupt");
    let original = std::fs::read(&path).unwrap();

    // Flip a byte mid-body: checksum catches it, typed, through both
    // entry points.
    let mut flipped = original.clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0xff;
    std::fs::write(&path, &flipped).unwrap();
    assert!(matches!(
        LiveSnapshot::load(&path),
        Err(CheckpointError::ChecksumMismatch)
    ));
    let err = check_liveness_resumable(
        &system,
        &graph,
        &target,
        &Budget::unlimited().with_checkpoint(&path, 8),
        &LivenessOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        CheckError::Checkpoint(CheckpointError::ChecksumMismatch)
    ));

    // A healthy snapshot resumed under a *different target* is refused:
    // cleared-component sets are only valid for the restriction tables
    // they were computed under.
    std::fs::write(&path, &original).unwrap();
    let other = LiveTarget::Eventually(Expr::int(1).eq(Expr::int(2)));
    let err = check_liveness_resumable(
        &system,
        &graph,
        &other,
        &Budget::unlimited().with_checkpoint(&path, 8),
        &LivenessOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        CheckError::Checkpoint(CheckpointError::Mismatch { .. })
    ));

    // ...and under a different system/graph likewise.
    let ring = TokenRing::new(3).complete_system().unwrap();
    let ring_graph = explore(&ring, &ExploreOptions::default()).unwrap();
    let err = check_liveness_resumable(
        &ring,
        &ring_graph,
        &live_target(&ring),
        &Budget::unlimited().with_checkpoint(&path, 8),
        &LivenessOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(
        err,
        CheckError::Checkpoint(CheckpointError::Mismatch { .. })
    ));

    // Not a liveness snapshot at all.
    std::fs::write(&path, b"definitely not a snapshot").unwrap();
    assert!(matches!(
        LiveSnapshot::load(&path),
        Err(CheckpointError::BadMagic)
    ));

    let _ = std::fs::remove_file(&path);
}

// ---------------------------------------------------------------------
// Property-based round trip on random systems
// ---------------------------------------------------------------------

/// A random small boolean system, deterministic in `seed` (same
/// construction as the reduction suite's).
fn random_system(seed: u64) -> System {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_vars = rng.gen_range(2..=4usize);
    let mut vars = Vars::new();
    let vs: Vec<VarId> = (0..n_vars)
        .map(|i| vars.declare(format!("v{i}"), Domain::bits()))
        .collect();
    let n_actions = rng.gen_range(2..=5usize);
    let actions: Vec<GuardedAction> = (0..n_actions)
        .map(|a| {
            let read = vs[rng.gen_range(0..n_vars)];
            let write = vs[rng.gen_range(0..n_vars)];
            let want = rng.gen_range(0..=1i64);
            GuardedAction::new(
                format!("a{a}"),
                Expr::var(read).eq(Expr::int(want)),
                vec![(write, Expr::int(1).sub(Expr::var(write)))],
            )
        })
        .collect();
    let init = Init::new(vs.iter().map(|v| (*v, Value::Int(0))));
    System::new(vars, init, actions)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Checkpoint → serialize → load → resume yields a byte-identical
    /// graph on random systems, across thread counts, visited modes,
    /// and reduction activity.
    #[test]
    fn snapshot_round_trip_is_byte_identical(seed in any::<u64>()) {
        let system = random_system(seed);
        let threads = [1usize, 2, 4][(seed % 3) as usize];
        let mode = if seed & 1 == 0 { VisitedMode::Fingerprint } else { VisitedMode::Exact };
        let reduction = if seed & 2 == 0 { Reduction::none() } else { por_on_first_var(&system) };
        let opts = options(threads, mode, reduction, 64);
        let reference = run_unlimited(&system, &opts);
        let total = reference.graph.len();
        if total < 4 {
            return Ok(()); // nothing to interrupt
        }
        let path = snap_path("prop");
        let interrupted = explore_resumable(
            &system,
            &Budget::default().states(total / 2).with_checkpoint(&path, 4),
            &opts,
        ).unwrap();
        if interrupted.outcome.resume_token().is_some() {
            let resumed = explore_resumable(
                &system,
                &Budget::unlimited().with_checkpoint(&path, 1 << 20),
                &opts,
            ).unwrap();
            prop_assert!(matches!(resumed.outcome, Outcome::Complete));
            assert_identical(&format!("prop/{seed}"), &reference.graph, &resumed.graph);
            prop_assert_eq!(reference.reduction, resumed.reduction);
        }
        let _ = std::fs::remove_file(&path);
    }
}

// ---------------------------------------------------------------------
// Kill-mid-spill: the bounded-memory engine
// ---------------------------------------------------------------------

/// Count of sealed arena segment files in the directory the spill
/// engine pins next to a checkpoint path.
fn sealed_arena_segments(snap_path: &std::path::Path) -> usize {
    let dir = PathBuf::from(format!("{}.segs", snap_path.display()));
    std::fs::read_dir(dir)
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter(|e| {
                    let n = e.file_name();
                    let n = n.to_string_lossy().into_owned();
                    n.starts_with("arena-") && n.ends_with(".seg")
                })
                .count()
        })
        .unwrap_or(0)
}

fn remove_spill_artifacts(snap_path: &std::path::Path) {
    let _ = std::fs::remove_file(snap_path);
    let _ = std::fs::remove_dir_all(format!("{}.segs", snap_path.display()));
}

/// Kill-mid-spill: a bounded-memory run interrupted after its first
/// sealed segment leaves a spill-format snapshot on disk that
/// *references* the sealed files (version [`SNAPSHOT_VERSION_SPILL`]),
/// and resuming from it — with the spill engine or, via the
/// materializer, with the plain in-RAM engine — completes to a graph
/// byte-identical to the unbounded run's.
#[test]
fn spill_interrupt_resume_identity() {
    let system = QueueChain::new(2, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .unwrap();
    for mode in [VisitedMode::Fingerprint, VisitedMode::Exact] {
        let label = format!("spill/{mode:?}");
        let base = options(1, mode, Reduction::none(), 64);
        let reference = run_unlimited(&system, &base);
        let total = reference.graph.len();
        let spill_opts = ExploreOptions {
            mem_budget_bytes: Some(8 << 10),
            ..base.clone()
        };
        let path = snap_path("spill");
        remove_spill_artifacts(&path);

        let interrupted = explore_resumable(
            &system,
            &Budget::default()
                .states(total / 2)
                .with_checkpoint(&path, 64),
            &spill_opts,
        )
        .expect("interrupted spill run succeeds");
        assert!(
            interrupted.outcome.resume_token().is_some(),
            "{label}: tight budget must exhaust with a resume token"
        );
        assert!(
            sealed_arena_segments(&path) >= 1,
            "{label}: the kill must land after the first sealed segment"
        );
        // The on-disk snapshot is the O(hot tier) spill form: magic,
        // then the spill version number.
        let head = std::fs::read(&path).expect("snapshot readable");
        assert_eq!(&head[..8], b"OTLASNAP", "{label}: snapshot magic");
        assert_eq!(
            u32::from_le_bytes(head[8..12].try_into().unwrap()),
            opentla_check::SNAPSHOT_VERSION_SPILL,
            "{label}: exhaustion snapshot must be the spill format"
        );

        // Resume from disk with the spill engine.
        let resumed = explore_resumable(
            &system,
            &Budget::unlimited().with_checkpoint(&path, 1 << 20),
            &spill_opts,
        )
        .expect("resumed spill run succeeds");
        assert!(
            matches!(resumed.outcome, Outcome::Complete),
            "{label}: resumed run must complete"
        );
        assert_identical(&label, &reference.graph, &resumed.graph);

        // Cross-engine: the in-memory spill snapshot materializes and
        // resumes on the plain in-RAM engine too.
        let snap = interrupted.snapshot.as_deref().expect("in-memory snapshot");
        let cross = resume_exploration(&system, &Budget::unlimited(), &base, snap)
            .expect("cross-engine resume succeeds");
        assert_identical(&format!("{label}/cross"), &reference.graph, &cross.graph);

        remove_spill_artifacts(&path);
    }
}

/// A corrupted or truncated sealed segment referenced by a spill
/// snapshot refuses to resume with a typed checkpoint error — never a
/// panic, never a silently wrong graph.
#[test]
fn corrupted_spill_segment_is_typed_error() {
    let system = QueueChain::new(2, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .unwrap();
    let opts = ExploreOptions {
        mem_budget_bytes: Some(8 << 10),
        ..options(1, VisitedMode::Fingerprint, Reduction::none(), 64)
    };
    let total = run_unlimited(
        &system,
        &options(1, VisitedMode::Fingerprint, Reduction::none(), 64),
    )
    .graph
    .len();
    let path = snap_path("spill_corrupt");
    remove_spill_artifacts(&path);
    let interrupted = explore_resumable(
        &system,
        &Budget::default()
            .states(total / 2)
            .with_checkpoint(&path, 64),
        &opts,
    )
    .expect("interrupted spill run succeeds");
    assert!(interrupted.outcome.resume_token().is_some());
    let segs_dir = PathBuf::from(format!("{}.segs", path.display()));
    let seg = std::fs::read_dir(&segs_dir)
        .expect("segment dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| {
            let n = p.file_name().unwrap_or_default().to_string_lossy().into_owned();
            n.starts_with("arena-") && n.ends_with(".seg")
        })
        .expect("at least one sealed arena segment");
    let pristine = std::fs::read(&seg).expect("segment readable");

    // Flip one payload byte: checksum verification trips.
    let mut bytes = pristine.clone();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&seg, &bytes).unwrap();
    let err = explore_resumable(
        &system,
        &Budget::unlimited().with_checkpoint(&path, 1 << 20),
        &opts,
    )
    .expect_err("corrupted segment must refuse to resume");
    assert!(
        matches!(err, CheckError::Checkpoint(_)),
        "corruption surfaces as a typed checkpoint error, got {err}"
    );

    // Truncate the file: also a typed error.
    std::fs::write(&seg, &pristine[..pristine.len() / 2]).unwrap();
    let err = explore_resumable(
        &system,
        &Budget::unlimited().with_checkpoint(&path, 1 << 20),
        &opts,
    )
    .expect_err("truncated segment must refuse to resume");
    assert!(matches!(err, CheckError::Checkpoint(_)));

    remove_spill_artifacts(&path);
}
