//! End-to-end soundness: when the `compose` engine certifies a
//! conclusion, the conclusion *formula* — `G ∧ ∧(E_j ⊳ M_j) ⇒ (E ⊳ M)`,
//! with `⊳`, hiding, and all — is valid over every lasso behavior of
//! the universe, as judged by the independent trace semantics.
//!
//! This is the strongest cross-check in the repository: the syntactic
//! rule pipeline (Propositions 1–4 + model checking) against the
//! semantic definition of the Composition Theorem's statement.

use opentla::{compose, disjoint, CompositionOptions, CompositionProblem};
use opentla_kernel::{Formula, Substitution};
use opentla_scenarios::Fig1;
use opentla_semantics::{all_lassos, eval, EvalCtx, Universe};

#[test]
fn fig1_conclusion_is_semantically_valid() {
    let w = Fig1::new();
    let ag_c = w.ag_c().unwrap();
    let ag_d = w.ag_d().unwrap();
    let target = w.safety_target().unwrap();
    let problem = CompositionProblem {
        vars: w.vars(),
        components: vec![&ag_c, &ag_d],
        target: &target,
        mapping: Substitution::default(),
    };
    let cert = compose(&problem, &CompositionOptions::default()).unwrap();
    assert!(cert.holds());

    // Reconstruct the certified conclusion as a formula:
    //   G ∧ (E_c ⊳ M_c) ∧ (E_d ⊳ M_d) ⇒ (TRUE ⊳ M_both)
    let g = disjoint(&[vec![w.c()], vec![w.d()]]);
    let conclusion = Formula::all([g, ag_c.formula(), ag_d.formula()])
        .implies(target.formula());

    // Exhaustively check it over all lassos (≤ 4 stored states) of the
    // two-bit universe.
    let universe = Universe::new(w.vars().clone());
    let ctx = EvalCtx::with_universe(universe.clone());
    let lassos = all_lassos(&universe, 4);
    assert!(lassos.len() > 1000, "exhaustive set should be substantial");
    for sigma in &lassos {
        assert!(
            eval(&conclusion, sigma, &ctx).unwrap(),
            "certified conclusion fails semantically on {sigma:?}"
        );
    }
}

#[test]
fn refuted_conclusion_really_fails_semantically() {
    // Flip the target to something false ("c stays 1") and confirm the
    // failed certificate corresponds to semantic invalidity: some lasso
    // satisfies the antecedent but not the conclusion.
    use opentla::{AgSpec, ComponentSpec};
    use opentla_check::Init;
    use opentla_kernel::{Expr, Value};

    let w = Fig1::new();
    let ag_c = w.ag_c().unwrap();
    let ag_d = w.ag_d().unwrap();
    let wrong = ComponentSpec::builder("wrong")
        .outputs([w.c(), w.d()])
        .init(Init::new([
            (w.c(), Value::Int(1)),
            (w.d(), Value::Int(0)),
        ]))
        .build()
        .unwrap();
    let true_env = ComponentSpec::builder("TRUE").build().unwrap();
    let target = AgSpec::new(true_env, wrong).unwrap();
    let problem = CompositionProblem {
        vars: w.vars(),
        components: vec![&ag_c, &ag_d],
        target: &target,
        mapping: Substitution::default(),
    };
    let cert = compose(&problem, &CompositionOptions::default()).unwrap();
    assert!(!cert.holds());

    let g = disjoint(&[vec![w.c()], vec![w.d()]]);
    let conclusion = Formula::all([g, ag_c.formula(), ag_d.formula()])
        .implies(target.formula());
    let universe = Universe::new(w.vars().clone());
    let ctx = EvalCtx::with_universe(universe.clone());
    // The all-zero stutter satisfies the antecedent but violates the
    // wrong target (whose initial condition demands c = 1).
    let zero = opentla_kernel::State::new(vec![Value::Int(0), Value::Int(0)]);
    let sigma = opentla_semantics::Lasso::stutter(zero);
    assert!(
        !eval(&conclusion, &sigma, &ctx).unwrap(),
        "the refuted conclusion must fail semantically"
    );
    let _ = Expr::int(0);
}

#[test]
fn corollary_conclusion_is_semantically_valid() {
    // The refinement Corollary on a small instance, validated
    // semantically: (E ⊳ M') ⇒ (E ⊳ M) over all lassos.
    use opentla::{refine, ComponentSpec};
    use opentla_check::{GuardedAction, Init};
    use opentla_kernel::{Domain, Expr, Value, Vars};

    let mut vars = Vars::new();
    let m = vars.declare("m", Domain::bits());
    let e = vars.declare("e", Domain::bits());
    let env = opentla::chaos_environment("env", &vars, &[e]);
    // Lower: m latches e (tightly constrained).
    let lower = ComponentSpec::builder("latch")
        .outputs([m])
        .inputs([e])
        .init(Init::new([(m, Value::Int(0))]))
        .action(GuardedAction::new(
            "latch",
            Expr::bool(true),
            vec![(m, Expr::var(e))],
        ))
        .build()
        .unwrap();
    // Upper: m starts 0 and may change freely.
    let upper = ComponentSpec::builder("free")
        .outputs([m])
        .inputs([e])
        .init(Init::new([(m, Value::Int(0))]))
        .action(GuardedAction::new(
            "any0",
            Expr::bool(true),
            vec![(m, Expr::int(0))],
        ))
        .action(GuardedAction::new(
            "any1",
            Expr::bool(true),
            vec![(m, Expr::int(1))],
        ))
        .build()
        .unwrap();
    let cert = refine(
        &vars,
        &env,
        &lower,
        &upper,
        Substitution::default(),
        &CompositionOptions::default(),
    )
    .unwrap();
    assert!(cert.holds());

    let env_f = env.hidden_formula();
    let conclusion = env_f
        .clone()
        .while_plus(lower.hidden_formula())
        .implies(env_f.while_plus(upper.hidden_formula()));
    let universe = Universe::new(vars);
    let ctx = EvalCtx::with_universe(universe.clone());
    for sigma in all_lassos(&universe, 4) {
        assert!(
            eval(&conclusion, &sigma, &ctx).unwrap(),
            "corollary conclusion fails on {sigma:?}"
        );
    }
}
