//! Observability-layer invariants, property-based: the counters a
//! [`CountingRecorder`] accumulates are not a *second* notion of run
//! statistics — for any randomly generated guarded-command system, the
//! run-report totals must exactly equal the sequential engine's
//! [`GraphStats`], and must be identical whichever engine produced
//! them (1, 2, or 4 level-synchronous workers), because the parallel
//! engine is an exact reformulation of sequential BFS.

use opentla_check::{
    explore_governed_with, Budget, CountingRecorder, ExploreOptions, GraphStats,
    GuardedAction, Init, Phase, RecorderHandle, System,
};
use opentla_kernel::{Domain, Expr, Value, Vars};
use proptest::prelude::*;
use std::sync::Arc;

#[derive(Clone, Debug)]
struct ActionSpec {
    guard_var: usize,
    guard_val: i64,
    target_var: usize,
    update: UpdateKind,
}

#[derive(Clone, Debug)]
enum UpdateKind {
    Constant(i64),
    CopyOther,
    Toggle,
}

fn arb_action_spec() -> impl Strategy<Value = ActionSpec> {
    (
        0..2usize,
        0..2i64,
        0..2usize,
        prop_oneof![
            (0..2i64).prop_map(UpdateKind::Constant),
            Just(UpdateKind::CopyOther),
            Just(UpdateKind::Toggle),
        ],
    )
        .prop_map(|(guard_var, guard_val, target_var, update)| ActionSpec {
            guard_var,
            guard_val,
            target_var,
            update,
        })
}

fn build_system(specs: &[ActionSpec]) -> System {
    let mut vars = Vars::new();
    let a = vars.declare("a", Domain::bits());
    let b = vars.declare("b", Domain::bits());
    let ids = [a, b];
    let actions: Vec<GuardedAction> = specs
        .iter()
        .enumerate()
        .map(|(i, spec)| {
            let target = ids[spec.target_var];
            let other = ids[1 - spec.target_var];
            let update = match spec.update {
                UpdateKind::Constant(v) => Expr::int(v),
                UpdateKind::CopyOther => Expr::var(other),
                UpdateKind::Toggle => Expr::int(1).sub(Expr::var(target)),
            };
            GuardedAction::new(
                format!("act{i}"),
                Expr::var(ids[spec.guard_var]).eq(Expr::int(spec.guard_val)),
                vec![(target, update)],
            )
        })
        .collect();
    System::new(
        vars,
        Init::new([(a, Value::Int(0)), (b, Value::Int(0))]),
        actions,
    )
}

/// Explores `sys` with `threads` workers under a fresh
/// [`CountingRecorder`], returning the graph's statistics and the
/// recorder's run-report totals.
fn counted_run(sys: &System, threads: usize) -> (GraphStats, (u64, u64, u64)) {
    let counter = Arc::new(CountingRecorder::new());
    let budget = Budget::default().with_recorder(RecorderHandle::new(counter.clone()));
    let opts = ExploreOptions {
        threads: Some(threads),
        ..ExploreOptions::default()
    };
    let run = explore_governed_with(sys, &budget, &opts).expect("explores");
    assert!(run.outcome.is_complete(), "tiny systems never exhaust");
    assert_eq!(counter.run_starts(), 1);
    assert_eq!(counter.run_ends(), 1);
    (
        run.graph.stats(),
        (counter.states(), counter.transitions(), counter.depth()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Recorder totals == sequential `GraphStats`, exactly.
    #[test]
    fn counting_recorder_totals_equal_sequential_stats(
        specs in proptest::collection::vec(arb_action_spec(), 1..4),
    ) {
        let sys = build_system(&specs);
        let (stats, totals) = counted_run(&sys, 1);
        prop_assert_eq!(
            totals,
            (
                stats.states as u64,
                stats.transitions as u64,
                stats.depth as u64
            )
        );
    }

    /// Recorder totals are engine-independent: 1, 2, and 4 workers
    /// report the same states, transitions, and depth.
    #[test]
    fn counting_recorder_totals_identical_across_thread_counts(
        specs in proptest::collection::vec(arb_action_spec(), 1..4),
    ) {
        let sys = build_system(&specs);
        let (stats1, totals1) = counted_run(&sys, 1);
        for threads in [2usize, 4] {
            let (stats_n, totals_n) = counted_run(&sys, threads);
            prop_assert_eq!(stats_n, stats1, "stats differ at {} threads", threads);
            prop_assert_eq!(totals_n, totals1, "totals differ at {} threads", threads);
        }
    }
}

/// The phase timers bracket correctly on a real (non-random) scenario:
/// an exploration spends time in init and expansion, none in engines
/// it never ran.
#[test]
fn phase_timers_cover_exploration_only() {
    let sys = build_system(&[ActionSpec {
        guard_var: 0,
        guard_val: 0,
        target_var: 1,
        update: UpdateKind::Toggle,
    }]);
    let counter = Arc::new(CountingRecorder::new());
    let budget = Budget::default().with_recorder(RecorderHandle::new(counter.clone()));
    let run =
        explore_governed_with(&sys, &budget, &ExploreOptions::default()).expect("explores");
    assert!(run.outcome.is_complete());
    assert!(counter.phase_nanos(Phase::ExploreExpand) > 0);
    assert_eq!(counter.phase_nanos(Phase::Liveness), 0);
    assert_eq!(counter.phase_nanos(Phase::Simulation), 0);
    assert_eq!(counter.phase_nanos(Phase::Compose), 0);
}
