//! Property-based validation of the semantic laws the paper states or
//! relies on, sampled over random lasso behaviors.
//!
//! These tests treat the trace evaluator of `opentla-semantics` as the
//! ground truth and check the paper's algebraic claims about `⊳`, `C`,
//! `+v`, and `⊥` (Sections 2.4, 3, 4) against it.

use opentla_kernel::{Domain, Expr, Formula, VarId, Vars};
use opentla_semantics::{eval, random_lasso, EvalCtx, Lasso, Universe};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A two-bit universe with canonical "stays at initial value" specs.
fn world() -> (Universe, VarId, VarId) {
    let mut vars = Vars::new();
    let x = vars.declare("x", Domain::bits());
    let y = vars.declare("y", Domain::bits());
    (Universe::new(vars), x, y)
}

/// `v` stays 0: the canonical safety spec used throughout.
fn stays_zero(v: VarId) -> Formula {
    Formula::pred(Expr::var(v).eq(Expr::int(0)))
        .and(Formula::act_box(Expr::bool(false), vec![v]))
}

fn lassos(seed: u64, count: usize) -> Vec<Lasso> {
    let (universe, _, _) = world();
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| random_lasso(&universe, 5, &mut rng))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `⊨ F ⇒ C(F)` — the closure is implied (Section 2.4).
    #[test]
    fn formula_implies_its_closure(seed in any::<u64>()) {
        let (_, x, _) = world();
        let f = stays_zero(x);
        let ctx = EvalCtx::default();
        for sigma in lassos(seed, 16) {
            let holds = eval(&f, &sigma, &ctx).unwrap();
            let closure = eval(&f.clone().closure(), &sigma, &ctx).unwrap();
            prop_assert!(!holds || closure, "F must imply C(F) on {sigma:?}");
        }
    }

    /// For a safety property, `C(F) ≡ F` (it is its own closure).
    #[test]
    fn safety_is_its_own_closure(seed in any::<u64>()) {
        let (_, x, _) = world();
        let f = stays_zero(x);
        let ctx = EvalCtx::default();
        for sigma in lassos(seed, 16) {
            let holds = eval(&f, &sigma, &ctx).unwrap();
            let closure = eval(&f.clone().closure(), &sigma, &ctx).unwrap();
            prop_assert_eq!(holds, closure, "safety: C(F) = F on {:?}", sigma);
        }
    }

    /// `⊨ (E ⊳ M) ⇒ (E ⇒ M)` — `⊳` is stronger than implication
    /// (Section 3: both ⇒ and -▷ are *weaker* than ⊳).
    #[test]
    fn while_plus_implies_implication(seed in any::<u64>()) {
        let (_, x, y) = world();
        let e = stays_zero(y);
        let m = stays_zero(x);
        let ctx = EvalCtx::default();
        for sigma in lassos(seed, 16) {
            let wp = eval(&e.clone().while_plus(m.clone()), &sigma, &ctx).unwrap();
            let imp = eval(&e.clone().implies(m.clone()), &sigma, &ctx).unwrap();
            prop_assert!(!wp || imp);
        }
    }

    /// `⊨ (E ⊳ M) ⇒ (E ⊥ M)` — Section 4.2's observation that the
    /// conjunction `(E -▷ M) ∧ (E ⊥ M)` equals `E ⊳ M` includes the
    /// orthogonality direction.
    #[test]
    fn while_plus_implies_orthogonality(seed in any::<u64>()) {
        let (_, x, y) = world();
        let e = stays_zero(y);
        let m = stays_zero(x);
        let ctx = EvalCtx::default();
        for sigma in lassos(seed, 16) {
            let wp = eval(&e.clone().while_plus(m.clone()), &sigma, &ctx).unwrap();
            let orth = eval(&e.clone().ortho(m.clone()), &sigma, &ctx).unwrap();
            prop_assert!(!wp || orth);
        }
    }

    /// `TRUE ⊳ G ≡ G` (Section 5 uses this to fold the conditional-
    /// implementation guarantee into the theorem).
    #[test]
    fn true_while_plus_is_identity(seed in any::<u64>()) {
        let (_, x, _) = world();
        let g = stays_zero(x);
        let ctx = EvalCtx::default();
        for sigma in lassos(seed, 16) {
            let wp = eval(&Formula::tt().while_plus(g.clone()), &sigma, &ctx).unwrap();
            let plain = eval(&g, &sigma, &ctx).unwrap();
            prop_assert_eq!(wp, plain, "TRUE ⊳ G = G on {:?}", sigma);
        }
    }

    /// `F ⇒ F +v` — the `+` operator weakens (Section 4.1).
    #[test]
    fn plus_weakens(seed in any::<u64>()) {
        let (_, x, y) = world();
        let f = stays_zero(y);
        let ctx = EvalCtx::default();
        for sigma in lassos(seed, 16) {
            let plain = eval(&f, &sigma, &ctx).unwrap();
            let plus = eval(&f.clone().plus(vec![x]), &sigma, &ctx).unwrap();
            prop_assert!(!plain || plus);
        }
    }

    /// Orthogonality is symmetric.
    #[test]
    fn ortho_symmetric(seed in any::<u64>()) {
        let (_, x, y) = world();
        let e = stays_zero(y);
        let m = stays_zero(x);
        let ctx = EvalCtx::default();
        for sigma in lassos(seed, 16) {
            let ab = eval(&e.clone().ortho(m.clone()), &sigma, &ctx).unwrap();
            let ba = eval(&m.clone().ortho(e.clone()), &sigma, &ctx).unwrap();
            prop_assert_eq!(ab, ba);
        }
    }

    /// `SF_v(A) ⇒ WF_v(A)` — strong fairness is stronger.
    #[test]
    fn sf_implies_wf(seed in any::<u64>()) {
        let (universe, x, y) = world();
        // Action: when y = 0, raise x.
        let a = Expr::all([
            Expr::var(y).eq(Expr::int(0)),
            Expr::prime(x).eq(Expr::int(1)),
            Expr::prime(y).eq(Expr::var(y)),
        ]);
        let ctx = EvalCtx::with_universe(universe);
        for sigma in lassos(seed, 16) {
            let sf = eval(&Formula::sf(a.clone(), vec![x]), &sigma, &ctx).unwrap();
            let wf = eval(&Formula::wf(a.clone(), vec![x]), &sigma, &ctx).unwrap();
            prop_assert!(!sf || wf, "SF ⇒ WF on {sigma:?}");
        }
    }

    /// `□` and `◇` are duals: `□F ≡ ¬◇¬F`.
    #[test]
    fn box_diamond_duality(seed in any::<u64>()) {
        let (_, x, _) = world();
        let p = Formula::pred(Expr::var(x).eq(Expr::int(0)));
        let ctx = EvalCtx::default();
        for sigma in lassos(seed, 16) {
            let always = eval(&p.clone().always(), &sigma, &ctx).unwrap();
            let dual = eval(&p.clone().not().eventually().not(), &sigma, &ctx).unwrap();
            prop_assert_eq!(always, dual);
        }
    }

    /// Suffix coherence: `□F` holds iff `F` holds on every suffix
    /// (cross-checking the lasso suffix normalization).
    #[test]
    fn always_matches_manual_suffixes(seed in any::<u64>()) {
        let (_, x, _) = world();
        let p = Formula::pred(Expr::var(x).eq(Expr::int(0)));
        let f = p.clone().always();
        let ctx = EvalCtx::default();
        for sigma in lassos(seed, 8) {
            let direct = eval(&f, &sigma, &ctx).unwrap();
            let manual = (0..sigma.len() + 3)
                .all(|i| eval(&p, &sigma.suffix(i), &ctx).unwrap());
            prop_assert_eq!(direct, manual, "on {:?}", sigma);
        }
    }
}

/// Deterministic spot checks for the `E -▷ M` vs `E ⊳ M` distinction:
/// a simultaneous violation satisfies neither `⊳` nor the conjunction
/// with orthogonality, but a strictly-later system violation satisfies
/// both.
#[test]
fn while_plus_equals_while_and_ortho_on_samples() {
    let (_, x, y) = world();
    let e = stays_zero(y);
    let m = stays_zero(x);
    let ctx = EvalCtx::default();
    let mut rng = StdRng::seed_from_u64(99);
    let (universe, _, _) = world();
    for _ in 0..200 {
        let sigma = random_lasso(&universe, 5, &mut rng);
        // The paper's Section 4.2 identity, now directly expressible:
        // (E ⊳ M) = (E -▷ M) ∧ (E ⊥ M).
        let wp = eval(&e.clone().while_plus(m.clone()), &sigma, &ctx).unwrap();
        let wo = eval(&e.clone().while_op(m.clone()), &sigma, &ctx).unwrap();
        let orth = eval(&e.clone().ortho(m.clone()), &sigma, &ctx).unwrap();
        assert_eq!(
            wp,
            wo && orth,
            "(E ⊳ M) = (E -▷ M) ∧ (E ⊥ M) fails on {sigma:?}"
        );
        // And cross-check -▷ against the first-failure reconstruction.
        let n0 = opentla_semantics::first_failing_prefix(&e, &sigma, &ctx).unwrap();
        let m0 = opentla_semantics::first_failing_prefix(&m, &sigma, &ctx).unwrap();
        let stepwise = match (n0, m0) {
            (_, None) => true,
            (None, Some(_)) => false,
            (Some(n), Some(mm)) => mm >= n,
        };
        let imp = eval(&e.clone().implies(m.clone()), &sigma, &ctx).unwrap();
        assert_eq!(wo, stepwise && imp, "-▷ reconstruction fails on {sigma:?}");
    }
}
