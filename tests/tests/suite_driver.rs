//! Drives a full [`opentla::Suite`] over the paper's queue world —
//! the batch-verification workflow a downstream adopter would use.

use opentla::{CompositionOptions, Suite};
use opentla_check::{explore, ExploreOptions, LiveTarget};
use opentla_kernel::Expr;
use opentla_queue::{DoubleQueue, FairnessStyle, SingleQueue};

#[test]
fn queue_world_suite() {
    let mut suite = Suite::new("queue-world");

    // Single queue: invariants and liveness.
    let world = SingleQueue::new(2, 2, FairnessStyle::Joint);
    let sys = world.complete_system().unwrap();
    let graph = explore(&sys, &ExploreOptions::default()).unwrap();
    suite
        .invariant("capacity", &sys, &graph, &world.capacity_invariant())
        .unwrap();
    suite
        .invariant("discipline", &sys, &graph, &world.output_discipline())
        .unwrap();
    let (p, q) = world.input_served();
    suite
        .liveness("input served", &sys, &graph, &LiveTarget::LeadsTo(p, q))
        .unwrap();
    let o = world.output();
    suite
        .step_invariant(
            "deq emits head",
            &sys,
            &graph,
            &Expr::prime(o.sig)
                .ne(Expr::var(o.sig))
                .implies(Expr::prime(o.val).eq(Expr::var(world.q()).head())),
            &world.vars().iter().collect::<Vec<_>>(),
        )
        .unwrap();

    // Double queue: both headline theorems as certificates.
    let dbl = DoubleQueue::new(1, 2, FairnessStyle::Joint);
    let cert = dbl
        .prove_composition(&CompositionOptions::default())
        .unwrap();
    suite.certificate("figure 9 composition", &cert);
    let report = dbl.prove_refinement(&ExploreOptions::default()).unwrap();
    suite.record(
        "CDQ ⇒ CQ[dbl]",
        report.holds(),
        format!(
            "simulation over {} states, {} liveness obligations",
            report.simulation.states,
            report.liveness.len()
        ),
    );

    assert!(suite.holds(), "{suite}");
    assert_eq!(suite.entries().len(), 6);
    let text = suite.to_string();
    assert!(text.contains("6/6 passed"), "{text}");
    assert!(text.contains("figure 9"), "{text}");
}

#[test]
fn suite_surfaces_failures_with_reasons() {
    let mut suite = Suite::new("negative");
    let world = SingleQueue::new(1, 2, FairnessStyle::None);
    let sys = world.complete_system().unwrap();
    let graph = explore(&sys, &ExploreOptions::default()).unwrap();
    let (p, q) = world.input_served();
    let held = suite
        .liveness("served without fairness", &sys, &graph, &LiveTarget::LeadsTo(p, q))
        .unwrap();
    assert!(!held);
    assert!(!suite.holds());
    let failure = suite.failures().next().unwrap();
    assert!(failure.detail.contains("violated"), "{}", failure.detail);
}
