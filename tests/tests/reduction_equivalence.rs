//! Differential engine-equivalence for the Reduction subsystem:
//! exploring under ample-set partial-order reduction and/or symmetry
//! canonicalization must return *the same invariant verdicts* as full
//! exploration — with semantically replayable counterexamples — on
//! every scenario in the repository, across 1/2/4 worker threads and
//! both visited-set modes. The reduced graph itself must also be
//! deterministic: byte-identical whichever engine produced it.
//!
//! Also here: the golden regression pinning `Reduction::none()` to the
//! exact pre-reduction chain4 numbers, and property-based checks that
//! POR never flips a verdict on random small systems and that
//! symmetry-reduced counterexamples replay under the trace semantics.

use std::sync::Arc;

use opentla_check::{
    check_invariant, explore_governed_with, Budget, Counterexample, CountingRecorder,
    Exploration, ExploreOptions, Outcome, RecorderHandle, Reduction, SlotPermutations,
    StateGraph, System, VisitedMode,
};
use opentla_check::{GuardedAction, Init};
use opentla_kernel::{Domain, Expr, Formula, Value, VarId, VarSet, Vars};
use opentla_queue::{FairnessStyle, QueueChain};
use opentla_scenarios::{
    AlternatingBit, ArbiterFairness, ClockWorld, Fig1, Mutex, TokenRing,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One scenario under test: the system, the invariants whose verdicts
/// must survive reduction, and the reductions to drive it through.
struct Case {
    name: &'static str,
    system: System,
    /// `(label, predicate)` — a mix of holding and violated
    /// invariants; the differential harness never assumes which is
    /// which, it only demands the reduced verdict equals the full one.
    invariants: Vec<(&'static str, Expr)>,
    reductions: Vec<(&'static str, Reduction)>,
}

/// The POR configuration for a case: observable = every variable any
/// of its invariants mentions (ample actions must not write these).
fn por_for(invariants: &[(&'static str, Expr)]) -> Reduction {
    let mut observable = VarSet::new();
    for (_, inv) in invariants {
        observable.union_with(&inv.unprimed_vars());
    }
    Reduction::none().with_por(observable)
}

fn cases() -> Vec<Case> {
    let mut out = Vec::new();

    let abp = AlternatingBit::new(2);
    let invariants = vec![
        ("in_order", abp.in_order_invariant()),
        ("counting", abp.counting_invariant()),
    ];
    out.push(Case {
        name: "abp",
        system: abp.complete_system().expect("abp builds"),
        reductions: vec![("por", por_for(&invariants))],
        invariants,
    });

    let mutex = Mutex::with_clients(3, ArbiterFairness::Weak);
    let no_grants = Expr::all(
        (1..=3).map(|i| Expr::var(mutex.g(i)).eq(Expr::int(0))),
    );
    let invariants = vec![
        ("mutual_exclusion", mutex.mutual_exclusion()),
        // Violated, and symmetric under client permutation.
        ("no_grants_ever", no_grants),
    ];
    let symmetry: Arc<SlotPermutations> = Arc::new(mutex.client_symmetry());
    out.push(Case {
        name: "mutex",
        reductions: vec![
            ("por", por_for(&invariants)),
            ("symmetry", Reduction::none().with_symmetry(symmetry.clone())),
            ("por+symmetry", por_for(&invariants).with_symmetry(symmetry)),
        ],
        system: mutex.product().expect("mutex builds"),
        invariants,
    });

    let ring = TokenRing::new(3);
    let nobody_critical = Expr::all(
        (0..3).map(|i| Expr::var(ring.crit(i)).eq(Expr::int(0))),
    );
    let invariants = vec![
        ("mutual_exclusion", ring.mutual_exclusion()),
        ("token_conservation", ring.token_conservation()),
        // Violated, and invariant under rotation.
        ("nobody_critical", nobody_critical),
    ];
    let symmetry: Arc<SlotPermutations> = Arc::new(ring.rotation_symmetry());
    out.push(Case {
        name: "ring",
        reductions: vec![
            ("por", por_for(&invariants)),
            ("symmetry", Reduction::none().with_symmetry(symmetry.clone())),
            ("por+symmetry", por_for(&invariants).with_symmetry(symmetry)),
        ],
        system: ring.complete_system().expect("ring builds"),
        invariants,
    });

    let clock = ClockWorld::new(2, 3);
    let invariants = vec![
        ("bounded_by_now", clock.bounded_by_now()),
        // Violated: time advances.
        ("time_stands_still", Expr::var(clock.now()).eq(Expr::int(0))),
    ];
    out.push(Case {
        name: "clock",
        system: clock.product().expect("clock builds"),
        reductions: vec![("por", por_for(&invariants))],
        invariants,
    });

    let fig1 = Fig1::new();
    let invariants = vec![(
        "both_zero",
        Expr::all([
            Expr::var(fig1.c()).eq(Expr::int(0)),
            Expr::var(fig1.d()).eq(Expr::int(0)),
        ]),
    )];
    out.push(Case {
        name: "fig1",
        system: opentla::closed_product(fig1.vars(), &[&fig1.pi_c(), &fig1.pi_d()])
            .expect("fig1 builds"),
        reductions: vec![("por", por_for(&invariants))],
        invariants,
    });

    for k in [2usize, 3, 4] {
        let chain = QueueChain::new(k, 1, 2, FairnessStyle::Joint);
        let sys = chain.complete_system().expect("chain builds");
        // The differential harness does not care whether an invariant
        // holds, so "the first wire never moves" (violated) plus a
        // domain tautology (holds) exercise both verdicts.
        let v0 = sys.vars().iter().next().expect("chain has variables");
        let invariants = vec![
            ("first_wire_frozen", Expr::var(v0).eq(Expr::int(0))),
            ("wire_in_domain", Expr::var(v0).le(Expr::int(1))),
        ];
        let name: &'static str = match k {
            2 => "chain2",
            3 => "chain3",
            _ => "chain4",
        };
        out.push(Case {
            name,
            system: sys,
            reductions: vec![("por", por_for(&invariants))],
            invariants,
        });
    }
    out
}

fn run(system: &System, reduction: Reduction, threads: usize, mode: VisitedMode) -> Exploration {
    let run = explore_governed_with(
        system,
        &Budget::unlimited(),
        &ExploreOptions {
            threads: Some(threads),
            mode,
            reduction,
            ..ExploreOptions::default()
        },
    )
    .expect("exploration succeeds");
    assert!(
        matches!(run.outcome, Outcome::Complete),
        "unlimited budget must complete"
    );
    run
}

/// Byte-for-byte graph equality (as in the PR 2 suite): statistics,
/// state arena order, initial states, edges, and the BFS tree.
fn assert_identical(label: &str, a: &StateGraph, b: &StateGraph) {
    assert_eq!(a.stats(), b.stats(), "{label}: stats differ");
    assert_eq!(a.states(), b.states(), "{label}: state order differs");
    assert_eq!(a.init(), b.init(), "{label}: initial states differ");
    for id in 0..a.len() {
        assert_eq!(a.edges(id), b.edges(id), "{label}: edges of {id} differ");
        assert_eq!(
            a.trace_to(id),
            b.trace_to(id),
            "{label}: shortest trace to {id} differs"
        );
    }
}

/// A counterexample must be *semantically* real: its lasso violates
/// `□inv` and satisfies the system's safety formula `Init ∧ □[N]_v`
/// under the trace semantics — even when it came from a reduced graph
/// (symmetry-canonical traces are re-concretized before reporting).
fn assert_replayable(label: &str, system: &System, inv: &Expr, cx: &Counterexample) {
    let lasso = cx.to_lasso();
    let ctx = opentla_semantics::EvalCtx::default();
    let always = Formula::pred(inv.clone()).always();
    assert!(
        !opentla_semantics::eval(&always, &lasso, &ctx).unwrap(),
        "{label}: counterexample does not violate the invariant"
    );
    let spec = Formula::pred(system.init().as_pred())
        .and(Formula::act_box(system.next_expr(), system.frame()));
    assert!(
        opentla_semantics::eval(&spec, &lasso, &ctx).unwrap(),
        "{label}: counterexample is not a real behavior of the system"
    );
}

/// The differential core: for one case, explore fully once, then
/// explore under each reduction with every engine configuration, and
/// demand (a) the reduced graph is deterministic across engines,
/// (b) it is never larger than the full graph, (c) every invariant
/// verdict matches the full graph's, and (d) violated verdicts come
/// with replayable counterexamples.
fn differential(case: &Case) {
    let full = run(&case.system, Reduction::none(), 1, VisitedMode::Fingerprint);
    assert!(full.reduction.is_none(), "{}: stats without reduction", case.name);
    assert!(!full.graph.is_reduced());
    let full_verdicts: Vec<bool> = case
        .invariants
        .iter()
        .map(|(_, inv)| {
            check_invariant(&case.system, &full.graph, inv)
                .unwrap()
                .holds()
        })
        .collect();

    for (red_label, reduction) in &case.reductions {
        let mut reference: Option<Exploration> = None;
        for threads in [1usize, 2, 4] {
            for mode in [VisitedMode::Fingerprint, VisitedMode::Exact] {
                let label = format!("{}/{red_label}/threads={threads}/{mode:?}", case.name);
                let red = run(&case.system, reduction.clone(), threads, mode);
                let stats = red.reduction.expect("reduced run reports stats");
                assert!(red.graph.is_reduced(), "{label}: graph must be tagged");
                assert!(
                    red.graph.len() <= full.graph.len(),
                    "{label}: reduction grew the graph"
                );
                match &reference {
                    None => reference = Some(red),
                    Some(first) => {
                        assert_identical(&label, &first.graph, &red.graph);
                        assert_eq!(
                            first.reduction.as_ref().unwrap(),
                            &stats,
                            "{label}: reduction stats differ between engines"
                        );
                    }
                }
            }
        }
        let red = reference.expect("at least one engine configuration ran");
        for ((inv_label, inv), full_holds) in case.invariants.iter().zip(&full_verdicts) {
            let label = format!("{}/{red_label}/{inv_label}", case.name);
            let verdict = check_invariant(&case.system, &red.graph, inv).unwrap();
            assert_eq!(
                verdict.holds(),
                *full_holds,
                "{label}: reduction flipped the verdict"
            );
            if let Some(cx) = verdict.counterexample() {
                assert_replayable(&label, &case.system, inv, cx);
            }
        }
    }
}

#[test]
fn differential_abp() {
    differential(&cases().remove(0));
}

#[test]
fn differential_mutex() {
    differential(&cases().remove(1));
}

#[test]
fn differential_ring() {
    differential(&cases().remove(2));
}

#[test]
fn differential_clock() {
    differential(&cases().remove(3));
}

#[test]
fn differential_fig1() {
    differential(&cases().remove(4));
}

#[test]
fn differential_chain2() {
    differential(&cases().remove(5));
}

#[test]
fn differential_chain3() {
    differential(&cases().remove(6));
}

#[test]
fn differential_chain4() {
    differential(&cases().remove(7));
}

/// Symmetry must actually shrink a symmetric scenario — this is the
/// acceptance gate's ≥ 2× reduction, checked at test sizes. Mutex
/// carries the gate: its `k` clients are fully interchangeable, so
/// the `k!` permutation group collapses the space by more than 2×.
///
/// The token ring is the instructive counterpoint: rotation *is* an
/// automorphism of its transition relation (the differential tests
/// above prove reduction under it is sound), but its sig/ack toggle
/// bits carry absolute round history, so rotating a reachable state
/// yields an unreachable one — every rotation orbit meets the
/// reachable set exactly once and canonicalization collapses nothing.
/// We pin that fact so a future model change that restores the
/// collapse (or breaks soundness) is noticed.
#[test]
fn symmetry_reduces_mutex_by_2x_but_not_this_ring() {
    let ring = TokenRing::new(3);
    let sys = ring.complete_system().unwrap();
    let full = run(&sys, Reduction::none(), 1, VisitedMode::Fingerprint);
    let red = run(
        &sys,
        Reduction::none().with_symmetry(Arc::new(ring.rotation_symmetry())),
        1,
        VisitedMode::Fingerprint,
    );
    let stats = red.reduction.expect("reduced run reports stats");
    assert!(
        stats.canon_hits > 0,
        "rotation must at least be canonicalizing (it is an automorphism)"
    );
    assert_eq!(
        red.graph.len(),
        full.graph.len(),
        "ring orbits each meet the reachable set once; a change here \
         means the ring model's symmetry structure shifted"
    );

    let mutex = Mutex::with_clients(3, ArbiterFairness::Weak);
    let sys = mutex.product().unwrap();
    let full = run(&sys, Reduction::none(), 1, VisitedMode::Fingerprint);
    let red = run(
        &sys,
        Reduction::none().with_symmetry(Arc::new(mutex.client_symmetry())),
        1,
        VisitedMode::Fingerprint,
    );
    assert!(
        red.graph.len() * 2 <= full.graph.len(),
        "mutex client permutations must at least halve the space ({} vs {})",
        red.graph.len(),
        full.graph.len()
    );
    let stats = red.reduction.unwrap();
    assert!(stats.canon_hits > 0, "canonicalization must actually fire");
}

/// Golden regression: with `Reduction::none()` the explorer reproduces
/// the exact pre-reduction chain4 numbers — graph statistics and the
/// `RunReport` totals the observability layer saw in PR 3.
#[test]
fn golden_chain4_unreduced_stats_and_report() {
    let sys = QueueChain::new(4, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .expect("chain4 builds");
    let recorder = Arc::new(CountingRecorder::new());
    let budget =
        Budget::unlimited().with_recorder(RecorderHandle::new(recorder.clone()));
    let run = explore_governed_with(
        &sys,
        &budget,
        &ExploreOptions {
            reduction: Reduction::none(),
            threads: Some(1),
            ..ExploreOptions::default()
        },
    )
    .unwrap();
    assert!(matches!(run.outcome, Outcome::Complete));
    assert!(run.reduction.is_none());
    let stats = run.graph.stats();
    assert_eq!(stats.states, 54358, "chain4 state count regressed");
    assert_eq!(stats.transitions, 164736, "chain4 transition count regressed");
    assert_eq!(stats.depth, 55, "chain4 BFS depth regressed");
    // The RunReport totals routed through the recorder agree exactly.
    assert_eq!(recorder.run_ends(), 1);
    assert_eq!(recorder.states(), 54358);
    assert_eq!(recorder.transitions(), 164736);
    assert_eq!(recorder.depth(), 55);
    // No reduction event is emitted when reduction is off.
    assert_eq!(recorder.reductions(), 0);
}

/// With a reduction active, the stats flow through the observability
/// layer as a `reduction` event.
#[test]
fn reduction_event_reaches_the_recorder() {
    let mutex = Mutex::with_clients(3, ArbiterFairness::Weak);
    let sys = mutex.product().unwrap();
    let recorder = Arc::new(CountingRecorder::new());
    let budget =
        Budget::unlimited().with_recorder(RecorderHandle::new(recorder.clone()));
    let run = explore_governed_with(
        &sys,
        &budget,
        &ExploreOptions {
            reduction: Reduction::none().with_symmetry(Arc::new(mutex.client_symmetry())),
            threads: Some(2),
            ..ExploreOptions::default()
        },
    )
    .unwrap();
    let stats = run.reduction.expect("reduced run reports stats");
    assert_eq!(recorder.reductions(), 1);
    let (ample, full, skipped, canon) = recorder.reduction_totals();
    assert_eq!(ample, stats.ample_states as u64);
    assert_eq!(full, stats.full_states as u64);
    assert_eq!(skipped, stats.skipped_transitions as u64);
    assert_eq!(canon, stats.canon_hits as u64);
}

/// Reduced graphs answer state-invariant queries only: the per-edge
/// and liveness engines refuse them with a precondition error instead
/// of silently computing on a pruned relation.
#[test]
fn reduced_graphs_are_rejected_by_edge_sensitive_checks() {
    let ring = TokenRing::new(3);
    let sys = ring.complete_system().unwrap();
    let red = run(
        &sys,
        Reduction::none().with_symmetry(Arc::new(ring.rotation_symmetry())),
        1,
        VisitedMode::Fingerprint,
    );
    let all_vars: Vec<VarId> = sys.vars().iter().collect();
    let err = opentla_check::check_step_invariant(
        &sys,
        &red.graph,
        &Expr::bool(true),
        &all_vars,
    )
    .unwrap_err();
    assert!(matches!(err, opentla_check::CheckError::Precondition { .. }));
    let err = opentla_check::check_liveness(
        &sys,
        &red.graph,
        &opentla_check::LiveTarget::AlwaysEventually(
            Expr::var(ring.crit(0)).eq(Expr::int(1)),
        ),
    )
    .unwrap_err();
    assert!(matches!(err, opentla_check::CheckError::Precondition { .. }));
}

// ---------------------------------------------------------------------
// Property-based checks over random small systems
// ---------------------------------------------------------------------

/// A random small boolean system, deterministic in `seed`: `n` bit
/// variables, flip-style actions with random read/write footprints
/// (so the conflict-graph clustering varies per seed), and a random
/// initial state drawn through `opentla_semantics::random_state`.
fn random_system(seed: u64) -> (System, Expr) {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_vars = rng.gen_range(2..=4usize);
    let build_vars = || {
        let mut vars = Vars::new();
        let vs: Vec<VarId> = (0..n_vars)
            .map(|i| vars.declare(format!("v{i}"), Domain::bits()))
            .collect();
        (vars, vs)
    };
    let (vars, vs) = build_vars();
    let n_actions = rng.gen_range(2..=5usize);
    let actions: Vec<GuardedAction> = (0..n_actions)
        .map(|a| {
            let read = vs[rng.gen_range(0..n_vars)];
            let write = vs[rng.gen_range(0..n_vars)];
            let want = rng.gen_range(0..=1i64);
            GuardedAction::new(
                format!("a{a}"),
                Expr::var(read).eq(Expr::int(want)),
                vec![(write, Expr::int(1).sub(Expr::var(write)))],
            )
        })
        .collect();
    // A throwaway closed system over the same registry yields the
    // universe that `random_state` draws the initial state from.
    let probe = System::new(
        build_vars().0,
        Init::new(vs.iter().map(|v| (*v, Value::Int(0)))),
        actions.clone(),
    );
    let init_state = opentla_semantics::random_state(probe.universe(), &mut rng);
    let init = Init::new(vs.iter().map(|v| (*v, init_state.get(*v).clone())));
    let system = System::new(vars, init, actions);
    let invariant = Expr::var(vs[rng.gen_range(0..n_vars)]).eq(Expr::int(rng.gen_range(0..=1i64)));
    (system, invariant)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// POR never flips an invariant verdict: on random systems whose
    /// footprints produce genuinely varied cluster structure, the
    /// reduced graph (sequential and parallel) agrees with the full
    /// graph on whether the invariant holds, and violated verdicts
    /// replay semantically.
    #[test]
    fn por_never_flips_a_verdict(seed in any::<u64>()) {
        let (sys, inv) = random_system(seed);
        let por = Reduction::none().with_por(inv.unprimed_vars());
        let full = run(&sys, Reduction::none(), 1, VisitedMode::Fingerprint);
        let full_holds = check_invariant(&sys, &full.graph, &inv).unwrap().holds();
        for threads in [1usize, 3] {
            let red = run(&sys, por.clone(), threads, VisitedMode::Fingerprint);
            prop_assert!(red.graph.len() <= full.graph.len());
            let verdict = check_invariant(&sys, &red.graph, &inv).unwrap();
            prop_assert_eq!(
                verdict.holds(),
                full_holds,
                "seed {}: POR flipped the verdict at {} threads",
                seed,
                threads
            );
            if let Some(cx) = verdict.counterexample() {
                assert_replayable(&format!("random/{seed}"), &sys, &inv, cx);
            }
        }
    }

    /// Symmetry-canonicalized counterexamples replay under the trace
    /// semantics: a ring of `k` identical togglers, reduced by the
    /// full permutation group, still yields counterexamples that are
    /// real behaviors (concretized from canonical representatives).
    #[test]
    fn symmetry_counterexamples_replay(seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = rng.gen_range(2..=3usize);
        let mut vars = Vars::new();
        let xs: Vec<VarId> = (0..k)
            .map(|i| vars.declare(format!("x{i}"), Domain::bits()))
            .collect();
        let ys: Vec<VarId> = (0..k)
            .map(|i| vars.declare(format!("y{i}"), Domain::bits()))
            .collect();
        let mut actions = Vec::new();
        for i in 0..k {
            actions.push(GuardedAction::new(
                format!("set{i}"),
                Expr::var(xs[i]).eq(Expr::int(0)),
                vec![(xs[i], Expr::int(1))],
            ));
            actions.push(GuardedAction::new(
                format!("mark{i}"),
                Expr::all([
                    Expr::var(xs[i]).eq(Expr::int(1)),
                    Expr::var(ys[i]).eq(Expr::int(0)),
                ]),
                vec![(ys[i], Expr::int(1))],
            ));
        }
        let init = Init::new(
            xs.iter().chain(ys.iter()).map(|v| (*v, Value::Int(0))),
        );
        let n_slots = vars.len();
        let sys = System::new(vars, init, actions);
        let canon = SlotPermutations::processes(
            "togglers",
            n_slots,
            &[&xs, &ys],
            &SlotPermutations::all_index_permutations(k),
        );
        let red = run(
            &sys,
            Reduction::none().with_symmetry(Arc::new(canon)),
            1,
            VisitedMode::Fingerprint,
        );
        let full = run(&sys, Reduction::none(), 1, VisitedMode::Fingerprint);
        prop_assert!(red.graph.len() < full.graph.len(), "k! symmetry must prune");
        // Symmetric, violated two steps in: "no process ever marks".
        let inv = Expr::all(ys.iter().map(|y| Expr::var(*y).eq(Expr::int(0))));
        let verdict = check_invariant(&sys, &red.graph, &inv).unwrap();
        let cx = verdict.counterexample().expect("marking is reachable");
        assert_replayable(&format!("togglers/{seed}"), &sys, &inv, cx);
    }
}
