//! Edge cases and error paths of the public API, end to end.

use opentla::{
    compose, AgSpec, ComponentSpec, CompositionOptions, CompositionProblem, SpecError,
};
use opentla_check::{CheckError, ExploreOptions, GuardedAction, Init};
use opentla_kernel::{Domain, Expr, Substitution, Value, Vars};
use opentla_scenarios::Fig1;

#[test]
fn state_limit_surfaces_through_compose() {
    // A starved exploration no longer aborts `compose` with an error:
    // it degrades to an honest UNDECIDED certificate recording the
    // exhaustion, from which `escalate` can recover.
    let w = Fig1::new();
    let ag_c = w.ag_c().unwrap();
    let ag_d = w.ag_d().unwrap();
    let target = w.safety_target().unwrap();
    let problem = CompositionProblem {
        vars: w.vars(),
        components: vec![&ag_c, &ag_d],
        target: &target,
        mapping: Substitution::default(),
    };
    let options = CompositionOptions {
        explore: ExploreOptions {
            max_states: 0,
            ..ExploreOptions::default()
        },
        ..CompositionOptions::default()
    };
    let cert = compose(&problem, &options).expect("exhaustion is not an error");
    assert!(!cert.holds());
    assert!(!cert.decided(), "the conclusion must be open, not refuted");
    assert!(cert.first_failure().is_none());
    assert_eq!(cert.first_undecided().unwrap().id, "exploration");
    let text = cert.display(w.vars()).to_string();
    assert!(text.contains("UNDECIDED"), "{text}");
    assert!(text.contains("state limit of 0"), "{text}");
}

#[test]
fn non_closed_composition_is_rejected() {
    // A component reading a wire nobody drives.
    let mut vars = Vars::new();
    let c = vars.declare("c", Domain::bits());
    let ghost = vars.declare("ghost", Domain::bits());
    let reader = ComponentSpec::builder("reader")
        .outputs([c])
        .inputs([ghost])
        .init(Init::new([(c, Value::Int(0))]))
        .build()
        .unwrap();
    let env = ComponentSpec::builder("E")
        .inputs([c])
        .build()
        .unwrap();
    let ag = AgSpec::new(env, reader).unwrap();
    let true_env = ComponentSpec::builder("TRUE").build().unwrap();
    let target_sys = ComponentSpec::builder("T")
        .outputs([c])
        .init(Init::new([(c, Value::Int(0))]))
        .build()
        .unwrap();
    let target = AgSpec::new(true_env, target_sys).unwrap();
    let problem = CompositionProblem {
        vars: &vars,
        components: vec![&ag],
        target: &target,
        mapping: Substitution::default(),
    };
    let err = compose(&problem, &CompositionOptions::default())
        .expect_err("ghost input is unproduced");
    assert!(matches!(err, SpecError::NotClosed { .. }), "{err}");
}

#[test]
fn assumption_with_internals_needs_witness() {
    let mut vars = Vars::new();
    let c = vars.declare("c", Domain::bits());
    let d = vars.declare("d", Domain::bits());
    let hidden = vars.declare("hidden", Domain::bits());
    let env_with_state = ComponentSpec::builder("E")
        .outputs([d])
        .internals([hidden])
        .inputs([c])
        .init(Init::new([(d, Value::Int(0)), (hidden, Value::Int(0))]))
        .build()
        .unwrap();
    let sys = ComponentSpec::builder("M")
        .outputs([c])
        .inputs([d])
        .init(Init::new([(c, Value::Int(0))]))
        .build()
        .unwrap();
    let ag = AgSpec::new(env_with_state, sys).unwrap();
    let true_env = ComponentSpec::builder("TRUE").build().unwrap();
    let target_sys = ComponentSpec::builder("T")
        .outputs([c, d])
        .init(Init::new([(c, Value::Int(0)), (d, Value::Int(0))]))
        .build()
        .unwrap();
    let target = AgSpec::new(true_env, target_sys).unwrap();
    // The product is not even buildable here (E's guarantee-side would
    // need to own d), but the witness validation fires first.
    let problem = CompositionProblem {
        vars: &vars,
        components: vec![&ag],
        target: &target,
        mapping: Substitution::default(),
    };
    let err = compose(&problem, &CompositionOptions::default()).expect_err("no witness");
    assert!(matches!(err, SpecError::AssumptionNeedsWitness { .. }), "{err}");
}

#[test]
fn type_errors_surface_as_check_errors() {
    // A guard comparing an integer to a sequence is a specification
    // type error; the engine reports it rather than panicking.
    let mut vars = Vars::new();
    let x = vars.declare("x", Domain::bits());
    let bad = GuardedAction::new(
        "bad",
        Expr::var(x).add(Expr::int(1)), // non-boolean guard
        vec![],
    );
    let sys = opentla_check::System::new(
        vars,
        Init::new([(x, Value::Int(0))]),
        vec![bad],
    );
    let err = opentla_check::explore(&sys, &ExploreOptions::default())
        .expect_err("non-boolean guard");
    assert!(matches!(err, CheckError::Eval(_)), "{err}");
}

#[test]
fn verdicts_expose_counterexamples_ergonomically() {
    let w = Fig1::new();
    let sys = opentla::closed_product(w.vars(), &[&w.pi_c(), &w.pi_d()]).unwrap();
    let graph = opentla_check::explore(&sys, &ExploreOptions::default()).unwrap();
    let verdict = opentla_check::check_liveness(
        &sys,
        &graph,
        &opentla_check::LiveTarget::Eventually(Expr::var(w.c()).eq(Expr::int(1))),
    )
    .unwrap();
    assert!(!verdict.holds());
    let cx = verdict.counterexample().unwrap();
    let text = cx.display(w.vars()).to_string();
    assert!(text.contains("◇"), "{text}");
    assert!(text.contains("loop"), "{text}");
}

#[test]
#[ignore = "stress: larger parameters, run with --ignored"]
fn stress_double_queue_n2_v3_composition() {
    use opentla_queue::{DoubleQueue, FairnessStyle};
    let w = DoubleQueue::new(2, 3, FairnessStyle::Joint);
    let cert = w.prove_composition(&CompositionOptions::default()).unwrap();
    assert!(cert.holds());
    assert!(cert.product_states > 10_000);
}

#[test]
#[ignore = "stress: larger parameters, run with --ignored"]
fn stress_chain_of_four() {
    use opentla_queue::{FairnessStyle, QueueChain};
    let chain = QueueChain::new(4, 1, 2, FairnessStyle::Joint);
    assert_eq!(chain.big_capacity(), 7);
    let cert = chain.prove_composition(&CompositionOptions::default()).unwrap();
    assert!(cert.holds());
}
