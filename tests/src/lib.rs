//! Integration-test helpers shared by the workspace-level test suite.
//!
//! The actual tests live under `tests/tests/`; this library only hosts
//! small utilities they share.

/// Asserts that a [`Result`]-like verdict is positive, printing the full
/// diagnostic on failure.
pub fn expect_holds<T: std::fmt::Debug, E: std::fmt::Display>(r: Result<T, E>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => panic!("expected the property to hold, but: {e}"),
    }
}
