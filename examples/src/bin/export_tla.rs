//! Exports the paper's queue system as a TLA⁺ module, ready for TLC.
//!
//! Run with `cargo run -p opentla-examples --bin export_tla`.

use opentla::to_tla_module;
use opentla_queue::{FairnessStyle, SingleQueue};

fn main() {
    let world = SingleQueue::new(2, 2, FairnessStyle::Joint);
    let module = to_tla_module(
        "CompleteQueue",
        world.vars(),
        &[world.env(), world.queue()],
    );
    println!("{module}");
}
