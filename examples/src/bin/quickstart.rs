//! Quickstart: specify two open components assumption/guarantee style
//! and compose them with the Composition Theorem.
//!
//! This is the paper's introductory example: process `Π_c` guarantees
//! "c stays 0" assuming "d stays 0", process `Π_d` symmetrically —
//! a *circular* dependency that naive reasoning cannot discharge, but
//! the Composition Theorem can (for safety assumptions).
//!
//! Run with `cargo run -p opentla-examples --bin quickstart`.

use opentla::{compose, AgSpec, ComponentSpec, CompositionOptions, CompositionProblem};
use opentla_check::Init;
use opentla_kernel::{Domain, Substitution, Value, Vars};

fn main() {
    // 1. Declare the world: two boolean wires.
    let mut vars = Vars::new();
    let c = vars.declare("c", Domain::bits());
    let d = vars.declare("d", Domain::bits());

    // 2. Specify the guarantees as canonical components. "c stays 0"
    //    is: output c, initially 0, and *no* actions — c never changes.
    let stays_zero = |name: &str, out, inp| {
        ComponentSpec::builder(name)
            .outputs([out])
            .inputs([inp])
            .init(Init::new([(out, Value::Int(0))]))
            .build()
            .expect("well-formed component")
    };
    let m0_c = stays_zero("M0_c", c, d);
    let m0_d = stays_zero("M0_d", d, c);

    // 3. Pair each guarantee with its environment assumption: E ⊳ M.
    let ag_c = AgSpec::new(m0_d.clone(), m0_c.clone()).expect("valid A/G spec");
    let ag_d = AgSpec::new(m0_c.clone(), m0_d.clone()).expect("valid A/G spec");

    // 4. The target: with no environment at all (E = TRUE), the
    //    composition keeps both wires at 0.
    let both = ComponentSpec::builder("M0_c∧M0_d")
        .outputs([c, d])
        .init(Init::new([(c, Value::Int(0)), (d, Value::Int(0))]))
        .build()
        .expect("well-formed component");
    let true_env = ComponentSpec::builder("TRUE").build().expect("empty env");
    let target = AgSpec::new(true_env, both).expect("valid target");

    // 5. Apply the Composition Theorem. Every hypothesis is discharged
    //    by model checking and recorded in the certificate.
    let problem = CompositionProblem {
        vars: &vars,
        components: vec![&ag_c, &ag_d],
        target: &target,
        mapping: Substitution::default(),
    };
    let certificate =
        compose(&problem, &CompositionOptions::default()).expect("well-posed problem");

    println!("{}", certificate.display(&vars));
    assert!(certificate.holds());
    println!("The circular safety composition goes through. ∎");
}
