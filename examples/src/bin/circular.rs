//! The full Figure 1 story: circular assumption/guarantee reasoning
//! works for safety and rightly fails for liveness.
//!
//! Run with `cargo run -p opentla-examples --bin circular`.

use opentla::{
    check_ag_safety, chaos_environment, closed_product, compose, CompositionOptions,
    CompositionProblem,
};
use opentla_check::{check_liveness, explore, ExploreOptions, LiveTarget};
use opentla_kernel::{Expr, Substitution};
use opentla_scenarios::Fig1;

fn main() {
    let w = Fig1::new();

    println!("=== Figure 1, safety instance (M⁰: \"output stays 0\") ===\n");

    // The processes realize their assumption/guarantee specifications:
    // Π_c guarantees M⁰_c at least one step longer than its (chaotic!)
    // environment respects M⁰_d.
    let chaos_d = chaos_environment("chaos_d", w.vars(), &[w.d()]);
    let sys = closed_product(w.vars(), &[&w.pi_c(), &chaos_d]).expect("closed");
    let graph = explore(&sys, &ExploreOptions::default()).expect("explored");
    let verdict = check_ag_safety(
        &sys,
        &graph,
        &w.m0_d().safety_formula(),
        &w.m0_c().safety_formula(),
    )
    .expect("checkable");
    println!(
        "Π_c ⊨ (M⁰_d ⊳ M⁰_c) against a hostile environment: {}",
        if verdict.holds() { "REALIZED" } else { "FAILED" }
    );

    // The Composition Theorem closes the circle.
    let ag_c = w.ag_c().expect("valid");
    let ag_d = w.ag_d().expect("valid");
    let target = w.safety_target().expect("valid");
    let problem = CompositionProblem {
        vars: w.vars(),
        components: vec![&ag_c, &ag_d],
        target: &target,
        mapping: Substitution::default(),
    };
    let cert = compose(&problem, &CompositionOptions::default()).expect("well-posed");
    println!("\n{}", cert.display(w.vars()));

    println!("=== Figure 1, liveness instance (M¹: \"output eventually 1\") ===\n");

    // The composition of Π_c and Π_d does NOT satisfy ◇(c = 1): the
    // checker exhibits the behavior where both processes copy zeros
    // forever.
    let sys = closed_product(w.vars(), &[&w.pi_c(), &w.pi_d()]).expect("closed");
    let graph = explore(&sys, &ExploreOptions::default()).expect("explored");
    let verdict = check_liveness(
        &sys,
        &graph,
        &LiveTarget::Eventually(Expr::var(w.c()).eq(Expr::int(1))),
    )
    .expect("checkable");
    match verdict.counterexample() {
        Some(cx) => {
            println!("◇(c = 1) fails for Π_c ∥ Π_d, as the paper predicts:");
            println!("{}", cx.display(w.vars()));
        }
        None => unreachable!("the paper's counterexample must be found"),
    }

    // And the calculus refuses the circular *liveness* argument at the
    // door: an assumption with a fairness condition is not a safety
    // property.
    println!(
        "Packaging M¹_d as an assumption is rejected: {}",
        opentla::AgSpec::new(
            {
                use opentla_check::{GuardedAction, Init};
                use opentla_kernel::Value;
                opentla::ComponentSpec::builder("M1_d")
                    .outputs([w.d()])
                    .init(Init::new([(w.d(), Value::Int(0))]))
                    .action(GuardedAction::new(
                        "raise",
                        Expr::var(w.d()).eq(Expr::int(0)),
                        vec![(w.d(), Expr::int(1))],
                    ))
                    .weak_fairness([0])
                    .build()
                    .expect("well-formed")
            },
            w.m0_c(),
        )
        .expect_err("must be rejected")
    );
}
