//! The paper's appendix, end to end: two handshake queues in series
//! implement a larger queue — as complete systems (Section A.4) and as
//! open systems via the Composition Theorem (Section A.5 / Figure 9).
//!
//! Run with `cargo run -p opentla-examples --bin queue_composition`.

use opentla::CompositionOptions;
use opentla_check::ExploreOptions;
use opentla_queue::{handshake_trace, DoubleQueue, FairnessStyle, QueueChain};

fn main() {
    // The refinement/composition engines below run under
    // `Budget::default()`, which routes through the process-wide
    // recorder: with OPENTLA_OBS set, the whole proof streams phase
    // timings, obligation checks, and run reports to that JSONL file.
    if let Ok(path) = std::env::var(opentla_check::obs::OBS_ENV) {
        println!("observability: streaming run events to {path}\n");
    }

    println!("=== Figure 2: the two-phase handshake protocol ===\n");
    println!("  step           ack sig val");
    for row in handshake_trace(&[37, 4, 19]) {
        println!(
            "  {:<14} {:>3} {:>3} {:>3}",
            row.label,
            row.ack,
            row.sig,
            row.val.map_or("–".to_string(), |v| v.to_string()),
        );
    }

    let n = 1;
    let values = 2;
    let w = DoubleQueue::new(n, values, FairnessStyle::Joint);

    println!("\n=== Section A.4: CDQ ⇒ CQ[dbl] (complete systems) ===\n");
    let report = w
        .prove_refinement(&ExploreOptions::default())
        .expect("checkable");
    println!(
        "safety simulation over {} states / {} transitions: {}",
        report.simulation.states,
        report.simulation.edges,
        if report.simulation.holds() { "PROVED" } else { "FAILED" }
    );
    for (label, verdict) in &report.liveness {
        println!(
            "liveness ({label}): {}",
            if verdict.holds() { "PROVED" } else { "FAILED" }
        );
    }

    println!("\n=== Section A.5 / Figure 9: the open-system composition ===\n");
    let cert = w
        .prove_composition(&CompositionOptions::default())
        .expect("well-posed");
    println!("{}", cert.display(w.vars()));
    assert!(cert.holds());

    println!("=== Extension: a chain of three open queues ===\n");
    let chain = QueueChain::new(3, 1, 2, FairnessStyle::Joint);
    let cert = chain
        .prove_composition(&CompositionOptions::default())
        .expect("well-posed");
    println!(
        "3 × (N=1) queues implement one {}-element queue: {}",
        chain.big_capacity(),
        if cert.holds() { "PROVED" } else { "FAILED" }
    );
    println!(
        "complete system: {} states, {} transitions, {} obligations",
        cert.product_states,
        cert.product_edges,
        cert.obligations.len()
    );
}
