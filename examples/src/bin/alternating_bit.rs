//! The alternating-bit protocol composed from four open components.
//!
//! Run with `cargo run -p opentla-examples --bin alternating_bit`.

use opentla::CompositionOptions;
use opentla_check::{check_invariant, check_liveness, explore, ExploreOptions, LiveTarget};
use opentla_kernel::Expr;
use opentla_scenarios::AlternatingBit;

fn main() {
    let k = 3;
    let w = AlternatingBit::new(k);

    // Every engine below runs under `Budget::default()`, which routes
    // through the process-wide recorder: with OPENTLA_OBS set, the
    // whole demo streams run reports to that JSONL file.
    if let Ok(path) = std::env::var(opentla_check::obs::OBS_ENV) {
        println!("observability: streaming run events to {path}\n");
    }

    println!("=== Alternating-bit protocol, {k} messages ===\n");
    let cert = w.prove(&CompositionOptions::default()).expect("well-posed");
    println!("{}", cert.display(w.vars()));

    let sys = w.complete_system().expect("closed");
    let graph = explore(&sys, &ExploreOptions::default()).expect("explored");
    println!("complete system: {}", graph.stats());
    let in_order = check_invariant(&sys, &graph, &w.in_order_invariant())
        .expect("checkable")
        .holds();
    println!("in-order content invariant: {}", verdict(in_order));
    let done = Expr::var(w.recv()).eq(Expr::int(k));
    let delivered = check_liveness(&sys, &graph, &LiveTarget::Eventually(done))
        .expect("checkable")
        .holds();
    println!("all {k} messages eventually delivered: {}", verdict(delivered));
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "HOLDS"
    } else {
        "VIOLATED"
    }
}
