//! A token ring of handshake channels: circular assumption/guarantee
//! reasoning at length `k`.
//!
//! Figure 1 of the paper shows a two-component circular dependency;
//! a ring makes the cycle as long as you like. Each node assumes its
//! predecessor drives the incoming channel correctly and guarantees
//! the same discipline downstream — the Composition Theorem discharges
//! the whole cycle at once.
//!
//! Run with `cargo run -p opentla-examples --bin token_ring`.

use opentla::CompositionOptions;
use opentla_check::{check_invariant, check_liveness, explore, ExploreOptions, LiveTarget};
use opentla_kernel::Expr;
use opentla_scenarios::TokenRing;

fn main() {
    for k in [2usize, 3, 4] {
        let w = TokenRing::new(k);
        println!("=== {k}-node ring ===");
        let cert = w.prove_mutex(&CompositionOptions::default()).expect("well-posed");
        println!(
            "mutual exclusion composed from {} circular assumptions: {}",
            k,
            if cert.holds() { "PROVED" } else { "FAILED" }
        );
        let sys = w.complete_system().expect("closed");
        let graph = explore(&sys, &ExploreOptions::default()).expect("explored");
        let conserved = check_invariant(&sys, &graph, &w.token_conservation())
            .expect("checkable")
            .holds();
        println!("token conservation: {}", if conserved { "HOLDS" } else { "VIOLATED" });
        for i in 0..k {
            let verdict = check_liveness(
                &sys,
                &graph,
                &LiveTarget::AlwaysEventually(Expr::var(w.crit(i)).eq(Expr::int(1))),
            )
            .expect("checkable");
            println!(
                "  node {i} critical infinitely often: {}",
                if verdict.holds() { "HOLDS" } else { "VIOLATED" }
            );
        }
        println!();
    }
}
