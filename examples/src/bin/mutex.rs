//! A mutual-exclusion arbiter specified assumption/guarantee style:
//! the WF-vs-SF distinction, machine-checked.
//!
//! Two clients and an arbiter are specified as open components; the
//! Composition Theorem assembles the closed-system guarantee. With a
//! weakly fair arbiter the service hypothesis fails — the checker
//! prints the starvation lasso — while a strongly fair arbiter
//! composes cleanly.
//!
//! Run with `cargo run -p opentla-examples --bin mutex`.

use opentla::CompositionOptions;
use opentla_check::{check_invariant, check_liveness, explore, ExploreOptions, LiveTarget};
use opentla_scenarios::{ArbiterFairness, Mutex};

fn main() {
    for fairness in [ArbiterFairness::Weak, ArbiterFairness::Strong] {
        println!("=== Arbiter with {:?} grant fairness ===\n", fairness);
        let w = Mutex::new(fairness);

        // The open-system composition.
        let cert = w.prove(&CompositionOptions::default()).expect("well-posed");
        println!("{}", cert.display(w.vars()));

        // Derived complete-system consequences.
        let sys = w.product().expect("closed");
        let graph = explore(&sys, &ExploreOptions::default()).expect("explored");
        let mutex_ok = check_invariant(&sys, &graph, &w.mutual_exclusion())
            .expect("checkable")
            .holds();
        println!("mutual exclusion invariant: {}", verdict(mutex_ok));
        let (p, q) = w.request_served(1);
        let served = check_liveness(&sys, &graph, &LiveTarget::LeadsTo(p, q))
            .expect("checkable");
        println!("service (r1 = 1 ↝ g1 = 1): {}", verdict(served.holds()));
        if let Some(cx) = served.counterexample() {
            println!("starvation witness:\n{}", cx.display(w.vars()));
        }
        println!();
    }
}

fn verdict(ok: bool) -> &'static str {
    if ok {
        "HOLDS"
    } else {
        "VIOLATED"
    }
}
