//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no registry cache,
//! so this workspace vendors the *API subset* of `rand` it actually
//! uses: `Rng::gen_range` over integer ranges, `Rng::gen_ratio`,
//! `rngs::StdRng`, and `SeedableRng::seed_from_u64`. The generator is
//! a SplitMix64 — deterministic, seedable, and statistically fine for
//! test sampling (this is not, and does not need to be, a
//! cryptographic or research-grade source).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Sampling a uniform value of type `T` from a range-like object.
///
/// Mirrors `rand::distributions::uniform::SampleRange` closely enough
/// for `rng.gen_range(lo..hi)` / `rng.gen_range(lo..=hi)` call sites.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-sampling methods, blanket-implemented for every
/// [`RngCore`] (matching the upstream design, where `Rng` is an
/// extension trait).
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() % denominator as u64) < numerator as u64
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p));
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for upstream's
    /// `StdRng`. Same-seed instances produce identical streams on
    /// every platform.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood): a full-period mixer
            // over a Weyl sequence.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..512 {
            let x = rng.gen_range(3..17i64);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1..=5usize);
            assert!((1..=5).contains(&y));
        }
    }

    #[test]
    fn unsized_rng_usable_through_reference() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10usize)
        }
        let mut rng = StdRng::seed_from_u64(1);
        assert!(sample(&mut rng) < 10);
        // Exercise gen_ratio through the same unsized-capable path;
        // either outcome is valid for a seeded generator.
        let _ = rng.gen_ratio(1, 8);
    }
}
