//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors the *API subset* of criterion its benches use: benchmark
//! groups, `bench_function` / `bench_with_input`, `BenchmarkId`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!`
//! macros. Instead of statistical sampling it runs each benchmark a
//! small fixed number of iterations and prints min/mean wall-clock
//! times — enough to compare runs by eye and to keep every bench
//! target compiling and runnable in CI.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Label for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.name)
    }
}

/// Runs the measured closure and records wall-clock times.
pub struct Bencher {
    iterations: u64,
    times: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        self.times.clear();
        for _ in 0..self.iterations {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    iterations: u64,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Upstream tunes the statistical sample count; here it scales the
    /// fixed iteration count (bounded to keep smoke runs quick).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.iterations = (n as u64).clamp(1, 10);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: self.iterations,
            times: Vec::new(),
        };
        routine(&mut bencher);
        self.report(&id.to_string(), &bencher.times);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iterations: self.iterations,
            times: Vec::new(),
        };
        routine(&mut bencher, input);
        self.report(&id.to_string(), &bencher.times);
        self
    }

    pub fn finish(self) {}

    fn report(&self, id: &str, times: &[Duration]) {
        if times.is_empty() {
            println!("{}/{id}: no samples", self.name);
            return;
        }
        let min = times.iter().min().expect("nonempty");
        let total: Duration = times.iter().sum();
        let mean = total / times.len() as u32;
        println!(
            "{}/{id}: min {:?}, mean {:?} ({} iters)",
            self.name,
            min,
            mean,
            times.len()
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            iterations: 3,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("run", routine);
        group.finish();
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut criterion = Criterion::default();
        let mut group = criterion.benchmark_group("smoke");
        group.sample_size(10);
        let mut hits = 0u64;
        group.bench_function("count", |b| b.iter(|| hits += 1));
        group.bench_with_input(BenchmarkId::new("add", 3), &3u64, |b, &n| {
            b.iter(|| black_box(n + 1))
        });
        group.finish();
        assert!(hits > 0);
    }
}
