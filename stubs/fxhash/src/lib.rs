//! Offline stand-in for a fast non-cryptographic hasher.
//!
//! The build environment has no network access, so this workspace
//! vendors its own implementation of the well-known FxHash algorithm
//! (the multiply-rotate mixer popularized by Firefox and `rustc-hash`).
//! It is **not** collision-resistant against adversarial inputs — it is
//! used for state fingerprinting and hot-path hash maps inside the
//! explicit-state checker, where inputs are machine-generated states
//! and throughput is what matters. SipHash (`std`'s default) remains
//! available wherever DoS resistance could conceivably matter.
//!
//! Provided API subset: [`FxHasher`], [`FxBuildHasher`], and the
//! [`FxHashMap`] / [`FxHashSet`] aliases.

#![forbid(unsafe_code)]

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant of the Fx mixer (a 64-bit odd constant
/// derived from the golden ratio, as used by rustc-hash).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, non-cryptographic, deterministic 64-bit hasher.
///
/// Word-at-a-time multiply-rotate mixing: each written word `w` updates
/// the accumulator as `h = (rotl5(h) ^ w) * SEED`. Unkeyed, so hashes
/// are stable within a process run (and across runs, on a fixed target
/// endianness) — which is what state fingerprinting needs.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            self.add_to_hash(word);
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            // Fold in the length so "ab" ++ "" and "a" ++ "b" differ.
            self.add_to_hash(u64::from_le_bytes(tail) ^ (rest.len() as u64));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_i8(&mut self, i: i8) {
        self.write_u8(i as u8);
    }

    #[inline]
    fn write_i16(&mut self, i: i16) {
        self.write_u16(i as u16);
    }

    #[inline]
    fn write_i32(&mut self, i: i32) {
        self.write_u32(i as u32);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.write_u64(i as u64);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.write_usize(i as usize);
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed by [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed by [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_of<T: Hash>(value: &T) -> u64 {
        let mut h = FxHasher::default();
        value.hash(&mut h);
        h.finish()
    }

    #[test]
    fn deterministic_and_value_sensitive() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        assert_ne!(hash_of(&(1u32, 2u32)), hash_of(&(2u32, 1u32)));
    }

    #[test]
    fn byte_streams_distinguish_boundaries() {
        assert_ne!(hash_of(&"ab"), hash_of(&"a"));
        assert_ne!(hash_of(&b"abcdefgh".as_slice()), hash_of(&b"abcdefg".as_slice()));
        // Longer-than-word inputs exercise the chunked path.
        assert_ne!(
            hash_of(&b"abcdefghijklmnop".as_slice()),
            hash_of(&b"abcdefghijklmnoq".as_slice())
        );
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        m.insert("a".into(), 1);
        assert_eq!(m.get("a"), Some(&1));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(7));
        assert!(s.contains(&7));
    }

    #[test]
    fn spreads_small_ints() {
        // Not a statistical test — just a guard against a degenerate
        // implementation. Small consecutive keys must produce distinct
        // hashes whose *high* bits vary (hashbrown derives its control
        // bytes from the top bits).
        let hs: Vec<u64> = (0u64..64).map(|i| hash_of(&i)).collect();
        let distinct: FxHashSet<u64> = hs.iter().copied().collect();
        assert_eq!(distinct.len(), hs.len());
        let top_bytes: FxHashSet<u8> = hs.iter().map(|h| (h >> 56) as u8).collect();
        assert!(top_bytes.len() > 16, "high bits barely vary: {top_bytes:?}");
    }
}
