//! Case-running machinery: configuration, the per-test deterministic
//! generator, and the pass/fail/reject outcome type.

/// How many random cases each property runs.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream defaults to 256; 64 keeps the vendored runner fast
        // while still exercising plenty of the space. Tests that need
        // more set `with_cases` explicitly.
        ProptestConfig { cases: 64 }
    }
}

/// Outcome of one sampled case.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` filtered the case out; not a failure.
    Reject(String),
    /// A `prop_assert*!` failed.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

/// Deterministic SplitMix64 stream, seeded from the test's name so
/// every run of a given test replays the same cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the name gives a stable, well-spread seed.
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for byte in name.bytes() {
            hash ^= byte as u64;
            hash = hash.wrapping_mul(0x100_0000_01b3);
        }
        TestRng { state: hash }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `0..bound` (`bound` must be nonzero).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
