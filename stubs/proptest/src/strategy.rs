//! Value-generation strategies: the composable core of the vendored
//! proptest surface.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::sync::Arc;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no value tree / shrinking: a
/// strategy is just a deterministic function of the runner's RNG
/// stream.
pub trait Strategy {
    type Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { source: self, map }
    }

    /// Type-erase the strategy (cheaply clonable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng: &mut TestRng| self.sample(rng)))
    }

    /// Recursive strategies: `self` generates the leaves, and `expand`
    /// wraps an inner strategy into one layer of branches. Matches the
    /// upstream signature `(depth, desired_size, expected_branch_size,
    /// expand)`; the middle two are accepted for compatibility but
    /// only `depth` bounds the vendored construction.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        expand: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaves = self.boxed();
        let mut current = leaves.clone();
        for _ in 0..depth {
            let deeper = expand(current).boxed();
            // Mix leaves back in so sampled trees vary in depth
            // instead of always bottoming out at `depth`.
            current = Union::new(vec![leaves.clone(), deeper]).boxed();
        }
        current
    }
}

/// Type-erased strategy; clones share the underlying generator.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.map)(self.source.sample(rng))
    }
}

/// Uniform choice among same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Self {
        Union {
            options: self.options.clone(),
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].sample(rng)
    }
}

macro_rules! impl_strategy_for_int_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_strategy_for_int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_tuples {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_strategy_for_tuples! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, G)
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any [`Arbitrary`] type.
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Length bound for `collection::vec`.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange { lo: exact, hi: exact }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> Self {
        assert!(range.start < range.end, "empty vec size range");
        SizeRange { lo: range.start, hi: range.end - 1 }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { lo: *range.start(), hi: *range.end() }
    }
}

/// `proptest::collection::vec(element, size)`.
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.hi - self.size.lo) as u64 + 1;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_tuples_maps_compose() {
        let mut rng = TestRng::for_test("compose");
        let strat = (0..3usize, 1..=2i64).prop_map(|(a, b)| a as i64 + b);
        for _ in 0..128 {
            let v = strat.sample(&mut rng);
            assert!((1..=4).contains(&v));
        }
    }

    #[test]
    fn union_draws_every_arm() {
        let mut rng = TestRng::for_test("union");
        let strat = Union::new(vec![Just(1i64).boxed(), Just(2i64).boxed()]);
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[(strat.sample(&mut rng) - 1) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Debug)]
        enum Tree {
            #[allow(dead_code)]
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(l, r) => 1 + depth(l).max(depth(r)),
            }
        }
        let leaf = (0..4i64).prop_map(Tree::Leaf);
        let strat = leaf.prop_recursive(3, 24, 2, |inner| {
            (inner.clone(), inner)
                .prop_map(|(l, r)| Tree::Node(Box::new(l), Box::new(r)))
        });
        let mut rng = TestRng::for_test("recursive");
        let mut max_depth = 0;
        for _ in 0..256 {
            max_depth = max_depth.max(depth(&strat.sample(&mut rng)));
        }
        assert!(max_depth >= 1, "recursion never fired");
        assert!(max_depth <= 3, "depth bound exceeded");
    }

    #[test]
    fn vec_lengths_respect_bounds() {
        let mut rng = TestRng::for_test("vec");
        let strat = vec(0..5i64, 0..4);
        for _ in 0..128 {
            let v = strat.sample(&mut rng);
            assert!(v.len() < 4);
            assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }
}
