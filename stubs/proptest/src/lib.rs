//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so this workspace
//! vendors the *API subset* of proptest that its test suites use:
//! the [`Strategy`] trait with `prop_map` / `prop_recursive` / `boxed`,
//! integer-range and tuple strategies, [`Just`], `any::<T>()`,
//! `prop_oneof!`, `collection::vec`, and the `proptest!` /
//! `prop_assert*!` / `prop_assume!` macros.
//!
//! Semantics: each `#[test]` inside `proptest! { .. }` runs
//! `ProptestConfig::cases` random cases drawn from a deterministic
//! per-test generator (seeded from the test's name, so failures are
//! reproducible run-to-run). There is **no shrinking** — a failing
//! case reports the case number and assertion message only. That is a
//! deliberate simplification: the workspace needs reproducible random
//! coverage, not minimal counterexamples.

pub mod strategy;
pub mod test_runner;

pub mod arbitrary {
    pub use crate::strategy::{any, Any, Arbitrary};
}

pub mod collection {
    pub use crate::strategy::{vec, SizeRange, VecStrategy};
}

pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// One random case: either passes, fails with a message, or is
/// rejected (filtered out by `prop_assume!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`\n{}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Reject the current case without failing the test (the runner just
/// moves on to the next case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The test-block macro: expands each `fn name(pat in strategy, ..)`
/// into a plain test running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($cfg) $($rest)*);
    };
    (@block ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let mut runner_rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for case_index in 0..config.cases {
                    let outcome: ::core::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        let ($($arg,)*) = ($(
                            $crate::strategy::Strategy::sample(&($strat), &mut runner_rng),
                        )*);
                        $body
                        ::core::result::Result::Ok(())
                    })();
                    match outcome {
                        ::core::result::Result::Ok(()) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::core::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(message),
                        ) => {
                            panic!(
                                "proptest `{}` failed at case {}/{}: {}",
                                stringify!($name),
                                case_index + 1,
                                config.cases,
                                message
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
