//! The two-phase handshake channel (Figure 2 of the paper).

use opentla_kernel::{Domain, Expr, State, Value, VarId, Vars};

/// A channel `c` of the two-phase handshake protocol: the triple
/// `⟨c.sig, c.ack, c.val⟩`.
///
/// The channel is ready for *sending* when `c.sig = c.ack`; a value `v`
/// is sent by setting `c.val := v` and complementing `c.sig`; receipt
/// is acknowledged by complementing `c.ack` (Figure 2).
#[derive(Clone, Debug)]
pub struct Channel {
    name: String,
    /// The sender's signal bit `c.sig`.
    pub sig: VarId,
    /// The receiver's acknowledge bit `c.ack`.
    pub ack: VarId,
    /// The data wire `c.val`.
    pub val: VarId,
}

impl Channel {
    /// Declares the three wires of a channel named `name`, with data
    /// values ranging over `values`.
    pub fn declare(vars: &mut Vars, name: impl Into<String>, values: &Domain) -> Channel {
        let name = name.into();
        Channel {
            sig: vars.declare(format!("{name}.sig"), Domain::bits()),
            ack: vars.declare(format!("{name}.ack"), Domain::bits()),
            val: vars.declare(format!("{name}.val"), values.clone()),
            name,
        }
    }

    /// The channel's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// All three wires, `⟨c.sig, c.ack, c.val⟩`.
    pub fn all_vars(&self) -> [VarId; 3] {
        [self.sig, self.ack, self.val]
    }

    /// The sender-owned pair `c.snd = ⟨c.sig, c.val⟩`.
    pub fn snd_vars(&self) -> [VarId; 2] {
        [self.sig, self.val]
    }

    /// `c.sig = c.ack`: ready for the next send.
    pub fn ready_to_send(&self) -> Expr {
        Expr::var(self.sig).eq(Expr::var(self.ack))
    }

    /// `c.sig ≠ c.ack`: a value is in flight, awaiting acknowledgment.
    pub fn ready_to_ack(&self) -> Expr {
        Expr::var(self.sig).ne(Expr::var(self.ack))
    }

    /// The updates of the `Send(v, c)` action: `c.val := v`,
    /// `c.sig := 1 − c.sig`. Guard separately with
    /// [`Channel::ready_to_send`].
    pub fn send_updates(&self, v: &Value) -> Vec<(VarId, Expr)> {
        vec![
            (self.val, Expr::con(v.clone())),
            (self.sig, Expr::int(1).sub(Expr::var(self.sig))),
        ]
    }

    /// A `Send` whose value is computed by an expression (the queue's
    /// `Send(Head(q), o)`).
    pub fn send_expr_updates(&self, v: Expr) -> Vec<(VarId, Expr)> {
        vec![
            (self.val, v),
            (self.sig, Expr::int(1).sub(Expr::var(self.sig))),
        ]
    }

    /// The updates of the `Ack(c)` action: `c.ack := 1 − c.ack`. Guard
    /// separately with [`Channel::ready_to_ack`].
    pub fn ack_updates(&self) -> Vec<(VarId, Expr)> {
        vec![(self.ack, Expr::int(1).sub(Expr::var(self.ack)))]
    }

    /// The sequence of values currently in flight on the channel:
    /// `⟨c.val⟩` if unacknowledged, `⟨⟩` otherwise. This is the middle
    /// term of the double-queue refinement mapping
    /// `q̄ = q₂ ∘ mid(z) ∘ q₁`.
    pub fn in_flight(&self) -> Expr {
        self.ready_to_ack()
            .ite(Expr::MkSeq(vec![Expr::var(self.val)]), Expr::empty_seq())
    }
}

/// One row of the paper's Figure 2 table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HandshakeStep {
    /// What happened, e.g. `"37 sent"`.
    pub label: String,
    /// `c.ack` after the step.
    pub ack: i64,
    /// `c.sig` after the step.
    pub sig: i64,
    /// `c.val` after the step (`None` before the first send).
    pub val: Option<i64>,
}

/// Replays the protocol of Figure 2 for a sequence of values, starting
/// from the initial state `c.sig = c.ack = 0`, alternating
/// send/acknowledge — regenerating the paper's table.
///
/// # Panics
///
/// Panics if the internal transition expressions fail to evaluate —
/// impossible for a well-formed channel over a domain containing the
/// sent values.
pub fn handshake_trace(values: &[i64]) -> Vec<HandshakeStep> {
    let mut vars = Vars::new();
    let domain = Domain::int_range(
        values.iter().copied().min().unwrap_or(0),
        values.iter().copied().max().unwrap_or(0),
    );
    let c = Channel::declare(&mut vars, "c", &domain);
    // State layout: [sig, ack, val].
    let mut state = State::new(vec![Value::Int(0), Value::Int(0), Value::Int(values[0])]);
    let mut out = vec![HandshakeStep {
        label: "initial state".into(),
        ack: 0,
        sig: 0,
        val: None,
    }];
    let get = |s: &State, v: VarId| s.get(v).as_int().expect("bits are ints");
    for (k, v) in values.iter().enumerate() {
        // Send.
        assert!(c.ready_to_send().holds_state(&state).unwrap());
        let updates: Vec<(VarId, Value)> = c
            .send_updates(&Value::Int(*v))
            .into_iter()
            .map(|(var, e)| (var, e.eval_state(&state).unwrap()))
            .collect();
        state = state.with(&updates);
        out.push(HandshakeStep {
            label: format!("{v} sent"),
            ack: get(&state, c.ack),
            sig: get(&state, c.sig),
            val: Some(get(&state, c.val)),
        });
        // Acknowledge — except after the last send, matching Figure 2's
        // trailing "19 sent" column.
        if k + 1 < values.len() {
            assert!(c.ready_to_ack().holds_state(&state).unwrap());
            let updates: Vec<(VarId, Value)> = c
                .ack_updates()
                .into_iter()
                .map(|(var, e)| (var, e.eval_state(&state).unwrap()))
                .collect();
            state = state.with(&updates);
            out.push(HandshakeStep {
                label: format!("{v} acked"),
                ack: get(&state, c.ack),
                sig: get(&state, c.sig),
                val: Some(get(&state, c.val)),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_kernel::StatePair;

    fn setup() -> (Vars, Channel) {
        let mut vars = Vars::new();
        let c = Channel::declare(&mut vars, "c", &Domain::int_range(0, 3));
        (vars, c)
    }

    #[test]
    fn declares_three_wires() {
        let (vars, c) = setup();
        assert_eq!(vars.name(c.sig), "c.sig");
        assert_eq!(vars.name(c.ack), "c.ack");
        assert_eq!(vars.name(c.val), "c.val");
        assert_eq!(c.name(), "c");
        assert_eq!(c.all_vars(), [c.sig, c.ack, c.val]);
        assert_eq!(c.snd_vars(), [c.sig, c.val]);
    }

    #[test]
    fn readiness_predicates() {
        let (_, c) = setup();
        let idle = State::new(vec![Value::Int(0), Value::Int(0), Value::Int(0)]);
        let pending = State::new(vec![Value::Int(1), Value::Int(0), Value::Int(2)]);
        assert!(c.ready_to_send().holds_state(&idle).unwrap());
        assert!(!c.ready_to_ack().holds_state(&idle).unwrap());
        assert!(c.ready_to_ack().holds_state(&pending).unwrap());
        assert!(!c.ready_to_send().holds_state(&pending).unwrap());
    }

    #[test]
    fn in_flight_sequence() {
        let (_, c) = setup();
        let idle = State::new(vec![Value::Int(0), Value::Int(0), Value::Int(0)]);
        let pending = State::new(vec![Value::Int(1), Value::Int(0), Value::Int(2)]);
        assert_eq!(
            c.in_flight().eval_state(&idle).unwrap(),
            Value::empty_seq()
        );
        assert_eq!(
            c.in_flight().eval_state(&pending).unwrap(),
            Value::seq(vec![Value::Int(2)])
        );
    }

    #[test]
    fn send_then_ack_round_trip() {
        let (_, c) = setup();
        let s0 = State::new(vec![Value::Int(0), Value::Int(0), Value::Int(0)]);
        let send: Vec<(VarId, Value)> = c
            .send_updates(&Value::Int(3))
            .into_iter()
            .map(|(v, e)| (v, e.eval_state(&s0).unwrap()))
            .collect();
        let s1 = s0.with(&send);
        assert_eq!(s1.get(c.sig), &Value::Int(1));
        assert_eq!(s1.get(c.val), &Value::Int(3));
        assert!(c.ready_to_ack().holds_state(&s1).unwrap());
        let ack: Vec<(VarId, Value)> = c
            .ack_updates()
            .into_iter()
            .map(|(v, e)| (v, e.eval_state(&s1).unwrap()))
            .collect();
        let s2 = s1.with(&ack);
        assert!(c.ready_to_send().holds_state(&s2).unwrap());
        // The data wire is untouched by the ack.
        assert_eq!(s2.get(c.val), &Value::Int(3));
        let _ = StatePair::new(&s1, &s2);
    }

    #[test]
    fn figure_2_table_regenerated() {
        // The paper's table for sending 37, 4, 19:
        //   ack: 0 0 1 1 0 0
        //   sig: 0 1 1 0 0 1
        //   val: – 37 37 4 4 19
        let trace = handshake_trace(&[37, 4, 19]);
        let acks: Vec<i64> = trace.iter().map(|r| r.ack).collect();
        let sigs: Vec<i64> = trace.iter().map(|r| r.sig).collect();
        let vals: Vec<Option<i64>> = trace.iter().map(|r| r.val).collect();
        assert_eq!(acks, vec![0, 0, 1, 1, 0, 0]);
        assert_eq!(sigs, vec![0, 1, 1, 0, 0, 1]);
        assert_eq!(
            vals,
            vec![None, Some(37), Some(37), Some(4), Some(4), Some(19)]
        );
        assert_eq!(trace[1].label, "37 sent");
        assert_eq!(trace[2].label, "37 acked");
        assert_eq!(trace[5].label, "19 sent");
    }
}
