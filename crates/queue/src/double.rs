//! Two queues in series (Figures 7–9 of the paper).
//!
//! The composite system `CDQ` — queue 1 from `i` to `z`, queue 2 from
//! `z` to `o`, plus the environment — implements a `(2N+1)`-element
//! queue `CQ[dbl]`. At the open-system level, the Composition Theorem
//! proves
//!
//! ```text
//! G ∧ (QE[1] ⊳ QM[1]) ∧ (QE[2] ⊳ QM[2]) ⇒ (QE[dbl] ⊳ QM[dbl])   (4)
//! ```
//!
//! where the component specifications are obtained from the base queue
//! by the substitutions `F[1] = F[z/o, q1/q]` and `F[2] = F[z/i, q2/q]`
//! and `F[dbl] = F[(2N+1)/N]` — mechanized here with
//! [`Renaming`]s and parameterization, and proved by
//! [`DoubleQueue::prove_composition`], which replays the paper's
//! Figure 9 obligation by obligation.
//!
//! The refinement mapping for the big queue's content is the standard
//! in-flight one: `q̄ = q₂ ∘ mid(z) ∘ q₁`, where `mid(z)` is the value
//! on the middle channel awaiting acknowledgment (if any). The extra
//! `+1` of capacity is exactly that in-flight slot.

use crate::{env_component, queue_component, Channel, FairnessStyle};
use opentla::{
    closed_product, compose, AgSpec, Certificate, ComponentSpec, CompositionOptions,
    CompositionProblem, RefinementReport, SpecError,
};
use opentla_check::{explore, ExploreOptions, System};
use opentla_kernel::{Domain, Expr, Renaming, Substitution, VarId, Vars};

/// The double-queue world: all channels, components, specifications,
/// and the two headline proofs.
#[derive(Clone, Debug)]
pub struct DoubleQueue {
    vars: Vars,
    i: Channel,
    z: Channel,
    o: Channel,
    q1: VarId,
    q2: VarId,
    q_dbl: VarId,
    queue1: ComponentSpec,
    queue2: ComponentSpec,
    env: ComponentSpec,
    env1: ComponentSpec,
    env2: ComponentSpec,
    big_queue: ComponentSpec,
    capacity: usize,
    values: Domain,
}

impl DoubleQueue {
    /// Builds the world for two `N = capacity` queues in series over
    /// `{0, …, num_values − 1}`.
    ///
    /// The component instances are produced from a *base* queue by the
    /// paper's substitutions: `queue1 = base[z/o, q1/q]`,
    /// `queue2 = base[z/i, q2/q]`, and the big queue is the base with
    /// `N` replaced by `2N + 1`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `num_values` is zero.
    pub fn new(capacity: usize, num_values: i64, style: FairnessStyle) -> DoubleQueue {
        assert!(capacity > 0, "capacity must be positive");
        assert!(num_values > 0, "need at least one value");
        let mut vars = Vars::new();
        let values = Domain::int_range(0, num_values - 1);
        let i = Channel::declare(&mut vars, "i", &values);
        let o = Channel::declare(&mut vars, "o", &values);
        let z = Channel::declare(&mut vars, "z", &values);
        let q = vars.declare("q", Domain::seqs_up_to(&values, capacity));
        let q1 = vars.declare("q1", Domain::seqs_up_to(&values, capacity));
        let q2 = vars.declare("q2", Domain::seqs_up_to(&values, capacity));
        let q_dbl = vars.declare("q_dbl", Domain::seqs_up_to(&values, 2 * capacity + 1));

        // The base specifications QM and QE over (i, o, q).
        let base_queue = queue_component("QM", &i, &o, q, capacity, style)
            .expect("base queue is well-formed");
        let base_env =
            env_component("QE", &i, &o, &values).expect("base env is well-formed");

        // F[1] = F[z/o, q1/q]; F[2] = F[z/i, q2/q].
        let to1 = Renaming::new([
            (o.sig, z.sig),
            (o.ack, z.ack),
            (o.val, z.val),
            (q, q1),
        ]);
        let to2 = Renaming::new([
            (i.sig, z.sig),
            (i.ack, z.ack),
            (i.val, z.val),
            (q, q2),
        ]);
        let queue1 = base_queue.rename("QM[1]", &to1);
        let queue2 = base_queue.rename("QM[2]", &to2);
        let env1 = base_env.rename("QE[1]", &to1);
        let env2 = base_env.rename("QE[2]", &to2);

        // F[dbl] = F[(2N+1)/N] with internal variable q_dbl.
        let big_queue = queue_component(
            "QM[dbl]",
            &i,
            &o,
            q_dbl,
            2 * capacity + 1,
            style,
        )
        .expect("big queue is well-formed");
        let env = base_env; // QE[dbl] = QE (it does not mention N or q).

        DoubleQueue {
            vars,
            i,
            z,
            o,
            q1,
            q2,
            q_dbl,
            queue1,
            queue2,
            env,
            env1,
            env2,
            big_queue,
            capacity,
            values,
        }
    }

    /// The variable registry.
    pub fn vars(&self) -> &Vars {
        &self.vars
    }

    /// The input channel `i`.
    pub fn i(&self) -> &Channel {
        &self.i
    }

    /// The middle channel `z`.
    pub fn z(&self) -> &Channel {
        &self.z
    }

    /// The output channel `o`.
    pub fn o(&self) -> &Channel {
        &self.o
    }

    /// The per-queue capacity `N`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The value domain.
    pub fn values(&self) -> &Domain {
        &self.values
    }

    /// The first queue's content variable `q1`.
    pub fn q1(&self) -> VarId {
        self.q1
    }

    /// The second queue's content variable `q2`.
    pub fn q2(&self) -> VarId {
        self.q2
    }

    /// The abstract queue's content variable `q̄`.
    pub fn q_dbl(&self) -> VarId {
        self.q_dbl
    }

    /// The first queue component `QM[1]` (from `i` to `z`).
    pub fn queue1(&self) -> &ComponentSpec {
        &self.queue1
    }

    /// The second queue component `QM[2]` (from `z` to `o`).
    pub fn queue2(&self) -> &ComponentSpec {
        &self.queue2
    }

    /// The environment `QE[dbl]` of the composite system.
    pub fn env(&self) -> &ComponentSpec {
        &self.env
    }

    /// The first queue's assumption `QE[1]`.
    pub fn env1(&self) -> &ComponentSpec {
        &self.env1
    }

    /// The second queue's assumption `QE[2]`.
    pub fn env2(&self) -> &ComponentSpec {
        &self.env2
    }

    /// The abstract `(2N+1)`-element queue `QM[dbl]`.
    pub fn big_queue(&self) -> &ComponentSpec {
        &self.big_queue
    }

    /// The assumption/guarantee specification `QE[1] ⊳ QM[1]`.
    ///
    /// # Errors
    ///
    /// Never fails for the components built here.
    pub fn ag1(&self) -> Result<AgSpec, SpecError> {
        AgSpec::new(self.env1.clone(), self.queue1.clone())
    }

    /// The assumption/guarantee specification `QE[2] ⊳ QM[2]`.
    ///
    /// # Errors
    ///
    /// Never fails for the components built here.
    pub fn ag2(&self) -> Result<AgSpec, SpecError> {
        AgSpec::new(self.env2.clone(), self.queue2.clone())
    }

    /// The target specification `QE[dbl] ⊳ QM[dbl]`.
    ///
    /// # Errors
    ///
    /// Never fails for the components built here.
    pub fn ag_dbl(&self) -> Result<AgSpec, SpecError> {
        AgSpec::new(self.env.clone(), self.big_queue.clone())
    }

    /// The refinement mapping `q̄ ↦ q₂ ∘ mid(z) ∘ q₁`.
    pub fn refinement_mapping(&self) -> Substitution {
        let q_bar = Expr::var(self.q2)
            .concat(self.z.in_flight())
            .concat(Expr::var(self.q1));
        Substitution::new([(self.q_dbl, q_bar)])
    }

    /// The composite complete system `CDQ` (Figure 8): environment plus
    /// the two queues.
    ///
    /// # Errors
    ///
    /// Never fails for the components built here.
    pub fn cdq_system(&self) -> Result<System, SpecError> {
        closed_product(&self.vars, &[&self.env, &self.queue1, &self.queue2])
    }

    /// Section A.4: `CDQ ⇒ CQ[dbl]` — the composite *complete* system
    /// implements the big queue's complete system (environment plus
    /// big queue), proved by
    /// [`check_component_refinement`](opentla::check_component_refinement)
    /// with the in-flight refinement mapping.
    ///
    /// # Errors
    ///
    /// Engine errors only; a refuted refinement shows up in the
    /// returned report.
    pub fn prove_refinement(
        &self,
        options: &ExploreOptions,
    ) -> Result<RefinementReport, SpecError> {
        let cdq = self.cdq_system()?;
        let graph = explore(&cdq, options)?;
        opentla::check_component_refinement(
            &cdq,
            &graph,
            &[&self.env, &self.big_queue],
            &self.refinement_mapping(),
        )
    }

    /// Section A.5 / Figure 9: the Composition Theorem proof of
    /// formula (4),
    /// `G ∧ (QE[1] ⊳ QM[1]) ∧ (QE[2] ⊳ QM[2]) ⇒ (QE[dbl] ⊳ QM[dbl])`.
    ///
    /// The returned certificate's obligations correspond to the proof
    /// sketch: hypothesis 1 is Figure 9's step 1 (each queue's
    /// assumption discharged by the complete system); `H2a/P4` is step
    /// 2.1 (orthogonality via Propositions 3–4); `H2a` is step 2.2
    /// (the closure implication); the `H2b` obligations are the
    /// liveness half of step 3.
    ///
    /// # Errors
    ///
    /// Structural errors only; failing hypotheses are recorded in the
    /// certificate.
    pub fn prove_composition(
        &self,
        options: &CompositionOptions,
    ) -> Result<Certificate, SpecError> {
        let ag1 = self.ag1()?;
        let ag2 = self.ag2()?;
        let target = self.ag_dbl()?;
        let problem = CompositionProblem {
            vars: &self.vars,
            components: vec![&ag1, &ag2],
            target: &target,
            mapping: self.refinement_mapping(),
        };
        compose(&problem, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_check::{check_invariant, check_simulation};

    fn small() -> DoubleQueue {
        DoubleQueue::new(1, 2, FairnessStyle::Joint)
    }

    #[test]
    fn renamed_components_use_the_right_wires() {
        let w = small();
        assert_eq!(w.queue1().outputs(), &[w.i().ack, w.z().sig, w.z().val]);
        assert_eq!(w.queue1().inputs(), &[w.i().sig, w.i().val, w.z().ack]);
        assert_eq!(w.queue1().internals(), &[w.q1()]);
        assert_eq!(w.queue2().outputs(), &[w.z().ack, w.o().sig, w.o().val]);
        assert_eq!(w.queue2().inputs(), &[w.z().sig, w.z().val, w.o().ack]);
        assert_eq!(w.env1().outputs(), &[w.i().sig, w.i().val, w.z().ack]);
        assert_eq!(w.env2().outputs(), &[w.z().sig, w.z().val, w.o().ack]);
    }

    #[test]
    fn cdq_explores() {
        let w = small();
        let sys = w.cdq_system().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert!(graph.len() > 50, "got {}", graph.len());
        // The combined content never exceeds 2N + 1.
        let mapping = w.refinement_mapping();
        let q_bar = mapping.get(w.q_dbl()).unwrap().clone();
        let inv = q_bar.len().le(Expr::int(2 * w.capacity() as i64 + 1));
        assert!(check_invariant(&sys, &graph, &inv).unwrap().holds());
    }

    #[test]
    fn refinement_holds() {
        let w = small();
        let report = w.prove_refinement(&ExploreOptions::default()).unwrap();
        assert!(report.holds(), "{report:?}");
        assert_eq!(report.liveness.len(), 1);
        assert!(report.liveness[0].0.contains("QM[dbl]"));
    }

    #[test]
    fn wrong_capacity_refinement_fails() {
        // Claiming the composite implements a (2N)-queue must fail: the
        // in-flight slot overflows it.
        let w = small();
        let mut vars = w.vars().clone();
        let q_small = vars.declare(
            "q_small",
            Domain::seqs_up_to(w.values(), 2 * w.capacity()),
        );
        let wrong_big = queue_component(
            "QM[2N]",
            w.i(),
            w.o(),
            q_small,
            2 * w.capacity(),
            FairnessStyle::Joint,
        )
        .unwrap();
        let mapping = Substitution::new([(
            q_small,
            Expr::var(w.q2())
                .concat(w.z().in_flight())
                .concat(Expr::var(w.q1())),
        )]);
        let cdq = closed_product(&vars, &[w.env(), w.queue1(), w.queue2()]).unwrap();
        let graph = explore(&cdq, &ExploreOptions::default()).unwrap();
        let target = w.env().safety_formula().and(wrong_big.safety_formula());
        let report = check_simulation(&cdq, &graph, &target, &mapping).unwrap();
        assert!(
            !report.holds(),
            "a 2N-element abstract queue is too small for CDQ"
        );
    }

    #[test]
    fn figure_9_composition_proof() {
        let w = small();
        let cert = w
            .prove_composition(&CompositionOptions::default())
            .unwrap();
        assert!(cert.holds(), "{}", cert.display(w.vars()));
        // Shape of the proof: G, P1+P2, two H1s (step 1), H2a/P4
        // (step 2.1), H2a (step 2.2), one H2b fairness (step 3).
        let ids: Vec<&str> = cert.obligations.iter().map(|o| o.id.as_str()).collect();
        assert!(ids.contains(&"H1[QE[1]]"));
        assert!(ids.contains(&"H1[QE[2]]"));
        assert!(ids.contains(&"H2a/P4"));
        assert!(ids.contains(&"H2a"));
        assert!(ids.iter().any(|i| i.starts_with("H2b")));
        assert!(cert.conclusion.contains("QE ⊳ QM[dbl]"));
    }
}
