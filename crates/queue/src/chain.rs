//! `k` queues in series — the natural scale-out of the paper's
//! double-queue example.
//!
//! The appendix composes two open queues; nothing in the Composition
//! Theorem is specific to two components, so this module builds a chain
//! of `k` queues `c₀ → c₁ → … → c_k` (with `c₀ = i` and `c_k = o`) and
//! proves that it implements a single queue of capacity
//! `k·N + (k − 1)` — each middle channel contributes one in-flight
//! slot. This is the workload for the composition-scaling benchmark.

use crate::{env_component, queue_component, Channel, FairnessStyle};
use opentla::{
    closed_product, compose, faults, AgSpec, Certificate, ComponentSpec, CompositionOptions,
    CompositionProblem, SpecError,
};
use opentla_check::System;
use opentla_kernel::{Domain, Expr, Formula, Substitution, Value, VarId, Vars};

/// A chain of `k` open queues and the machinery to compose them.
#[derive(Clone, Debug)]
pub struct QueueChain {
    vars: Vars,
    channels: Vec<Channel>,
    qs: Vec<VarId>,
    q_big: VarId,
    queues: Vec<ComponentSpec>,
    envs: Vec<ComponentSpec>,
    env: ComponentSpec,
    big_queue: ComponentSpec,
    capacity: usize,
}

impl QueueChain {
    /// Builds a chain of `k` queues, each of capacity `N = capacity`,
    /// over `{0, …, num_values − 1}`.
    ///
    /// # Panics
    ///
    /// Panics if `k`, `capacity`, or `num_values` is zero.
    pub fn new(k: usize, capacity: usize, num_values: i64, style: FairnessStyle) -> QueueChain {
        assert!(k > 0, "need at least one queue");
        assert!(capacity > 0, "capacity must be positive");
        assert!(num_values > 0, "need at least one value");
        let mut vars = Vars::new();
        let values = Domain::int_range(0, num_values - 1);
        let channels: Vec<Channel> = (0..=k)
            .map(|j| {
                let name = match j {
                    0 => "i".to_string(),
                    j if j == k => "o".to_string(),
                    j => format!("z{j}"),
                };
                Channel::declare(&mut vars, name, &values)
            })
            .collect();
        let qs: Vec<VarId> = (1..=k)
            .map(|j| vars.declare(format!("q{j}"), Domain::seqs_up_to(&values, capacity)))
            .collect();
        let big_capacity = k * capacity + (k - 1);
        let q_big = vars.declare("q_big", Domain::seqs_up_to(&values, big_capacity));

        let queues: Vec<ComponentSpec> = (0..k)
            .map(|j| {
                queue_component(
                    format!("QM[{}]", j + 1),
                    &channels[j],
                    &channels[j + 1],
                    qs[j],
                    capacity,
                    style,
                )
                .expect("queue is well-formed")
            })
            .collect();
        let envs: Vec<ComponentSpec> = (0..k)
            .map(|j| {
                env_component(
                    format!("QE[{}]", j + 1),
                    &channels[j],
                    &channels[j + 1],
                    &values,
                )
                .expect("env is well-formed")
            })
            .collect();
        let env = env_component("QE", &channels[0], &channels[k], &values)
            .expect("outer env is well-formed");
        let big_queue = queue_component(
            "QM[big]",
            &channels[0],
            &channels[k],
            q_big,
            big_capacity,
            style,
        )
        .expect("big queue is well-formed");

        QueueChain {
            vars,
            channels,
            qs,
            q_big,
            queues,
            envs,
            env,
            big_queue,
            capacity,
        }
    }

    /// The variable registry.
    pub fn vars(&self) -> &Vars {
        &self.vars
    }

    /// Number of queues in the chain.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// Always `false`: chains have at least one queue.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The channels `c₀ … c_k`.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The capacity of the implemented single queue,
    /// `k·N + (k − 1)`.
    pub fn big_capacity(&self) -> usize {
        self.len() * self.capacity + (self.len() - 1)
    }

    /// The abstract queue's content variable.
    pub fn q_big(&self) -> VarId {
        self.q_big
    }

    /// The refinement mapping
    /// `q̄ ↦ q_k ∘ mid(c_{k-1}) ∘ … ∘ mid(c₁) ∘ q₁`.
    pub fn refinement_mapping(&self) -> Substitution {
        let k = self.len();
        let mut expr = Expr::var(self.qs[k - 1]);
        for j in (0..k - 1).rev() {
            expr = expr
                .concat(self.channels[j + 1].in_flight())
                .concat(Expr::var(self.qs[j]));
        }
        Substitution::new([(self.q_big, expr)])
    }

    /// The complete chained system (environment plus all queues).
    ///
    /// # Errors
    ///
    /// Never fails for the components built here.
    pub fn complete_system(&self) -> Result<System, SpecError> {
        let mut members: Vec<&ComponentSpec> = vec![&self.env];
        members.extend(self.queues.iter());
        closed_product(&self.vars, &members)
    }

    /// The outer environment's assumption `QE` as a safety formula —
    /// the `E` of the chain's target `QE ⊳ QM[big]`.
    pub fn outer_assumption(&self) -> Formula {
        self.env.safety_formula()
    }

    /// The abstract single queue's guarantee `QM[big]`, with its
    /// content `q̄` eliminated through the refinement mapping — the `M`
    /// of the chain's target, stated over the chain's own variables.
    ///
    /// # Errors
    ///
    /// Kernel errors from applying the mapping (none for the mapping
    /// built here).
    pub fn big_queue_guarantee(&self) -> Result<Formula, SpecError> {
        Ok(self
            .refinement_mapping()
            .formula(&self.big_queue.safety_formula())?)
    }

    /// The chained system whose *environment* may crash: at any moment
    /// the outer `QE`'s wires (`c₀.sig`, `c₀.val`, `c_k.ack`) may
    /// spontaneously revert to their initial assignment, retracting an
    /// in-flight send or acknowledgment mid-handshake.
    ///
    /// A crash that retracts a pending signal violates `QE`'s step box
    /// while stuttering every variable of (the mapped) `QM[big]` — so
    /// `QE ⊳ QM[big]` *holds* with a genuine `⊳` diagnosis: the
    /// guarantee outlives the assumption by one step.
    ///
    /// # Errors
    ///
    /// Never fails for the components built here.
    pub fn crashy_env_system(&self) -> Result<System, SpecError> {
        let sys = self.complete_system()?;
        let first = &self.channels[0];
        let last = &self.channels[self.len()];
        let component = [first.sig, first.val, last.ack];
        let reset = [
            (first.sig, Value::Int(0)),
            (first.val, Value::Int(0)),
            (last.ack, Value::Int(0)),
        ];
        Ok(faults::crash_restart(&sys, &component, &reset)?)
    }

    /// The chained system in which queue `j` (1-based) may crash: its
    /// outputs and buffer revert to their initial assignment, dropping
    /// every queued element.
    ///
    /// Dropping elements shrinks the mapped content `q̄` without a
    /// `Deq`, so (the mapped) `QM[big]` is violated while `QE` is still
    /// intact — `QE ⊳ QM[big]` *fails*, and the diagnosis names the
    /// crash action and the step it struck.
    ///
    /// # Panics
    ///
    /// Panics if `j` is 0 or exceeds the chain length.
    ///
    /// # Errors
    ///
    /// Never fails for the components built here.
    pub fn crashy_queue_system(&self, j: usize) -> Result<System, SpecError> {
        assert!(
            (1..=self.len()).contains(&j),
            "queue index {j} out of range 1..={}",
            self.len()
        );
        let sys = self.complete_system()?;
        let input = &self.channels[j - 1];
        let output = &self.channels[j];
        let q = self.qs[j - 1];
        let component = [input.ack, output.sig, output.val, q];
        let reset = [
            (input.ack, Value::Int(0)),
            (output.sig, Value::Int(0)),
            (output.val, Value::Int(0)),
            (q, Value::empty_seq()),
        ];
        Ok(faults::crash_restart(&sys, &component, &reset)?)
    }

    /// Proves, via the Composition Theorem, that the chain of open
    /// queues implements the single `k·N + (k−1)`-element open queue:
    /// `G ∧ ∧_j (QE[j] ⊳ QM[j]) ⇒ (QE ⊳ QM[big])`.
    ///
    /// # Errors
    ///
    /// Structural errors only; failing hypotheses land in the
    /// certificate.
    pub fn prove_composition(
        &self,
        options: &CompositionOptions,
    ) -> Result<Certificate, SpecError> {
        let ags: Vec<AgSpec> = self
            .queues
            .iter()
            .zip(&self.envs)
            .map(|(qm, qe)| AgSpec::new(qe.clone(), qm.clone()))
            .collect::<Result<_, _>>()?;
        let target = AgSpec::new(self.env.clone(), self.big_queue.clone())?;
        let problem = CompositionProblem {
            vars: &self.vars,
            components: ags.iter().collect(),
            target: &target,
            mapping: self.refinement_mapping(),
        };
        compose(&problem, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_check::{check_invariant, explore, ExploreOptions};

    #[test]
    fn chain_of_one_is_a_single_queue() {
        let chain = QueueChain::new(1, 1, 2, FairnessStyle::Joint);
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.big_capacity(), 1);
        let cert = chain
            .prove_composition(&CompositionOptions::default())
            .unwrap();
        assert!(cert.holds(), "{}", cert.display(chain.vars()));
    }

    #[test]
    fn chain_capacity_invariant() {
        let chain = QueueChain::new(3, 1, 2, FairnessStyle::Joint);
        assert_eq!(chain.big_capacity(), 5);
        let sys = chain.complete_system().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let mapping = chain.refinement_mapping();
        let q_bar = mapping.get(chain.q_big()).unwrap().clone();
        let inv = q_bar.clone().len().le(Expr::int(5));
        assert!(check_invariant(&sys, &graph, &inv).unwrap().holds());
        // And the bound is tight: length 5 is reachable.
        let tight = q_bar.len().lt(Expr::int(5));
        assert!(!check_invariant(&sys, &graph, &tight).unwrap().holds());
    }

    #[test]
    fn crashing_environment_is_outlived_by_the_big_queue() {
        let chain = QueueChain::new(2, 1, 2, FairnessStyle::None);
        let sys = chain.crashy_env_system().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let report = opentla::check_ag_safety_diagnosed(
            &sys,
            &graph,
            &chain.outer_assumption(),
            &chain.big_queue_guarantee().unwrap(),
        )
        .unwrap();
        assert!(report.holds(), "M must outlive the crashing environment");
        let brk = report.env_break.expect("the crash must break QE");
        assert_eq!(brk.action.as_deref(), Some("fault:crash_restart"));
        let text = brk.to_string();
        assert!(text.contains(&format!("E broken at step {}", brk.step)), "{text}");
        assert!(
            text.contains(&format!("M held {} steps", brk.step + 1)),
            "{text}"
        );
    }

    #[test]
    fn crashing_queue_refutes_the_big_queue_guarantee() {
        let chain = QueueChain::new(2, 1, 2, FairnessStyle::None);
        let sys = chain.crashy_queue_system(1).unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let report = opentla::check_ag_safety_diagnosed(
            &sys,
            &graph,
            &chain.outer_assumption(),
            &chain.big_queue_guarantee().unwrap(),
        )
        .unwrap();
        assert!(!report.holds(), "a crashed buffer drops queued elements");
        let cx = match &report.verdict {
            opentla_check::Verdict::Violated(cx) => cx,
            other => panic!("expected a violation, got {other:?}"),
        };
        assert!(cx.reason().contains("fault:crash_restart"), "{}", cx.reason());
        assert!(cx.reason().contains("violated conjunct"), "{}", cx.reason());
    }

    #[test]
    fn chain_of_three_composes() {
        let chain = QueueChain::new(3, 1, 2, FairnessStyle::Joint);
        let cert = chain
            .prove_composition(&CompositionOptions::default())
            .unwrap();
        assert!(cert.holds(), "{}", cert.display(chain.vars()));
        // Three H1 obligations, one per queue assumption.
        let h1s = cert
            .obligations
            .iter()
            .filter(|o| o.id.starts_with("H1"))
            .count();
        assert_eq!(h1s, 3);
    }
}
