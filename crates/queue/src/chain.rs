//! `k` queues in series — the natural scale-out of the paper's
//! double-queue example.
//!
//! The appendix composes two open queues; nothing in the Composition
//! Theorem is specific to two components, so this module builds a chain
//! of `k` queues `c₀ → c₁ → … → c_k` (with `c₀ = i` and `c_k = o`) and
//! proves that it implements a single queue of capacity
//! `k·N + (k − 1)` — each middle channel contributes one in-flight
//! slot. This is the workload for the composition-scaling benchmark.

use crate::{env_component, queue_component, Channel, FairnessStyle};
use opentla::{
    closed_product, compose, AgSpec, Certificate, ComponentSpec, CompositionOptions,
    CompositionProblem, SpecError,
};
use opentla_check::System;
use opentla_kernel::{Domain, Expr, Substitution, VarId, Vars};

/// A chain of `k` open queues and the machinery to compose them.
#[derive(Clone, Debug)]
pub struct QueueChain {
    vars: Vars,
    channels: Vec<Channel>,
    qs: Vec<VarId>,
    q_big: VarId,
    queues: Vec<ComponentSpec>,
    envs: Vec<ComponentSpec>,
    env: ComponentSpec,
    big_queue: ComponentSpec,
    capacity: usize,
}

impl QueueChain {
    /// Builds a chain of `k` queues, each of capacity `N = capacity`,
    /// over `{0, …, num_values − 1}`.
    ///
    /// # Panics
    ///
    /// Panics if `k`, `capacity`, or `num_values` is zero.
    pub fn new(k: usize, capacity: usize, num_values: i64, style: FairnessStyle) -> QueueChain {
        assert!(k > 0, "need at least one queue");
        assert!(capacity > 0, "capacity must be positive");
        assert!(num_values > 0, "need at least one value");
        let mut vars = Vars::new();
        let values = Domain::int_range(0, num_values - 1);
        let channels: Vec<Channel> = (0..=k)
            .map(|j| {
                let name = match j {
                    0 => "i".to_string(),
                    j if j == k => "o".to_string(),
                    j => format!("z{j}"),
                };
                Channel::declare(&mut vars, name, &values)
            })
            .collect();
        let qs: Vec<VarId> = (1..=k)
            .map(|j| vars.declare(format!("q{j}"), Domain::seqs_up_to(&values, capacity)))
            .collect();
        let big_capacity = k * capacity + (k - 1);
        let q_big = vars.declare("q_big", Domain::seqs_up_to(&values, big_capacity));

        let queues: Vec<ComponentSpec> = (0..k)
            .map(|j| {
                queue_component(
                    format!("QM[{}]", j + 1),
                    &channels[j],
                    &channels[j + 1],
                    qs[j],
                    capacity,
                    style,
                )
                .expect("queue is well-formed")
            })
            .collect();
        let envs: Vec<ComponentSpec> = (0..k)
            .map(|j| {
                env_component(
                    format!("QE[{}]", j + 1),
                    &channels[j],
                    &channels[j + 1],
                    &values,
                )
                .expect("env is well-formed")
            })
            .collect();
        let env = env_component("QE", &channels[0], &channels[k], &values)
            .expect("outer env is well-formed");
        let big_queue = queue_component(
            "QM[big]",
            &channels[0],
            &channels[k],
            q_big,
            big_capacity,
            style,
        )
        .expect("big queue is well-formed");

        QueueChain {
            vars,
            channels,
            qs,
            q_big,
            queues,
            envs,
            env,
            big_queue,
            capacity,
        }
    }

    /// The variable registry.
    pub fn vars(&self) -> &Vars {
        &self.vars
    }

    /// Number of queues in the chain.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// Always `false`: chains have at least one queue.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The channels `c₀ … c_k`.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// The capacity of the implemented single queue,
    /// `k·N + (k − 1)`.
    pub fn big_capacity(&self) -> usize {
        self.len() * self.capacity + (self.len() - 1)
    }

    /// The abstract queue's content variable.
    pub fn q_big(&self) -> VarId {
        self.q_big
    }

    /// The refinement mapping
    /// `q̄ ↦ q_k ∘ mid(c_{k-1}) ∘ … ∘ mid(c₁) ∘ q₁`.
    pub fn refinement_mapping(&self) -> Substitution {
        let k = self.len();
        let mut expr = Expr::var(self.qs[k - 1]);
        for j in (0..k - 1).rev() {
            expr = expr
                .concat(self.channels[j + 1].in_flight())
                .concat(Expr::var(self.qs[j]));
        }
        Substitution::new([(self.q_big, expr)])
    }

    /// The complete chained system (environment plus all queues).
    ///
    /// # Errors
    ///
    /// Never fails for the components built here.
    pub fn complete_system(&self) -> Result<System, SpecError> {
        let mut members: Vec<&ComponentSpec> = vec![&self.env];
        members.extend(self.queues.iter());
        closed_product(&self.vars, &members)
    }

    /// Proves, via the Composition Theorem, that the chain of open
    /// queues implements the single `k·N + (k−1)`-element open queue:
    /// `G ∧ ∧_j (QE[j] ⊳ QM[j]) ⇒ (QE ⊳ QM[big])`.
    ///
    /// # Errors
    ///
    /// Structural errors only; failing hypotheses land in the
    /// certificate.
    pub fn prove_composition(
        &self,
        options: &CompositionOptions,
    ) -> Result<Certificate, SpecError> {
        let ags: Vec<AgSpec> = self
            .queues
            .iter()
            .zip(&self.envs)
            .map(|(qm, qe)| AgSpec::new(qe.clone(), qm.clone()))
            .collect::<Result<_, _>>()?;
        let target = AgSpec::new(self.env.clone(), self.big_queue.clone())?;
        let problem = CompositionProblem {
            vars: &self.vars,
            components: ags.iter().collect(),
            target: &target,
            mapping: self.refinement_mapping(),
        };
        compose(&problem, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_check::{check_invariant, explore, ExploreOptions};

    #[test]
    fn chain_of_one_is_a_single_queue() {
        let chain = QueueChain::new(1, 1, 2, FairnessStyle::Joint);
        assert_eq!(chain.len(), 1);
        assert_eq!(chain.big_capacity(), 1);
        let cert = chain
            .prove_composition(&CompositionOptions::default())
            .unwrap();
        assert!(cert.holds(), "{}", cert.display(chain.vars()));
    }

    #[test]
    fn chain_capacity_invariant() {
        let chain = QueueChain::new(3, 1, 2, FairnessStyle::Joint);
        assert_eq!(chain.big_capacity(), 5);
        let sys = chain.complete_system().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let mapping = chain.refinement_mapping();
        let q_bar = mapping.get(chain.q_big()).unwrap().clone();
        let inv = q_bar.clone().len().le(Expr::int(5));
        assert!(check_invariant(&sys, &graph, &inv).unwrap().holds());
        // And the bound is tight: length 5 is reachable.
        let tight = q_bar.len().lt(Expr::int(5));
        assert!(!check_invariant(&sys, &graph, &tight).unwrap().holds());
    }

    #[test]
    fn chain_of_three_composes() {
        let chain = QueueChain::new(3, 1, 2, FairnessStyle::Joint);
        let cert = chain
            .prove_composition(&CompositionOptions::default())
            .unwrap();
        assert!(cert.holds(), "{}", cert.display(chain.vars()));
        // Three H1 obligations, one per queue assumption.
        let h1s = cert
            .obligations
            .iter()
            .filter(|o| o.id.starts_with("H1"))
            .count();
        assert_eq!(h1s, 3);
    }
}
