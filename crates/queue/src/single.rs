//! The complete single-queue system `CQ` (Figures 3–6).

use crate::{env_component, queue_component, Channel, FairnessStyle};
use opentla::{chaos_environment, closed_product, AgSpec, ComponentSpec, SpecError};
use opentla_check::System;
use opentla_kernel::{Domain, Expr, VarId, Vars};

/// The parameterized single-queue world: an `N`-element queue with
/// input channel `i` and output channel `o` over a finite value
/// domain, its environment, the assumption/guarantee specification
/// `QE ⊳ QM`, and the complete system `CQ`.
#[derive(Clone, Debug)]
pub struct SingleQueue {
    vars: Vars,
    input: Channel,
    output: Channel,
    q: VarId,
    queue: ComponentSpec,
    env: ComponentSpec,
    values: Domain,
    capacity: usize,
}

impl SingleQueue {
    /// Builds the world for an `N = capacity` queue over
    /// `{0, …, num_values − 1}`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `num_values` is zero.
    pub fn new(capacity: usize, num_values: i64, style: FairnessStyle) -> SingleQueue {
        assert!(capacity > 0, "capacity must be positive");
        assert!(num_values > 0, "need at least one value");
        let mut vars = Vars::new();
        let values = Domain::int_range(0, num_values - 1);
        let input = Channel::declare(&mut vars, "i", &values);
        let output = Channel::declare(&mut vars, "o", &values);
        let q = vars.declare("q", Domain::seqs_up_to(&values, capacity));
        let queue = queue_component("QM", &input, &output, q, capacity, style)
            .expect("queue component is well-formed");
        let env = env_component("QE", &input, &output, &values)
            .expect("environment component is well-formed");
        SingleQueue {
            vars,
            input,
            output,
            q,
            queue,
            env,
            values,
            capacity,
        }
    }

    /// The variable registry.
    pub fn vars(&self) -> &Vars {
        &self.vars
    }

    /// The input channel `i`.
    pub fn input(&self) -> &Channel {
        &self.input
    }

    /// The output channel `o`.
    pub fn output(&self) -> &Channel {
        &self.output
    }

    /// The internal queue-content variable `q`.
    pub fn q(&self) -> VarId {
        self.q
    }

    /// The queue component `QM`.
    pub fn queue(&self) -> &ComponentSpec {
        &self.queue
    }

    /// The environment component `QE`.
    pub fn env(&self) -> &ComponentSpec {
        &self.env
    }

    /// The value domain.
    pub fn values(&self) -> &Domain {
        &self.values
    }

    /// The capacity `N`.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The assumption/guarantee specification `QE ⊳ QM`.
    ///
    /// # Errors
    ///
    /// Never fails for the components built here; the `Result` is the
    /// generic [`AgSpec::new`] contract.
    pub fn ag_spec(&self) -> Result<AgSpec, SpecError> {
        AgSpec::new(self.env.clone(), self.queue.clone())
    }

    /// The complete system `CQ` — queue plus environment (Figure 5).
    ///
    /// # Errors
    ///
    /// Never fails for the components built here.
    pub fn complete_system(&self) -> Result<System, SpecError> {
        closed_product(&self.vars, &[&self.env, &self.queue])
    }

    /// The queue running against a maximally hostile environment that
    /// may set `i.sig`, `i.val`, and `o.ack` arbitrarily — the world in
    /// which *realization* of `QE ⊳ QM` is checked.
    ///
    /// # Errors
    ///
    /// Never fails for the components built here.
    pub fn chaos_system(&self) -> Result<System, SpecError> {
        let chaos = chaos_environment(
            "chaos",
            &self.vars,
            &[self.input.sig, self.input.val, self.output.ack],
        );
        closed_product(&self.vars, &[&chaos, &self.queue])
    }

    /// The capacity invariant `|q| ≤ N`.
    pub fn capacity_invariant(&self) -> Expr {
        Expr::var(self.q).len().le(Expr::int(self.capacity as i64))
    }

    /// The handshake-discipline invariant: whenever the queue has a
    /// value in flight on `o`, that value is `o.val` — trivially true
    /// here but stated as in the paper's discussion; more usefully, the
    /// queue never *sends* while the channel is pending, which shows up
    /// as: `o` pending implies the queue's `Deq` is disabled. Expressed
    /// as a state predicate over the complete system.
    pub fn output_discipline(&self) -> Expr {
        // o pending ⇒ ¬(Deq's channel guard): sig ≠ ack ⇒ ¬(sig = ack).
        self.output
            .ready_to_ack()
            .implies(self.output.ready_to_send().not())
    }

    /// The liveness property "a pending input with space in the queue
    /// is eventually acknowledged", as a `(P, Q)` leads-to pair: `P` is
    /// "`i` pending and `|q| < N`", `Q` is "`i.sig = i.ack`" (the
    /// handshake completed — only the queue's `Enq` can make that
    /// happen from `P`).
    pub fn input_served(&self) -> (Expr, Expr) {
        let pending_with_space = Expr::all([
            self.input.ready_to_ack(),
            Expr::var(self.q).len().lt(Expr::int(self.capacity as i64)),
        ]);
        (pending_with_space, self.input.ready_to_send())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_check::{
        check_invariant, check_liveness, explore, ExploreOptions, LiveTarget,
    };

    #[test]
    fn cq_state_space_is_finite_and_explored() {
        let world = SingleQueue::new(2, 2, FairnessStyle::Joint);
        let sys = world.complete_system().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert!(graph.len() > 10, "got {}", graph.len());
        assert!(graph.edge_count() > graph.len());
    }

    #[test]
    fn capacity_invariant_holds() {
        let world = SingleQueue::new(2, 2, FairnessStyle::Joint);
        let sys = world.complete_system().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let verdict =
            check_invariant(&sys, &graph, &world.capacity_invariant()).unwrap();
        assert!(verdict.holds());
    }

    #[test]
    fn fifo_order_observed() {
        // Over the complete system: whenever Deq fires, it sends the
        // oldest enqueued value. This is built into the spec (Head), so
        // check a sharper derived invariant: o.val in flight equals
        // what Deq sent — i.e. the step invariant [Deq sends Head]. We
        // approximate by checking that q's length changes by exactly
        // one per queue action, via the invariant that |q| stays in
        // range after exploration (already done) plus spot semantics in
        // components.rs. Here: the discipline invariant.
        let world = SingleQueue::new(2, 3, FairnessStyle::Joint);
        let sys = world.complete_system().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let verdict = check_invariant(&sys, &graph, &world.output_discipline()).unwrap();
        assert!(verdict.holds());
    }

    #[test]
    fn pending_input_is_served_under_fairness() {
        let world = SingleQueue::new(1, 2, FairnessStyle::Joint);
        let sys = world.complete_system().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let p = Expr::all([
            world.input().ready_to_ack(),
            Expr::var(world.q()).len().lt(Expr::int(1)),
        ]);
        let q = world.input().ready_to_send();
        let verdict =
            check_liveness(&sys, &graph, &LiveTarget::LeadsTo(p, q)).unwrap();
        assert!(verdict.holds(), "{:?}", verdict.counterexample().map(|c| c.reason().to_string()));
    }

    #[test]
    fn no_service_without_fairness() {
        let world = SingleQueue::new(1, 2, FairnessStyle::None);
        let sys = world.complete_system().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let p = Expr::all([
            world.input().ready_to_ack(),
            Expr::var(world.q()).len().lt(Expr::int(1)),
        ]);
        let q = world.input().ready_to_send();
        let verdict =
            check_liveness(&sys, &graph, &LiveTarget::LeadsTo(p, q)).unwrap();
        assert!(!verdict.holds(), "without WF the queue may stutter forever");
    }

    #[test]
    fn joint_and_split_fairness_agree() {
        // The paper: WF(Q_M) is equivalent to WF(Enq) ∧ WF(Deq) for
        // this spec. Check that the two systems verify the same
        // leads-to property.
        for style in [FairnessStyle::Joint, FairnessStyle::Split] {
            let world = SingleQueue::new(1, 2, style);
            let sys = world.complete_system().unwrap();
            let graph = explore(&sys, &ExploreOptions::default()).unwrap();
            let p = world.input().ready_to_ack();
            let served = world.input().ready_to_send();
            let verdict = check_liveness(
                &sys,
                &graph,
                &LiveTarget::LeadsTo(
                    Expr::all([p, Expr::var(world.q()).len().lt(Expr::int(1))]),
                    served,
                ),
            )
            .unwrap();
            assert!(verdict.holds(), "style {style:?}");
        }
    }

    #[test]
    fn queue_realizes_its_ag_spec() {
        // Against a hostile environment, the queue still guarantees QM
        // at least one step longer than the environment respects QE.
        let world = SingleQueue::new(1, 2, FairnessStyle::Joint);
        let sys = world.chaos_system().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let e = world.env().safety_formula();
        let m = world.queue().safety_formula();
        let verdict = opentla::check_ag_safety(&sys, &graph, &e, &m).unwrap();
        assert!(verdict.holds(), "{:?}", verdict.counterexample().map(|c| c.reason().to_string()));
    }

    #[test]
    fn chaos_env_actually_violates_qe() {
        // Sanity: the chaos system contains QE-violating behaviors
        // (otherwise the realization check would be vacuous).
        let world = SingleQueue::new(1, 2, FairnessStyle::Joint);
        let sys = world.chaos_system().unwrap();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let e = world.env().safety_formula();
        let report = opentla_check::check_simulation(
            &sys,
            &graph,
            &e,
            &opentla_kernel::Substitution::default(),
        )
        .unwrap();
        assert!(!report.holds(), "chaos must be able to break QE");
    }
}
