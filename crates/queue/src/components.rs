//! The queue process and its environment as canonical components
//! (Figures 4 and 6 of the paper).

use crate::Channel;
use opentla::{ComponentSpec, SpecError};
use opentla_check::{GuardedAction, Init};
use opentla_kernel::{Domain, Expr, Value, VarId};

/// Which fairness conjunct the queue's specification carries.
///
/// The paper notes (Section A.2) that `WF(Q_M)` and
/// `WF(Enq) ∧ WF(Deq)` yield logically equivalent specifications; both
/// styles are provided so that equivalence can be machine-checked.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum FairnessStyle {
    /// `ICL ≜ WF_{⟨i,o,q⟩}(Q_M)` — one condition over `Enq ∨ Deq`.
    #[default]
    Joint,
    /// `WF(Enq) ∧ WF(Deq)` — one condition per action.
    Split,
    /// No fairness: the safety-only queue.
    None,
}

/// The `N`-element queue process of Figure 4 as a canonical component:
///
/// * outputs `m = ⟨input.ack, output.sig, output.val⟩`,
/// * internal `x = ⟨q⟩`,
/// * inputs `e = ⟨input.sig, input.val, output.ack⟩`,
/// * actions `Enq` (acknowledge a pending input and append it to `q`;
///   enabled only when `|q| < N`) and `Deq` (send `Head(q)` on the
///   output channel when it is ready),
/// * fairness per `style`.
///
/// `q` must be declared with domain
/// [`Domain::seqs_up_to`]`(values, capacity)`.
///
/// # Errors
///
/// Propagates [`SpecError`]s from the component builder (none for
/// well-formed inputs).
pub fn queue_component(
    name: impl Into<String>,
    input: &Channel,
    output: &Channel,
    q: VarId,
    capacity: usize,
    style: FairnessStyle,
) -> Result<ComponentSpec, SpecError> {
    let enq = GuardedAction::new(
        "Enq",
        Expr::all([
            input.ready_to_ack(),
            Expr::var(q).len().lt(Expr::int(capacity as i64)),
        ]),
        [
            vec![(
                q,
                Expr::var(q).concat(Expr::MkSeq(vec![Expr::var(input.val)])),
            )],
            input.ack_updates(),
        ]
        .concat(),
    );
    let deq = GuardedAction::new(
        "Deq",
        Expr::all([
            output.ready_to_send(),
            Expr::var(q).len().gt(Expr::int(0)),
        ]),
        [
            output.send_expr_updates(Expr::var(q).head()),
            vec![(q, Expr::var(q).tail())],
        ]
        .concat(),
    );
    let mut builder = ComponentSpec::builder(name)
        .outputs([input.ack, output.sig, output.val])
        .internals([q])
        .inputs([input.sig, input.val, output.ack])
        .init(Init::new([
            (input.ack, Value::Int(0)),
            (output.sig, Value::Int(0)),
            (q, Value::empty_seq()),
        ]))
        .action(enq)
        .action(deq);
    builder = match style {
        FairnessStyle::Joint => builder.weak_fairness([0, 1]),
        FairnessStyle::Split => builder.weak_fairness([0]).weak_fairness([1]),
        FairnessStyle::None => builder,
    };
    builder.build()
}

/// The queue's environment (Figure 6): sends arbitrary values over
/// `input` (`Put`) and acknowledges values on `output` (`Get`). A
/// safety-only component — exactly the `QE` assumption of the
/// assumption/guarantee specification `QE ⊳ QM`.
///
/// # Errors
///
/// Propagates [`SpecError`]s from the component builder.
pub fn env_component(
    name: impl Into<String>,
    input: &Channel,
    output: &Channel,
    values: &Domain,
) -> Result<ComponentSpec, SpecError> {
    let puts = GuardedAction::family("Put", values.values().to_vec(), |v| {
        (input.ready_to_send(), input.send_updates(v))
    });
    let get = GuardedAction::new("Get", output.ready_to_ack(), output.ack_updates());
    ComponentSpec::builder(name)
        .outputs([input.sig, input.val, output.ack])
        .inputs([input.ack, output.sig, output.val])
        .init(Init::new([
            (input.sig, Value::Int(0)),
            (output.ack, Value::Int(0)),
        ]))
        .actions(puts)
        .action(get)
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_kernel::{State, Vars};

    fn setup(n: usize, vals: i64) -> (Vars, Channel, Channel, VarId, Domain) {
        let mut vars = Vars::new();
        let values = Domain::int_range(0, vals - 1);
        let i = Channel::declare(&mut vars, "i", &values);
        let o = Channel::declare(&mut vars, "o", &values);
        let q = vars.declare("q", Domain::seqs_up_to(&values, n));
        (vars, i, o, q, values)
    }

    #[test]
    fn queue_component_shape() {
        let (_, i, o, q, _) = setup(2, 2);
        let qm = queue_component("QM", &i, &o, q, 2, FairnessStyle::Joint).unwrap();
        assert_eq!(qm.outputs(), &[i.ack, o.sig, o.val]);
        assert_eq!(qm.internals(), &[q]);
        assert_eq!(qm.inputs(), &[i.sig, i.val, o.ack]);
        assert_eq!(qm.actions().len(), 2);
        assert_eq!(qm.fairness().len(), 1);
        let split = queue_component("QM", &i, &o, q, 2, FairnessStyle::Split).unwrap();
        assert_eq!(split.fairness().len(), 2);
        let none = queue_component("QM", &i, &o, q, 2, FairnessStyle::None).unwrap();
        assert!(!none.has_fairness());
    }

    #[test]
    fn enq_guard_respects_capacity() {
        let (vars, i, o, q, values) = setup(1, 2);
        let qm = queue_component("QM", &i, &o, q, 1, FairnessStyle::Joint).unwrap();
        let enq = &qm.actions()[0];
        // i pending (sig=1, ack=0), q full (one element, capacity 1).
        let full = State::new(vec![
            Value::Int(1),
            Value::Int(0),
            Value::Int(1), // i
            Value::Int(0),
            Value::Int(0),
            Value::Int(0), // o
            Value::seq(vec![Value::Int(0)]),
        ]);
        assert!(enq.fire(&full, &vars).unwrap().is_none(), "full queue");
        // Same but q empty: fires, appends i.val, flips i.ack.
        let ready = full.with(&[(q, Value::empty_seq())]);
        let next = enq.fire(&ready, &vars).unwrap().expect("enabled");
        assert_eq!(next.get(q), &Value::seq(vec![Value::Int(1)]));
        assert_eq!(next.get(i.ack), &Value::Int(1));
        // Inputs untouched.
        assert_eq!(next.get(i.sig), &Value::Int(1));
        let _ = values;
    }

    #[test]
    fn deq_sends_head() {
        let (vars, i, o, q, _) = setup(2, 3);
        let qm = queue_component("QM", &i, &o, q, 2, FairnessStyle::Joint).unwrap();
        let deq = &qm.actions()[1];
        // o ready (sig=ack=0), q = ⟨2, 1⟩.
        let s = State::new(vec![
            Value::Int(0),
            Value::Int(0),
            Value::Int(0), // i
            Value::Int(0),
            Value::Int(0),
            Value::Int(0), // o
            Value::seq(vec![Value::Int(2), Value::Int(1)]),
        ]);
        let next = deq.fire(&s, &vars).unwrap().expect("enabled");
        assert_eq!(next.get(o.val), &Value::Int(2), "head is sent");
        assert_eq!(next.get(o.sig), &Value::Int(1));
        assert_eq!(next.get(q), &Value::seq(vec![Value::Int(1)]));
        // Not enabled when o is pending.
        let pending = s.with(&[(o.sig, Value::Int(1))]);
        assert!(deq.fire(&pending, &vars).unwrap().is_none());
        // Not enabled when q is empty.
        let empty = s.with(&[(q, Value::empty_seq())]);
        assert!(deq.fire(&empty, &vars).unwrap().is_none());
    }

    #[test]
    fn env_component_shape() {
        let (_, i, o, _, values) = setup(2, 3);
        let qe = env_component("QE", &i, &o, &values).unwrap();
        // One Put per value + Get.
        assert_eq!(qe.actions().len(), 4);
        assert!(!qe.has_fairness());
        assert_eq!(qe.outputs(), &[i.sig, i.val, o.ack]);
    }

    #[test]
    fn env_put_and_get() {
        let (vars, i, o, _, values) = setup(2, 2);
        let qe = env_component("QE", &i, &o, &values).unwrap();
        let s = State::new(vec![
            Value::Int(0),
            Value::Int(0),
            Value::Int(0), // i ready
            Value::Int(1),
            Value::Int(0),
            Value::Int(1), // o pending
            Value::empty_seq(),
        ]);
        // Put(1).
        let put1 = &qe.actions()[1];
        let next = put1.fire(&s, &vars).unwrap().expect("i ready");
        assert_eq!(next.get(i.val), &Value::Int(1));
        assert_eq!(next.get(i.sig), &Value::Int(1));
        // Put not enabled once pending.
        assert!(put1.fire(&next, &vars).unwrap().is_none());
        // Get acks o.
        let get = &qe.actions()[2];
        let next = get.fire(&s, &vars).unwrap().expect("o pending");
        assert_eq!(next.get(o.ack), &Value::Int(1));
    }
}
