//! # opentla-queue
//!
//! The queue example from the appendix of *Open Systems in TLA*
//! (Abadi & Lamport, PODC 1994), fully parameterized and
//! machine-checked:
//!
//! * [`Channel`] — the two-phase handshake protocol of Figure 2;
//! * [`queue_component`] / [`env_component`] — the `N`-element queue
//!   process of Figure 4 and its environment, as canonical
//!   [`ComponentSpec`](opentla::ComponentSpec)s (Figures 5–6);
//! * [`SingleQueue`] — the complete system `CQ` with its invariants
//!   and liveness properties;
//! * [`DoubleQueue`] — two queues in series (Figures 7–8), the
//!   refinement `CDQ ⇒ CQ[dbl]` via the in-flight refinement mapping,
//!   and the **Figure 9 proof** of
//!   `G ∧ (QE[1] ⊳ QM[1]) ∧ (QE[2] ⊳ QM[2]) ⇒ (QE[dbl] ⊳ QM[dbl])`
//!   replayed through the Composition Theorem;
//! * [`QueueChain`] — the `k`-queues-in-series generalization
//!   (composition at scale).
//!
//! One presentational deviation from the paper, documented here and in
//! `DESIGN.md`: the paper "arbitrarily considers the initial conditions
//! on a channel to be part of the sender's initial predicate", which
//! places `o.ack = 0` inside the queue's `Init_M` although `o.ack` is
//! an input of the queue. This crate instead assigns each bit's initial
//! condition to the component that *owns* the bit (the queue initializes
//! `i.ack` and `o.sig`; the environment initializes `i.sig` and
//! `o.ack`). The complete-system initial condition — `CInit(i) ∧
//! CInit(o) ∧ q = ⟨⟩` — is identical; only the bookkeeping differs, and
//! it lets the library enforce that components constrain only variables
//! they own.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod channel;
mod components;
mod double;
mod single;

pub use chain::QueueChain;
pub use channel::{handshake_trace, Channel, HandshakeStep};
pub use components::{env_component, queue_component, FairnessStyle};
pub use double::DoubleQueue;
pub use single::SingleQueue;
