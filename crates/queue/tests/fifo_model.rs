//! Reference-model testing: the queue specification against a plain
//! `VecDeque`.
//!
//! Random walks over the complete system `CQ` are replayed against a
//! reference FIFO. Every `Enq` must append exactly the value the
//! environment last put on the input channel; every `Deq` must emit
//! exactly the reference head; and the spec's internal `q` variable
//! must mirror the reference contents at every state.

use opentla_queue::{FairnessStyle, SingleQueue};
use opentla_check::{explore, ExploreOptions};
use opentla_kernel::Value;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

fn walk_and_check(n: usize, v: i64, seed: u64, steps: usize) {
    let world = SingleQueue::new(n, v, FairnessStyle::Joint);
    let sys = world.complete_system().unwrap();
    let graph = explore(&sys, &ExploreOptions::default()).unwrap();
    let q = world.q();
    let i = world.input().clone();
    let o = world.output().clone();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = graph.init()[rng.gen_range(0..graph.init().len())];
    let mut reference: VecDeque<Value> = VecDeque::new();

    for _ in 0..steps {
        let edges = graph.edges(cur);
        if edges.is_empty() {
            break;
        }
        let e = edges[rng.gen_range(0..edges.len())];
        let s = graph.state(cur);
        let t = graph.state(e.target);
        let action = sys.actions()[e.action].name();
        match action {
            "Enq" => {
                // The enqueued value is the input channel's current val.
                reference.push_back(s.get(i.val).clone());
                assert!(
                    reference.len() <= n,
                    "reference model overflows the declared capacity"
                );
            }
            "Deq" => {
                let expected = reference.pop_front().expect("spec Deq on empty queue");
                assert_eq!(
                    t.get(o.val),
                    &expected,
                    "Deq must emit the FIFO head (action {action})"
                );
            }
            _ => {} // Put(v) / Get don't touch the queue content.
        }
        // The spec's q mirrors the reference at every state.
        let spec_q: Vec<Value> = t
            .get(q)
            .as_items()
            .expect("q is a sequence")
            .to_vec();
        let model_q: Vec<Value> = reference.iter().cloned().collect();
        assert_eq!(spec_q, model_q, "q diverged from the reference FIFO");
        cur = e.target;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The queue spec is observationally a FIFO, for every parameter
    /// combination and random walk.
    #[test]
    fn queue_is_a_fifo(
        n in 1usize..=3,
        v in 2i64..=3,
        seed in any::<u64>(),
    ) {
        walk_and_check(n, v, seed, 60);
    }
}

/// End-to-end FIFO through the double queue: values entering on `i`
/// leave on `o` in order, tracked against one reference FIFO spanning
/// both queues and the middle channel.
fn walk_double(n: usize, v: i64, seed: u64, steps: usize) {
    use opentla_queue::DoubleQueue;
    let w = DoubleQueue::new(n, v, FairnessStyle::Joint);
    let sys = w.cdq_system().unwrap();
    let graph = explore(&sys, &ExploreOptions::default()).unwrap();
    let i = w.i().clone();
    let o = w.o().clone();
    let mapping = w.refinement_mapping();
    let q_bar = mapping.get(w.q_dbl()).unwrap().clone();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut cur = graph.init()[rng.gen_range(0..graph.init().len())];
    let mut reference: VecDeque<Value> = VecDeque::new();
    for _ in 0..steps {
        let edges = graph.edges(cur);
        if edges.is_empty() {
            break;
        }
        let e = edges[rng.gen_range(0..edges.len())];
        let s = graph.state(cur);
        let t = graph.state(e.target);
        let action = sys.actions()[e.action].name();
        // Only the end-to-end events touch the reference model:
        // queue 1's Enq consumes from i; queue 2's Deq produces on o.
        let enq1 = action == "Enq" && t.get(i.ack) != s.get(i.ack);
        let deq2 = action == "Deq" && t.get(o.sig) != s.get(o.sig);
        if enq1 {
            reference.push_back(s.get(i.val).clone());
            assert!(reference.len() <= 2 * n + 1);
        }
        if deq2 {
            let expected = reference.pop_front().expect("Deq on empty pipeline");
            assert_eq!(t.get(o.val), &expected, "FIFO order violated end to end");
        }
        // The refinement mapping's q̄ mirrors the reference contents.
        let spec_q: Vec<Value> = q_bar
            .eval_state(t)
            .unwrap()
            .as_items()
            .expect("q̄ is a sequence")
            .to_vec();
        let model_q: Vec<Value> = reference.iter().cloned().collect();
        assert_eq!(spec_q, model_q, "q̄ diverged from the reference FIFO");
        cur = e.target;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The double queue is observationally one FIFO of capacity 2N+1.
    #[test]
    fn double_queue_is_a_fifo(seed in any::<u64>()) {
        walk_double(1, 2, seed, 80);
    }
}

#[test]
fn long_walk_double_queue() {
    walk_double(1, 3, 3, 400);
}

#[test]
fn long_walk_small_queue() {
    walk_and_check(1, 2, 7, 500);
}

#[test]
fn long_walk_bigger_queue() {
    walk_and_check(3, 2, 11, 500);
}
