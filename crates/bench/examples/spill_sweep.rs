//! Budget sweep behind the EXPERIMENTS.md "bounded-memory" tables:
//! explores chain4 with the spill engine at a ladder of memory
//! budgets, asserting byte-identity with the sequential engine at
//! every rung and reporting time, spill events, and spilled bytes —
//! then sweeps the *parallel* bounded-memory engine
//! ([`Engine::SpillWs`]) over budgets × worker counts, every cell
//! asserted byte-identical too.
//!
//! Run with `cargo run --release -p opentla-bench --example spill_sweep`.

use opentla_check::{explore_governed_with, obs, Budget, Engine, ExploreOptions};
use opentla_check::{JsonlRecorder, RecorderHandle};
use opentla_queue::{FairnessStyle, QueueChain};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let system = QueueChain::new(4, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .expect("chain4 builds");

    // Baseline: sequential fingerprint engine.
    let t0 = Instant::now();
    let base = explore_governed_with(&system, &Budget::unlimited(), &ExploreOptions::default())
        .expect("baseline explores");
    let base_s = t0.elapsed().as_secs_f64();
    println!(
        "seq_fp: {} states / {} transitions in {:.3}s",
        base.graph.len(),
        base.graph.stats().transitions,
        base_s
    );

    for budget in [
        None,
        Some(64usize << 20),
        Some(4 << 20),
        Some(1 << 20),
        Some(256 << 10),
    ] {
        let obs_path = std::env::temp_dir().join("spill-sweep-obs.jsonl");
        let rec = Arc::new(JsonlRecorder::create(&obs_path).expect("obs file"));
        let handle = RecorderHandle::new(rec.clone());
        let opts = ExploreOptions {
            engine: Engine::SpillBfs,
            mem_budget_bytes: budget,
            ..ExploreOptions::default()
        };
        let t = Instant::now();
        let run = explore_governed_with(
            &system,
            &Budget::unlimited().with_recorder(handle),
            &opts,
        )
        .expect("spill run explores");
        let secs = t.elapsed().as_secs_f64();
        rec.flush();
        let text = std::fs::read_to_string(&obs_path).expect("read obs");
        let summary = obs::validate_stream(&text).expect("valid stream");
        let spills = summary.kinds.get("spill").copied().unwrap_or(0);
        // Cumulative spilled bytes = max `total_spilled_bytes` seen in
        // the stream (the Spill event carries a running total).
        let spilled_bytes: u64 = text
            .lines()
            .filter_map(|l| {
                let ix = l.find("\"total_spilled_bytes\":")?;
                let rest = &l[ix + "\"total_spilled_bytes\":".len()..];
                let end = rest.find(|c: char| !c.is_ascii_digit())?;
                rest[..end].parse().ok()
            })
            .max()
            .unwrap_or(0);
        assert_eq!(run.graph.len(), base.graph.len());
        assert_eq!(run.graph.states(), base.graph.states());
        println!(
            "budget={:>12} time={:.3}s (x{:.2} vs seq_fp) spill_events={} spilled={:.1} MiB",
            budget.map_or("default".into(), |b| format!("{b}")),
            secs,
            secs / base_s,
            spills,
            spilled_bytes as f64 / (1 << 20) as f64,
        );
        let _ = std::fs::remove_file(&obs_path);
    }

    // Parallel bounded memory: budgets × worker counts. Every cell is
    // the same graph — the table only shows where the time goes.
    println!("\npar_spill (Engine::SpillWs), budgets x workers:");
    for budget in [Some(256usize << 10), Some(4 << 20), None] {
        for workers in [1usize, 2, 4] {
            let opts = ExploreOptions {
                engine: Engine::SpillWs,
                threads: Some(workers),
                mem_budget_bytes: budget,
                ..ExploreOptions::default()
            };
            let t = Instant::now();
            let run = explore_governed_with(&system, &Budget::unlimited(), &opts)
                .expect("par-spill run explores");
            let secs = t.elapsed().as_secs_f64();
            assert_eq!(run.graph.states(), base.graph.states());
            assert_eq!(run.graph.init(), base.graph.init());
            for id in 0..run.graph.len() {
                assert_eq!(run.graph.edges(id), base.graph.edges(id));
            }
            println!(
                "budget={:>12} workers={workers} time={:.3}s (x{:.2} vs seq_fp)",
                budget.map_or("default".into(), |b| format!("{b}")),
                secs,
                secs / base_s,
            );
        }
    }
}
