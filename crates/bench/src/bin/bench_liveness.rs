//! Records the fair-cycle liveness benchmark trajectory:
//! `BENCH_liveness.json` at the repository root.
//!
//! Two engines run the same targets over the same pre-explored state
//! graphs:
//!
//! * `seq` — the sequential fair-cycle engine
//!   ([`opentla_check::check_liveness`]): SCC decomposition plus
//!   per-component WF/SF satisfiability, shortest-prefix lassos;
//! * `par` — the parallel engine
//!   ([`opentla_check::check_liveness_governed_with`] with a worker
//!   count): one shared SCC pass, then components claimed
//!   work-stealing-style, with deterministic tie-breaking.
//!
//! Every (scenario, target) pair asserts the parallel verdict *and*
//! lasso are identical to the sequential ones before any time is
//! reported — a benchmark that diverges is a bug, not a data point.
//!
//! The gate always measures the full chain4 queue chain: with ≥ 2
//! hardware threads the parallel engine must be ≥ 1.5× the sequential
//! one there; on a single-hardware-thread machine the ratio is
//! recorded but not asserted (`"asserted": false`).
//!
//! Usage: `bench_liveness [--smoke]`. `--smoke` scopes the scenario
//! table down to chain2/chain3 with one timing iteration (the CI
//! configuration); full runs use chain2–chain4 and the best of three
//! iterations. The chain4 gate runs in both modes.

use opentla_bench::ms;
use opentla_check::{
    check_liveness, check_liveness_governed_with, explore, Budget, ExploreOptions,
    LiveTarget, LivenessOptions, System, Verdict,
};
use opentla_kernel::Fairness;
use opentla_queue::{FairnessStyle, QueueChain};
use std::time::{Duration, Instant};

fn chain(k: usize) -> System {
    QueueChain::new(k, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .expect("chain builds")
}

/// The benchmark targets: a WF obligation on the first action, an SF
/// obligation on the last, and `◇¬guard(first)` — the same generic
/// shapes the differential harness pins.
fn targets(sys: &System) -> Vec<(String, LiveTarget)> {
    let frame = sys.frame();
    let first = &sys.actions()[0];
    let last = sys.actions().last().expect("systems have actions");
    vec![
        (
            format!("WF({})", first.name()),
            LiveTarget::fair(Fairness::weak(
                first.action_expr(&frame),
                first.touched().collect(),
            )),
        ),
        (
            format!("SF({})", last.name()),
            LiveTarget::fair(Fairness::strong(
                last.action_expr(&frame),
                last.touched().collect(),
            )),
        ),
        (
            format!("eventually not-{}-enabled", first.name()),
            LiveTarget::Eventually(first.guard().clone().not()),
        ),
    ]
}

fn assert_identical(ctx: &str, seq: &Verdict, par: &Verdict) {
    match (seq, par) {
        (Verdict::Holds, Verdict::Holds) => {}
        (Verdict::Violated(a), Verdict::Violated(b)) => {
            assert_eq!(a.reason(), b.reason(), "{ctx}: reason diverges");
            assert_eq!(a.states(), b.states(), "{ctx}: lasso states diverge");
            assert_eq!(a.actions(), b.actions(), "{ctx}: lasso actions diverge");
            assert_eq!(a.loop_start(), b.loop_start(), "{ctx}: loop start diverges");
        }
        _ => panic!("{ctx}: verdicts diverge"),
    }
}

/// Best-of-`iters` timing of one closure.
fn time_best<R>(iters: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best: Option<Duration> = None;
    let mut out = None;
    for _ in 0..iters {
        let t0 = Instant::now();
        let r = f();
        let dt = t0.elapsed();
        if best.is_none_or(|b| dt < b) {
            best = Some(dt);
        }
        out = Some(r);
    }
    (best.unwrap(), out.unwrap())
}

struct TargetRow {
    name: String,
    seq: Duration,
    par: Duration,
    holds: bool,
}

/// Times every target on one graph; returns the rows plus the summed
/// seq/par times (the per-scenario speedup numerator/denominator).
fn bench_scenario(
    name: &str,
    sys: &System,
    iters: usize,
    workers: usize,
) -> (Vec<TargetRow>, Duration, Duration, usize) {
    let graph = explore(sys, &ExploreOptions::default()).expect("explores");
    let opts = LivenessOptions::default().threads(workers);
    let mut rows = Vec::new();
    let (mut seq_total, mut par_total) = (Duration::ZERO, Duration::ZERO);
    for (tname, target) in targets(sys) {
        let (seq_t, seq_v) =
            time_best(iters, || check_liveness(sys, &graph, &target).expect("seq"));
        let (par_t, par_run) = time_best(iters, || {
            check_liveness_governed_with(sys, &graph, &target, &Budget::default(), &opts)
                .expect("par")
        });
        assert!(par_run.outcome.is_complete(), "{name}/{tname}: must complete");
        let par_v = par_run.verdict.expect("complete runs carry a verdict");
        assert_identical(&format!("{name}/{tname}"), &seq_v, &par_v);
        println!(
            "| {name} | {tname} | {} | {} | {} | {:.2}x |",
            graph.len(),
            ms(seq_t),
            ms(par_t),
            seq_t.as_secs_f64() / par_t.as_secs_f64().max(1e-9),
        );
        seq_total += seq_t;
        par_total += par_t;
        rows.push(TargetRow {
            name: tname,
            seq: seq_t,
            par: par_t,
            holds: seq_v.holds(),
        });
    }
    (rows, seq_total, par_total, graph.len())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 1 } else { 3 };
    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let workers = std::env::var("OPENTLA_EXPLORE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or(hardware)
        .max(1)
        .max(2); // one parallel worker is just the sequential engine

    println!(
        "# bench_liveness ({} mode, {iters} iteration(s), {workers} worker(s), {hardware} hardware thread(s))\n",
        if smoke { "smoke" } else { "full" }
    );
    println!("| scenario | target | states | seq | par | speedup |");
    println!("|---|---|---|---|---|---|");

    let ks: &[usize] = if smoke { &[2, 3] } else { &[2, 3, 4] };
    let mut scenario_json = Vec::new();
    for &k in ks {
        let name = format!("chain{k}");
        let sys = chain(k);
        let (rows, seq_total, par_total, states) =
            bench_scenario(&name, &sys, iters, workers);
        let target_json: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "        {{ \"target\": \"{}\", \"seq_ms\": {:.3}, \"par_ms\": {:.3}, \"holds\": {} }}",
                    r.name,
                    r.seq.as_secs_f64() * 1e3,
                    r.par.as_secs_f64() * 1e3,
                    r.holds
                )
            })
            .collect();
        scenario_json.push(format!(
            "    {{\n      \"name\": \"{name}\",\n      \"states\": {states},\n      \"speedup\": {:.3},\n      \"targets\": [\n{}\n      ]\n    }}",
            seq_total.as_secs_f64() / par_total.as_secs_f64().max(1e-9),
            target_json.join(",\n")
        ));
    }

    // The gate: chain4, measured in both modes, asserted only with
    // real parallel hardware underneath.
    let gate_sys = chain(4);
    let (_, gate_seq, gate_par, gate_states) =
        bench_scenario("chain4-gate", &gate_sys, iters, workers);
    let speedup = gate_seq.as_secs_f64() / gate_par.as_secs_f64().max(1e-9);
    let asserted = hardware >= 2;
    println!(
        "\nchain4 gate: {gate_states} states, seq {} vs par {} = {speedup:.2}x ({})",
        ms(gate_seq),
        ms(gate_par),
        if asserted { "asserted >= 1.5x" } else { "recorded only: single hardware thread" }
    );
    if asserted {
        assert!(
            speedup >= 1.5,
            "chain4 liveness gate: parallel engine must be >= 1.5x sequential \
             with {hardware} hardware threads (got {speedup:.2}x)"
        );
    }

    let json = format!(
        "{{\n  \"benchmark\": \"liveness\",\n  \"smoke\": {smoke},\n  \"iterations\": {iters},\n  \"workers\": {workers},\n  \"hardware_threads\": {hardware},\n  \"engines\": {{\n    \"seq\": \"sequential fair-cycle engine: SCC decomposition + per-component WF/SF satisfiability\",\n    \"par\": \"parallel engine: shared SCC pass, work-stealing component claims, deterministic tie-breaking\"\n  }},\n  \"gate\": {{\n    \"scenario\": \"chain4\",\n    \"states\": {gate_states},\n    \"seq_ms\": {:.3},\n    \"par_ms\": {:.3},\n    \"speedup\": {speedup:.3},\n    \"threshold\": 1.5,\n    \"asserted\": {asserted}\n  }},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        gate_seq.as_secs_f64() * 1e3,
        gate_par.as_secs_f64() * 1e3,
        scenario_json.join(",\n")
    );
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_liveness.json");
    std::fs::write(path, &json).expect("write BENCH_liveness.json");
    println!("\nwrote {path}");
}
