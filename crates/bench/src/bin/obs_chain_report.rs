//! Writes the chain4 observability run report — `OBS_chain4.jsonl`
//! at the repository root — by exploring the 4-queue chain under a
//! [`JsonlRecorder`] with three engines: sequential fingerprinted,
//! sequential exact, and 4-thread parallel. The stream is validated
//! against the schema and the three run reports must carry identical
//! state/transition totals (the PR 3 acceptance criterion); CI uploads
//! the file as a workflow artifact.
//!
//! Run with `cargo run --release -p opentla-bench --bin obs_chain_report`.

use opentla_check::{
    explore_governed_with, obs, Budget, ExploreOptions, JsonlRecorder, RecorderHandle,
    VisitedMode,
};
use opentla_queue::{FairnessStyle, QueueChain};
use std::sync::Arc;

fn main() {
    let system = QueueChain::new(4, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .expect("chain4 builds");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../OBS_chain4.jsonl");
    let recorder = Arc::new(JsonlRecorder::create(path).expect("create OBS_chain4.jsonl"));
    let handle = RecorderHandle::new(recorder.clone());
    for (mode, threads) in [
        (VisitedMode::Fingerprint, 1),
        (VisitedMode::Exact, 1),
        (VisitedMode::Fingerprint, 4),
    ] {
        let budget = Budget::default().with_recorder(handle.clone());
        let opts = ExploreOptions {
            mode,
            threads: Some(threads),
            ..ExploreOptions::default()
        };
        let run = explore_governed_with(&system, &budget, &opts).expect("chain4 explores");
        assert!(run.outcome.is_complete());
    }
    recorder.flush();

    let text = std::fs::read_to_string(path).expect("read back OBS_chain4.jsonl");
    let summary = obs::validate_stream(&text)
        .unwrap_or_else(|e| panic!("OBS_chain4.jsonl fails schema validation: {e}"));
    assert_eq!(summary.runs.len(), 3, "one run report per engine");
    let totals: Vec<String> = summary
        .runs
        .iter()
        .map(|r| format!("{}/{}/{}", r.states, r.transitions, r.depth))
        .collect();
    assert!(
        totals.iter().all(|t| t == &totals[0]),
        "engines disagree on chain4: {totals:?}"
    );
    println!(
        "wrote {path}: {} events, {} runs, chain4 = {} states / {} transitions / depth {}",
        summary.events,
        summary.runs.len(),
        summary.runs[0].states,
        summary.runs[0].transitions,
        summary.runs[0].depth,
    );
    for run in &summary.runs {
        println!(
            "  {} ({} thread(s), {} mode): complete={}",
            run.engine, run.threads, run.mode, run.complete
        );
    }
}
