//! Records the exploration-engine benchmark trajectory:
//! `BENCH_explore.json` at the repository root.
//!
//! Three engines run over the same scenario set:
//!
//! * `seed` — a faithful reimplementation of the pre-optimization
//!   sequential BFS: SipHash-keyed `HashMap<State, usize>` visited
//!   set, a cloned state per expansion, a fresh successor `Vec` per
//!   state, tree-walking guard/update evaluation;
//! * `seq_fp` — the current sequential engine: fingerprinted visited
//!   set, compiled successor stepper, reused buffers;
//! * `par_fp` — the parallel engine ([`opentla_check::explore_parallel`])
//!   in fingerprint mode with the machine's available workers, the
//!   canonical renumbering pass included in the measured time. (On a
//!   single-hardware-thread machine this engine delegates to the
//!   sequential implementation — one level-synchronous worker *is*
//!   sequential BFS; the recorded `threads` field says which case a
//!   given JSON captured.)
//!
//! Every run cross-checks that all three engines agree on the state
//! and transition counts (the fingerprint/parallel engines are exact
//! reformulations, not approximations, on these state-space sizes).
//!
//! Usage: `bench_explore [--smoke]`. `--smoke` runs a reduced scenario
//! set with one timing iteration — the CI configuration; full runs use
//! the best of three iterations per engine.

use opentla_bench::ms;
use opentla_check::{
    explore, explore_parallel, Budget, CheckError, ExploreOptions, Meter, StateGraph,
    System,
};
use opentla_kernel::State;
use opentla_queue::{FairnessStyle, QueueChain};
use opentla_scenarios::{AlternatingBit, ArbiterFairness, Mutex, TokenRing};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The seed explorer, reimplemented verbatim for an honest baseline:
/// exact SipHash visited set, per-state allocations, interpretive
/// successor evaluation. Returns the (states, transitions) counts.
fn explore_seed(system: &System, max_states: usize) -> Result<(usize, usize), CheckError> {
    let init_states = system.init().states(system.universe())?;
    if init_states.is_empty() {
        return Err(CheckError::NoInitialStates);
    }
    let meter = Meter::start(&Budget::default().states(max_states));
    let mut states: Vec<State> = Vec::new();
    let mut index: HashMap<State, usize> = HashMap::new();
    let mut edges: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for s in init_states {
        if index.contains_key(&s) {
            continue;
        }
        assert!(meter.charge_state().is_none(), "seed run exceeded {max_states} states");
        let id = states.len();
        index.insert(s.clone(), id);
        states.push(s);
        edges.push(Vec::new());
        queue.push_back(id);
    }
    while let Some(id) = queue.pop_front() {
        let succ = system.successors(&states[id].clone())?;
        for (action, t) in succ {
            let target = match index.get(&t) {
                Some(existing) => *existing,
                None => {
                    assert!(
                        meter.charge_state().is_none(),
                        "seed run exceeded {max_states} states"
                    );
                    let nid = states.len();
                    index.insert(t.clone(), nid);
                    states.push(t);
                    edges.push(Vec::new());
                    queue.push_back(nid);
                    nid
                }
            };
            edges[id].push((action, target));
        }
    }
    Ok((states.len(), edges.iter().map(Vec::len).sum()))
}

struct Scenario {
    name: &'static str,
    system: System,
    /// The acceptance scenario: the largest queue chain, where the
    /// parallel fingerprinted engine must clear 2× the seed throughput.
    is_acceptance: bool,
}

fn scenarios(smoke: bool) -> Vec<Scenario> {
    let mut out = Vec::new();
    let abp = if smoke { 2 } else { 4 };
    out.push(Scenario {
        name: "abp",
        system: AlternatingBit::new(abp).complete_system().expect("abp builds"),
        is_acceptance: false,
    });
    out.push(Scenario {
        name: "mutex",
        system: Mutex::with_clients(if smoke { 2 } else { 3 }, ArbiterFairness::Weak)
            .product()
            .expect("mutex builds"),
        is_acceptance: false,
    });
    out.push(Scenario {
        name: "ring",
        system: TokenRing::new(if smoke { 3 } else { 4 })
            .complete_system()
            .expect("ring builds"),
        is_acceptance: false,
    });
    let max_chain = if smoke { 3 } else { 4 };
    for k in 2..=max_chain {
        out.push(Scenario {
            name: match k {
                2 => "chain2",
                3 => "chain3",
                _ => "chain4",
            },
            system: QueueChain::new(k, 1, 2, FairnessStyle::Joint)
                .complete_system()
                .expect("chain builds"),
            is_acceptance: k == max_chain && !smoke,
        });
    }
    out
}

/// Best-of-`iters` wall time of `work`, with the result of the last
/// iteration.
fn time_best<T>(iters: usize, mut work: impl FnMut() -> T) -> (Duration, T) {
    let mut best = Duration::MAX;
    let mut result = None;
    for _ in 0..iters {
        let t = Instant::now();
        let r = work();
        best = best.min(t.elapsed());
        result = Some(r);
    }
    (best, result.expect("at least one iteration"))
}

struct EngineRun {
    seconds: f64,
    states_per_sec: f64,
}

fn engine_json(run: &EngineRun) -> String {
    format!(
        "{{ \"seconds\": {:.6}, \"states_per_sec\": {:.0} }}",
        run.seconds, run.states_per_sec
    )
}

fn graph_counts(graph: &StateGraph) -> (usize, usize) {
    (graph.len(), graph.edge_count())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 1 } else { 3 };
    let threads = std::env::var("OPENTLA_EXPLORE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
        .max(1);
    let options = ExploreOptions::default();
    let par_options = ExploreOptions {
        threads: Some(threads),
        ..ExploreOptions::default()
    };

    println!(
        "# bench_explore ({} mode, {iters} iteration(s), {threads} thread(s))\n",
        if smoke { "smoke" } else { "full" }
    );
    println!("| scenario | states | transitions | seed | seq_fp | par_fp | seq_fp× | par_fp× |");
    println!("|---|---|---|---|---|---|---|---|");

    let mut rows = Vec::new();
    let mut acceptance: Option<(String, f64)> = None;
    for sc in scenarios(smoke) {
        let max = options.max_states;
        let (seed_t, seed_counts) =
            time_best(iters, || explore_seed(&sc.system, max).expect("seed explores"));
        let (seq_t, seq_graph) =
            time_best(iters, || explore(&sc.system, &options).expect("seq_fp explores"));
        let (par_t, par_graph) = time_best(iters, || {
            explore_parallel(&sc.system, &par_options).expect("par_fp explores")
        });
        let (states, transitions) = seed_counts;
        assert_eq!(
            graph_counts(&seq_graph),
            (states, transitions),
            "{}: seq_fp disagrees with seed",
            sc.name
        );
        assert_eq!(
            graph_counts(&par_graph),
            (states, transitions),
            "{}: par_fp disagrees with seed",
            sc.name
        );

        let run = |d: Duration| EngineRun {
            seconds: d.as_secs_f64(),
            states_per_sec: states as f64 / d.as_secs_f64().max(1e-9),
        };
        let (seed, seq, par) = (run(seed_t), run(seq_t), run(par_t));
        let seq_x = seq.states_per_sec / seed.states_per_sec;
        let par_x = par.states_per_sec / seed.states_per_sec;
        println!(
            "| {} | {} | {} | {} | {} | {} | {:.2}× | {:.2}× |",
            sc.name,
            states,
            transitions,
            ms(seed_t),
            ms(seq_t),
            ms(par_t),
            seq_x,
            par_x,
        );
        if sc.is_acceptance {
            acceptance = Some((sc.name.to_string(), par_x));
        }
        rows.push(format!(
            "    {{\n      \"scenario\": \"{}\",\n      \"states\": {},\n      \"transitions\": {},\n      \"seed\": {},\n      \"seq_fp\": {},\n      \"par_fp\": {},\n      \"speedup_seq_fp\": {:.2},\n      \"speedup_par_fp\": {:.2},\n      \"acceptance\": {}\n    }}",
            sc.name,
            states,
            transitions,
            engine_json(&seed),
            engine_json(&seq),
            engine_json(&par),
            seq_x,
            par_x,
            sc.is_acceptance,
        ));
    }

    let json = format!(
        "{{\n  \"benchmark\": \"explore\",\n  \"smoke\": {smoke},\n  \"iterations\": {iters},\n  \"threads\": {threads},\n  \"engines\": {{\n    \"seed\": \"seed sequential BFS: exact SipHash visited set, interpretive successors\",\n    \"seq_fp\": \"sequential, fingerprinted visited set + compiled successor stepper\",\n    \"par_fp\": \"parallel engine, fingerprint mode, workers = threads field (delegates to sequential when 1)\"\n  }},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    std::fs::write(path, &json).expect("write BENCH_explore.json");
    println!("\nwrote {path}");

    if let Some((name, par_x)) = acceptance {
        println!("\nacceptance ({name}): par_fp is {par_x:.2}× the seed throughput");
        assert!(
            par_x >= 2.0,
            "acceptance regression: par_fp only {par_x:.2}× seed on {name} (need ≥ 2×)"
        );
    }
}
