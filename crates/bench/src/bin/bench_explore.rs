//! Records the exploration-engine benchmark trajectory:
//! `BENCH_explore.json` at the repository root.
//!
//! Four engines run over the same scenario set:
//!
//! * `seed` — a faithful reimplementation of the pre-optimization
//!   sequential BFS: SipHash-keyed `HashMap<State, usize>` visited
//!   set, a cloned state per expansion, a fresh successor `Vec` per
//!   state, tree-walking guard/update evaluation;
//! * `seq_fp` — the current sequential engine: fingerprinted visited
//!   set, compiled successor stepper, reused buffers;
//! * `par_fp` — the level-synchronous parallel engine
//!   ([`opentla_check::explore_parallel`]) in fingerprint mode with
//!   the machine's available workers, the canonical renumbering pass
//!   included in the measured time. (On a single-hardware-thread
//!   machine this engine delegates to the sequential implementation —
//!   one level-synchronous worker *is* sequential BFS; each engine
//!   entry's `workers` field says what a given JSON captured.)
//! * `par_ws` — the work-stealing engine
//!   ([`opentla_check::explore_parallel_ws`]): packed state layouts,
//!   per-worker deques, no level barriers; its graph is asserted
//!   byte-identical to `seq_fp`'s on every scenario.
//!
//! A thread-scaling curve (both parallel engines at 1/2/4/8 workers
//! per scenario) lands in `BENCH_scaling.json`, and a work-stealing
//! gate always measures the full chain4 at 4 workers: byte-identity
//! always, and — with ≥ 2 hardware threads — `par_ws` ≥ 1.5× `seq_fp`
//! and ≥ 1.8× `par_fp` at the same worker count.
//!
//! A `seq_spill` column runs the bounded-memory spill engine
//! ([`Engine::SpillBfs`]) at the default budget on every scenario,
//! asserted byte-identical to `seq_fp`, and a **spill gate** pins its
//! chain4 overhead vs `seq_fp` to ≤ 10%. A `par_spill` column runs
//! the parallel bounded-memory engine ([`Engine::SpillWs`]) with the
//! machine's available workers, also asserted byte-identical, and a
//! **par-spill gate** measures chain4 at 4 workers: with ≥ 2 hardware
//! threads, `par_spill` must clear 1.5× `seq_spill`; a companion run
//! at a 256 KiB budget proves the engine actually seals segments by
//! recording its `spilled_bytes`. All gates record an `asserted` flag
//! and a `skip_reason` string in the JSON so a reader can tell a
//! passing gate from a skipped one without knowing the skip
//! conditions.
//!
//! Every run cross-checks that all three engines agree on the state
//! and transition counts (the fingerprint/parallel engines are exact
//! reformulations, not approximations, on these state-space sizes).
//!
//! A fourth run per scenario, `seq_red`, explores under the scenario's
//! [`Reduction`] (ample-set partial-order reduction over the scenario
//! invariant's variables, plus symmetry canonicalization on the
//! mutex/ring models). It records `states_full / states_reduced` as
//! the per-model `reduction_factor`, asserts the scenario invariant's
//! verdict matches the full graph's, and — in full mode — gates that
//! at least one of ring/mutex/chain4 shrinks by ≥ 2×.
//!
//! Two observability artifacts ride along (PR 3):
//!
//! * an **overhead gate** — the current engine with a [`NullRecorder`]
//!   must stay within 5% of `plain`, a verbatim copy of the PR2
//!   fingerprinted engine with no observability layer at all, on the
//!   largest queue chain of the run;
//! * `OBS_explore.jsonl` — the largest chain explored under a
//!   [`JsonlRecorder`] by three engines (sequential fingerprinted,
//!   sequential exact, 4-thread parallel), schema-validated, with
//!   state/transition totals asserted identical across all three.
//!
//! Usage: `bench_explore [--smoke]`. `--smoke` runs a reduced scenario
//! set with one timing iteration — the CI configuration; full runs use
//! the best of three iterations per engine.

use fxhash::FxHashMap;
use opentla_bench::ms;
use opentla_check::{
    check_invariant, explore_governed_with, explore_parallel, explore_resumable, obs,
    Budget, CheckError, CompiledSystem, CountingRecorder, Engine, EvalScratch,
    ExploreOptions, JsonlRecorder, Meter, RecorderHandle, Reduction, StateGraph, System,
    VisitedMode, DEFAULT_CHECKPOINT_CADENCE,
};
use opentla_kernel::Expr;
use opentla_kernel::State;
use opentla_queue::{FairnessStyle, QueueChain};
use opentla_scenarios::{AlternatingBit, ArbiterFairness, Mutex, TokenRing};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The seed explorer, reimplemented verbatim for an honest baseline:
/// exact SipHash visited set, per-state allocations, interpretive
/// successor evaluation. Returns the (states, transitions) counts.
fn explore_seed(system: &System, max_states: usize) -> Result<(usize, usize), CheckError> {
    let init_states = system.init().states(system.universe())?;
    if init_states.is_empty() {
        return Err(CheckError::NoInitialStates);
    }
    let meter = Meter::start(&Budget::default().states(max_states));
    let mut states: Vec<State> = Vec::new();
    let mut index: HashMap<State, usize> = HashMap::new();
    let mut edges: Vec<Vec<(usize, usize)>> = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for s in init_states {
        if index.contains_key(&s) {
            continue;
        }
        assert!(meter.charge_state().is_none(), "seed run exceeded {max_states} states");
        let id = states.len();
        index.insert(s.clone(), id);
        states.push(s);
        edges.push(Vec::new());
        queue.push_back(id);
    }
    while let Some(id) = queue.pop_front() {
        let succ = system.successors(&states[id].clone())?;
        for (action, t) in succ {
            let target = match index.get(&t) {
                Some(existing) => *existing,
                None => {
                    assert!(
                        meter.charge_state().is_none(),
                        "seed run exceeded {max_states} states"
                    );
                    let nid = states.len();
                    index.insert(t.clone(), nid);
                    states.push(t);
                    edges.push(Vec::new());
                    queue.push_back(nid);
                    nid
                }
            };
            edges[id].push((action, target));
        }
    }
    Ok((states.len(), edges.iter().map(Vec::len).sum()))
}

/// The PR2 sequential fingerprinted engine, reimplemented verbatim
/// *without* the observability layer (no `Meter`, no recorder, no
/// phase events): the un-instrumented baseline the `NullRecorder`
/// overhead gate compares the shipping engine against.
fn explore_plain(
    system: &System,
    max_states: usize,
) -> Result<(usize, usize), CheckError> {
    use std::collections::hash_map::Entry;
    use std::ops::ControlFlow;

    let init_states = system.init().states(system.universe())?;
    if init_states.is_empty() {
        return Err(CheckError::NoInitialStates);
    }
    let compiled = CompiledSystem::compile(system);
    let mut scratch = EvalScratch::new();
    let mut map: FxHashMap<u64, usize> = FxHashMap::default();
    let mut states: Vec<State> = Vec::new();
    let mut fps: Vec<u64> = Vec::new();
    let mut transitions = 0usize;
    let mut queue = std::collections::VecDeque::new();
    for s in init_states {
        let fp = s.fingerprint();
        if let Entry::Vacant(e) = map.entry(fp) {
            assert!(states.len() < max_states, "plain run exceeded {max_states} states");
            let id = states.len();
            e.insert(id);
            states.push(s);
            fps.push(fp);
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        let parent = states[id].clone();
        let parent_fp = fps[id];
        compiled.for_each_successor(&parent, &mut scratch, |_action, assignments| {
            transitions += 1;
            let child_fp = parent.fingerprint_with(parent_fp, assignments);
            if let Entry::Vacant(e) = map.entry(child_fp) {
                assert!(
                    states.len() < max_states,
                    "plain run exceeded {max_states} states"
                );
                let nid = states.len();
                e.insert(nid);
                states.push(parent.with(assignments));
                fps.push(child_fp);
                queue.push_back(nid);
            }
            ControlFlow::<std::convert::Infallible>::Continue(())
        })?;
    }
    Ok((states.len(), transitions))
}

/// The shipping engine with an explicitly null recorder — immune to an
/// ambient `OPENTLA_OBS` setting, so timings measure the disabled-path
/// overhead and nothing else.
fn explore_null(
    system: &System,
    options: &ExploreOptions,
    threads: usize,
) -> StateGraph {
    let budget = Budget::default()
        .states(options.max_states)
        .with_recorder(RecorderHandle::null());
    let opts = ExploreOptions {
        threads: Some(threads),
        ..options.clone()
    };
    let run = explore_governed_with(system, &budget, &opts).expect("explores");
    assert!(run.outcome.is_complete(), "scenario exceeds the state budget");
    run.graph
}

/// The work-stealing engine with an explicitly null recorder.
fn explore_ws_null(system: &System, options: &ExploreOptions, threads: usize) -> StateGraph {
    let opts = ExploreOptions {
        engine: Engine::WorkStealing,
        ..options.clone()
    };
    explore_null(system, &opts, threads)
}

/// The bounded-memory spill engine with an explicitly null recorder,
/// at the generous default budget — what the disk-backed machinery
/// costs when nothing actually needs to spill.
fn explore_spill_null(system: &System, options: &ExploreOptions) -> StateGraph {
    let opts = ExploreOptions {
        engine: Engine::SpillBfs,
        ..options.clone()
    };
    explore_null(system, &opts, 1)
}

/// The parallel bounded-memory engine ([`Engine::SpillWs`]) with an
/// explicitly null recorder: work-stealing workers over the same
/// disk-backed spill tiers the sequential spill engine uses.
fn explore_par_spill_null(
    system: &System,
    options: &ExploreOptions,
    threads: usize,
) -> StateGraph {
    let opts = ExploreOptions {
        engine: Engine::SpillWs,
        ..options.clone()
    };
    explore_null(system, &opts, threads)
}

/// Asserts that two graphs are byte-identical in the established
/// sense: same states in the same canonical order, same init set, and
/// the same edge list per state.
fn assert_graphs_identical(a: &StateGraph, b: &StateGraph, what: &str) {
    assert_eq!(a.states(), b.states(), "{what}: states differ");
    assert_eq!(a.init(), b.init(), "{what}: init sets differ");
    for id in 0..a.len() {
        assert_eq!(a.edges(id), b.edges(id), "{what}: edges differ at state {id}");
    }
}

/// The shipping engine with crash tolerance armed at the default
/// checkpoint cadence — what a long run pays for resumability when
/// nothing crashes. The scenarios here are all smaller than one
/// cadence interval, so no periodic snapshot is ever due and the
/// measurement isolates the arming cost itself (the per-expansion
/// cadence branch); larger models would add one snapshot write per
/// [`DEFAULT_CHECKPOINT_CADENCE`] expansions on top.
fn explore_ckpt(
    system: &System,
    options: &ExploreOptions,
    path: &std::path::Path,
) -> StateGraph {
    let budget = Budget::default()
        .states(options.max_states)
        .with_checkpoint(path, DEFAULT_CHECKPOINT_CADENCE)
        .with_recorder(RecorderHandle::null());
    let opts = ExploreOptions {
        threads: Some(1),
        ..options.clone()
    };
    let run = explore_resumable(system, &budget, &opts).expect("checkpoint-armed explores");
    assert!(run.outcome.is_complete(), "scenario exceeds the state budget");
    run.graph
}

/// The shipping engine under a [`Reduction`], null recorder, one
/// worker — the reduced counterpart `seq_red` is timed against.
fn explore_reduced(
    system: &System,
    options: &ExploreOptions,
    reduction: &Reduction,
) -> opentla_check::Exploration {
    let budget = Budget::default()
        .states(options.max_states)
        .with_recorder(RecorderHandle::null());
    let opts = ExploreOptions {
        threads: Some(1),
        reduction: reduction.clone(),
        ..options.clone()
    };
    let run = explore_governed_with(system, &budget, &opts).expect("reduced explores");
    assert!(run.outcome.is_complete(), "scenario exceeds the state budget");
    run
}

struct Scenario {
    name: &'static str,
    system: System,
    /// The acceptance scenario: the largest queue chain, where the
    /// parallel fingerprinted engine must clear 2× the seed throughput.
    is_acceptance: bool,
    /// The reduction this scenario is benchmarked under, with a short
    /// description for the JSON, and the invariant whose verdict must
    /// agree between the full and reduced graphs.
    reduction: Reduction,
    reduction_desc: &'static str,
    invariant: Expr,
}

fn scenarios(smoke: bool) -> Vec<Scenario> {
    let mut out = Vec::new();
    let abp = AlternatingBit::new(if smoke { 2 } else { 4 });
    let inv = abp.in_order_invariant();
    out.push(Scenario {
        name: "abp",
        system: abp.complete_system().expect("abp builds"),
        is_acceptance: false,
        reduction: Reduction::none().with_por(inv.unprimed_vars()),
        reduction_desc: "por(in_order vars)",
        invariant: inv,
    });
    let mutex = Mutex::with_clients(if smoke { 2 } else { 3 }, ArbiterFairness::Weak);
    let inv = mutex.mutual_exclusion();
    out.push(Scenario {
        name: "mutex",
        reduction: Reduction::none()
            .with_por(inv.unprimed_vars())
            .with_symmetry(Arc::new(mutex.client_symmetry())),
        reduction_desc: "por(mutual_exclusion vars) + client-permutation symmetry",
        system: mutex.product().expect("mutex builds"),
        is_acceptance: false,
        invariant: inv,
    });
    let ring = TokenRing::new(if smoke { 3 } else { 4 });
    let inv = ring.mutual_exclusion();
    out.push(Scenario {
        name: "ring",
        reduction: Reduction::none()
            .with_por(inv.unprimed_vars())
            .with_symmetry(Arc::new(ring.rotation_symmetry())),
        reduction_desc: "por(mutual_exclusion vars) + rotation symmetry",
        system: ring.complete_system().expect("ring builds"),
        is_acceptance: false,
        invariant: inv,
    });
    let max_chain = if smoke { 3 } else { 4 };
    for k in 2..=max_chain {
        let system = QueueChain::new(k, 1, 2, FairnessStyle::Joint)
            .complete_system()
            .expect("chain builds");
        // The chains have no scenario invariant of their own here; a
        // domain bound on the first wire keeps the verdict comparison
        // meaningful while leaving POR free to prune internal moves.
        let v0 = system.vars().iter().next().expect("chain has variables");
        let invariant = Expr::var(v0).le(Expr::int(1));
        out.push(Scenario {
            name: match k {
                2 => "chain2",
                3 => "chain3",
                _ => "chain4",
            },
            is_acceptance: k == max_chain && !smoke,
            reduction: Reduction::none().with_por(invariant.unprimed_vars()),
            reduction_desc: "por(first-wire observable)",
            system,
            invariant,
        });
    }
    out
}

/// Best-of-`iters` wall time of `work`, with the result of the last
/// iteration.
fn time_best<T>(iters: usize, mut work: impl FnMut() -> T) -> (Duration, T) {
    let mut best = Duration::MAX;
    let mut result = None;
    for _ in 0..iters {
        let t = Instant::now();
        let r = work();
        best = best.min(t.elapsed());
        result = Some(r);
    }
    (best, result.expect("at least one iteration"))
}

struct EngineRun {
    seconds: f64,
    states_per_sec: f64,
    /// How many workers this entry actually ran with — 1 for the
    /// sequential engines, the resolved thread count for the parallel
    /// ones, so a JSON reader never has to guess from context.
    workers: usize,
}

fn engine_json(run: &EngineRun) -> String {
    format!(
        "{{ \"seconds\": {:.6}, \"states_per_sec\": {:.0}, \"workers\": {} }}",
        run.seconds, run.states_per_sec, run.workers
    )
}

fn graph_counts(graph: &StateGraph) -> (usize, usize) {
    (graph.len(), graph.edge_count())
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let iters = if smoke { 1 } else { 3 };
    let threads = std::env::var("OPENTLA_EXPLORE_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
        .max(1);
    let options = ExploreOptions::default();
    let par_options = ExploreOptions {
        threads: Some(threads),
        ..ExploreOptions::default()
    };

    println!(
        "# bench_explore ({} mode, {iters} iteration(s), {threads} thread(s))\n",
        if smoke { "smoke" } else { "full" }
    );
    println!("| scenario | states | transitions | seed | plain | seq_fp | par_fp | par_ws | seq_spill | par_spill | seq_red | seq_fp× | par_fp× | par_ws× | red× | null-ovh | ckpt-ovh |");
    println!("|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|---|");

    let mut rows = Vec::new();
    let mut acceptance: Option<(String, f64)> = None;
    let mut overhead: Option<(String, f64)> = None;
    let mut best_reduction: Option<(&'static str, f64)> = None;
    let all = scenarios(smoke);
    // The overhead gate runs on the largest chain of the active set
    // (chain4 full, chain3 smoke) — the scenario big enough for the
    // per-checkpoint branch to show up if it ever costs anything.
    let gate_name = all
        .iter()
        .rev()
        .find(|sc| sc.name.starts_with("chain"))
        .map(|sc| sc.name)
        .expect("a chain scenario is always present");
    for sc in all {
        let max = options.max_states;
        // Timing comparisons within 5% need more than one sample:
        // best-of-5 on the gate scenario even in smoke mode.
        let gate_iters = if sc.name == gate_name { iters.max(5) } else { iters };
        let (seed_t, seed_counts) =
            time_best(iters, || explore_seed(&sc.system, max).expect("seed explores"));
        // Plain and seq_fp are compared within 5% by the overhead
        // gate, so their samples interleave — block-to-block drift
        // (frequency scaling, neighbors on shared runners) cancels
        // out of the ratio instead of landing in it.
        let (plain_t, seq_t, plain_counts, seq_graph) = {
            let mut plain_best = Duration::MAX;
            let mut seq_best = Duration::MAX;
            let mut counts = None;
            let mut graph = None;
            for _ in 0..gate_iters {
                let t = Instant::now();
                let c = explore_plain(&sc.system, max).expect("plain explores");
                plain_best = plain_best.min(t.elapsed());
                counts = Some(c);
                let t = Instant::now();
                let g = explore_null(&sc.system, &options, 1);
                seq_best = seq_best.min(t.elapsed());
                graph = Some(g);
            }
            (
                plain_best,
                seq_best,
                counts.expect("at least one iteration"),
                graph.expect("at least one iteration"),
            )
        };
        let (par_t, par_graph) = time_best(iters, || {
            explore_parallel(&sc.system, &par_options).expect("par_fp explores")
        });
        let (ws_t, ws_graph) = time_best(iters, || explore_ws_null(&sc.system, &options, threads));
        let (spill_t, spill_graph) =
            time_best(iters, || explore_spill_null(&sc.system, &options));
        let (pspill_t, pspill_graph) =
            time_best(iters, || explore_par_spill_null(&sc.system, &options, threads));
        let (red_t, red_run) = time_best(iters, || {
            explore_reduced(&sc.system, &options, &sc.reduction)
        });
        // Crash-tolerance arming cost: same engine, checkpointing on
        // at the default cadence. A complete run below one cadence
        // interval writes nothing, so the snapshot file must never
        // appear — remove any leftover so a stale file cannot turn
        // the timed run into a resume.
        let ck_path = std::env::temp_dir().join(format!(
            "opentla_bench_ckpt_{}_{}.snap",
            std::process::id(),
            sc.name
        ));
        // Interleave armed/unarmed samples (the pair is compared
        // within 5%, so block-to-block drift must cancel); the unarmed
        // best also folds in the `seq_t` measured above.
        let (ck_t, seq_resume_t, ck_graph) = {
            let mut ck_best = Duration::MAX;
            let mut seq_best = seq_t;
            let mut graph = None;
            for _ in 0..gate_iters {
                let t = Instant::now();
                let g = explore_null(&sc.system, &options, 1);
                seq_best = seq_best.min(t.elapsed());
                drop(g);
                let _ = std::fs::remove_file(&ck_path);
                let t = Instant::now();
                let g = explore_ckpt(&sc.system, &options, &ck_path);
                ck_best = ck_best.min(t.elapsed());
                graph = Some(g);
            }
            (ck_best, seq_best, graph.expect("at least one iteration"))
        };
        let _ = std::fs::remove_file(&ck_path);
        let (states, transitions) = seed_counts;
        assert_eq!(
            plain_counts,
            (states, transitions),
            "{}: plain disagrees with seed",
            sc.name
        );
        assert_eq!(
            graph_counts(&seq_graph),
            (states, transitions),
            "{}: seq_fp disagrees with seed",
            sc.name
        );
        assert_eq!(
            graph_counts(&par_graph),
            (states, transitions),
            "{}: par_fp disagrees with seed",
            sc.name
        );
        assert_eq!(
            graph_counts(&ws_graph),
            (states, transitions),
            "{}: par_ws disagrees with seed",
            sc.name
        );
        // The work-stealing engine's canonical renumbering must make
        // it indistinguishable from the sequential engine, not merely
        // count-equal.
        assert_graphs_identical(&seq_graph, &ws_graph, sc.name);
        // The spill engine shares the sequential discovery order by
        // construction — byte-identity, not just counts.
        assert_graphs_identical(&seq_graph, &spill_graph, sc.name);
        // The parallel spill engine's canonical renumbering must make
        // it indistinguishable too, at whatever worker count ran.
        assert_graphs_identical(&seq_graph, &pspill_graph, sc.name);
        assert_eq!(
            graph_counts(&ck_graph),
            (states, transitions),
            "{}: checkpoint-armed run disagrees with seed",
            sc.name
        );
        // Reduction soundness, cross-checked where it is cheapest to
        // see: the reduced graph answers the scenario invariant the
        // same way the full graph does.
        let states_reduced = red_run.graph.len();
        assert!(
            states_reduced <= states,
            "{}: reduction grew the state space",
            sc.name
        );
        let full_verdict = check_invariant(&sc.system, &seq_graph, &sc.invariant)
            .expect("full invariant check")
            .holds();
        let red_verdict = check_invariant(&sc.system, &red_run.graph, &sc.invariant)
            .expect("reduced invariant check")
            .holds();
        assert_eq!(
            full_verdict, red_verdict,
            "{}: reduction flipped the invariant verdict",
            sc.name
        );
        let red_factor = states as f64 / states_reduced.max(1) as f64;
        let red_stats = red_run.reduction.expect("reduced run reports stats");

        let run = |d: Duration, workers: usize| EngineRun {
            seconds: d.as_secs_f64(),
            states_per_sec: states as f64 / d.as_secs_f64().max(1e-9),
            workers,
        };
        let (seed, plain, seq) = (run(seed_t, 1), run(plain_t, 1), run(seq_t, 1));
        let (par, ws) = (run(par_t, threads), run(ws_t, threads));
        let spill = run(spill_t, 1);
        let pspill = run(pspill_t, threads);
        let red = EngineRun {
            seconds: red_t.as_secs_f64(),
            states_per_sec: states_reduced as f64 / red_t.as_secs_f64().max(1e-9),
            workers: 1,
        };
        let seq_x = seq.states_per_sec / seed.states_per_sec;
        let par_x = par.states_per_sec / seed.states_per_sec;
        let ws_x = ws.states_per_sec / seed.states_per_sec;
        // Disabled-recorder overhead: how much throughput the shipping
        // engine gives up against the un-instrumented PR2 copy (< 0
        // means it measured faster).
        let null_ovh = 1.0 - seq.states_per_sec / plain.states_per_sec;
        // Resume overhead: what arming checkpointing at the default
        // cadence costs against the same engine with it off.
        let ck = run(ck_t, 1);
        let resume_ovh = 1.0 - seq_resume_t.as_secs_f64() / ck_t.as_secs_f64().max(1e-9);
        println!(
            "| {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {} | {:.2}× | {:.2}× | {:.2}× | {:.2}× | {:+.1}% | {:+.1}% |",
            sc.name,
            states,
            transitions,
            ms(seed_t),
            ms(plain_t),
            ms(seq_t),
            ms(par_t),
            ms(ws_t),
            ms(spill_t),
            ms(pspill_t),
            ms(red_t),
            seq_x,
            par_x,
            ws_x,
            red_factor,
            null_ovh * 100.0,
            resume_ovh * 100.0,
        );
        if sc.is_acceptance {
            acceptance = Some((sc.name.to_string(), par_x));
        }
        if sc.name == gate_name {
            overhead = Some((sc.name.to_string(), null_ovh));
        }
        if matches!(sc.name, "ring" | "mutex" | "chain4")
            && best_reduction.is_none_or(|(_, f)| red_factor > f)
        {
            best_reduction = Some((sc.name, red_factor));
        }
        rows.push(format!(
            "    {{\n      \"scenario\": \"{}\",\n      \"states\": {},\n      \"transitions\": {},\n      \"seed\": {},\n      \"plain\": {},\n      \"seq_fp\": {},\n      \"par_fp\": {},\n      \"par_ws\": {},\n      \"seq_ckpt\": {},\n      \"seq_spill\": {},\n      \"par_spill\": {},\n      \"speedup_seq_fp\": {:.2},\n      \"speedup_par_fp\": {:.2},\n      \"speedup_par_ws\": {:.2},\n      \"null_recorder_overhead\": {:.4},\n      \"resume_overhead\": {:.4},\n      \"acceptance\": {},\n      \"reduction\": {{\n        \"config\": \"{}\",\n        \"states_full\": {},\n        \"states_reduced\": {},\n        \"reduction_factor\": {:.2},\n        \"seq_red\": {},\n        \"ample_states\": {},\n        \"full_states\": {},\n        \"skipped_transitions\": {},\n        \"canon_hits\": {},\n        \"verdict_matches_full\": true\n      }}\n    }}",
            sc.name,
            states,
            transitions,
            engine_json(&seed),
            engine_json(&plain),
            engine_json(&seq),
            engine_json(&par),
            engine_json(&ws),
            engine_json(&ck),
            engine_json(&spill),
            engine_json(&pspill),
            seq_x,
            par_x,
            ws_x,
            null_ovh,
            resume_ovh,
            sc.is_acceptance,
            sc.reduction_desc,
            states,
            states_reduced,
            red_factor,
            engine_json(&red),
            red_stats.ample_states,
            red_stats.full_states,
            red_stats.skipped_transitions,
            red_stats.canon_hits,
        ));
    }

    // --- observability run report: largest chain, three engines -------
    let obs_scenario = scenarios(smoke)
        .into_iter()
        .rev()
        .find(|sc| sc.name == gate_name)
        .expect("the gate scenario exists");
    let obs_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../OBS_explore.jsonl");
    let obs_totals = write_obs_report(&obs_scenario.system, obs_path);
    println!("\nwrote {obs_path} ({gate_name}: {obs_totals})");

    let (overhead_name, null_ovh) = overhead.expect("the gate scenario always runs");

    // --- resume-overhead gate: full-size chain4, even in smoke mode ---
    // The smoke scenarios finish in single-digit milliseconds — far
    // too small to support a 5% timing assertion. The gate therefore
    // always measures the full acceptance chain, interleaving the
    // armed and unarmed engines so drift cancels out of the ratio.
    let resume_name = "chain4";
    let resume_ovh = {
        let gate_sys = QueueChain::new(4, 1, 2, FairnessStyle::Joint)
            .complete_system()
            .expect("chain4 builds");
        let ck_path = std::env::temp_dir().join(format!(
            "opentla_bench_ckpt_{}_gate.snap",
            std::process::id()
        ));
        let mut seq_best = Duration::MAX;
        let mut ck_best = Duration::MAX;
        for _ in 0..iters.max(5) {
            let t = Instant::now();
            let unarmed = explore_null(&gate_sys, &options, 1);
            seq_best = seq_best.min(t.elapsed());
            let _ = std::fs::remove_file(&ck_path);
            let t = Instant::now();
            let armed = explore_ckpt(&gate_sys, &options, &ck_path);
            ck_best = ck_best.min(t.elapsed());
            assert_eq!(
                graph_counts(&unarmed),
                graph_counts(&armed),
                "checkpoint-armed chain4 run disagrees with the unarmed one"
            );
        }
        let _ = std::fs::remove_file(&ck_path);
        1.0 - seq_best.as_secs_f64() / ck_best.as_secs_f64().max(1e-9)
    };

    // --- work-stealing gate: full chain4 at 4 workers, always ---------
    // As with the resume gate, the smoke scenarios are far too small to
    // support a speedup assertion, so the gate always measures the full
    // acceptance chain, interleaving the three engines so block-to-block
    // drift cancels out of the ratios. The asserts themselves only fire
    // with real hardware parallelism: on a single-hardware-thread
    // machine every "worker count" time-slices one core and the ratios
    // are pure scheduling noise — the measured numbers are still
    // printed and recorded in the JSON either way.
    let ws_gate_workers = 4usize;
    let hardware = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let ws_name = "chain4";
    let (ws_vs_seq, ws_vs_par) = {
        let gate_sys = QueueChain::new(4, 1, 2, FairnessStyle::Joint)
            .complete_system()
            .expect("chain4 builds");
        let mut seq_best = Duration::MAX;
        let mut par_best = Duration::MAX;
        let mut ws_best = Duration::MAX;
        for _ in 0..iters.max(5) {
            let t = Instant::now();
            let seq_g = explore_null(&gate_sys, &options, 1);
            seq_best = seq_best.min(t.elapsed());
            let t = Instant::now();
            let par_g = explore_null(&gate_sys, &options, ws_gate_workers);
            par_best = par_best.min(t.elapsed());
            let t = Instant::now();
            let ws_g = explore_ws_null(&gate_sys, &options, ws_gate_workers);
            ws_best = ws_best.min(t.elapsed());
            assert_graphs_identical(&seq_g, &ws_g, "ws gate (chain4)");
            assert_eq!(
                graph_counts(&par_g),
                graph_counts(&seq_g),
                "ws gate: par_fp disagrees on chain4"
            );
        }
        (
            seq_best.as_secs_f64() / ws_best.as_secs_f64().max(1e-9),
            par_best.as_secs_f64() / ws_best.as_secs_f64().max(1e-9),
        )
    };

    // --- spill gate: full chain4, in-RAM vs bounded-memory engine -----
    // At the generous default budget the spill engine never seals a
    // segment, so this measures what the disk-backed machinery costs
    // when memory is plentiful: the overhead must stay within 10% of
    // seq_fp. Samples interleave so drift cancels out of the ratio,
    // and byte-identity is asserted on every pair. This gate needs no
    // hardware parallelism, so it is always asserted.
    let spill_name = "chain4";
    let spill_ovh = {
        let gate_sys = QueueChain::new(4, 1, 2, FairnessStyle::Joint)
            .complete_system()
            .expect("chain4 builds");
        let mut seq_best = Duration::MAX;
        let mut spill_best = Duration::MAX;
        // More samples than the other gates: this one compares two
        // ~equal runtimes at a tight limit, so the best-of needs a
        // deeper pool to shake scheduler noise out of both minima.
        for _ in 0..iters.max(9) {
            let t = Instant::now();
            let seq_g = explore_null(&gate_sys, &options, 1);
            seq_best = seq_best.min(t.elapsed());
            let t = Instant::now();
            let spill_g = explore_spill_null(&gate_sys, &options);
            spill_best = spill_best.min(t.elapsed());
            assert_graphs_identical(&seq_g, &spill_g, "spill gate (chain4)");
        }
        1.0 - seq_best.as_secs_f64() / spill_best.as_secs_f64().max(1e-9)
    };

    // --- par-spill gate: full chain4, 4 workers vs the sequential -----
    // spill engine. Like the ws gate, the speedup assert only fires
    // with real hardware parallelism; byte-identity is checked either
    // way. A companion run at a deliberately tiny 256 KiB budget
    // proves the parallel engine actually exercises the disk tiers —
    // its recorded `spilled_bytes` must be non-zero — rather than
    // winning the race by never sealing a segment.
    let par_spill_name = "chain4";
    let par_spill_workers = 4usize;
    let (par_spill_speedup, par_spill_bytes) = {
        let gate_sys = QueueChain::new(4, 1, 2, FairnessStyle::Joint)
            .complete_system()
            .expect("chain4 builds");
        let mut seq_best = Duration::MAX;
        let mut par_best = Duration::MAX;
        for _ in 0..iters.max(5) {
            let t = Instant::now();
            let seq_g = explore_spill_null(&gate_sys, &options);
            seq_best = seq_best.min(t.elapsed());
            let t = Instant::now();
            let par_g = explore_par_spill_null(&gate_sys, &options, par_spill_workers);
            par_best = par_best.min(t.elapsed());
            assert_graphs_identical(&seq_g, &par_g, "par-spill gate (chain4)");
        }
        // Budget-proof run: 256 KiB forces every tier to disk.
        let recorder = Arc::new(CountingRecorder::new());
        let budget = Budget::default()
            .states(options.max_states)
            .with_recorder(RecorderHandle::new(recorder.clone()));
        let opts = ExploreOptions {
            engine: Engine::SpillWs,
            threads: Some(par_spill_workers),
            mem_budget_bytes: Some(256 << 10),
            ..options.clone()
        };
        let run = explore_governed_with(&gate_sys, &budget, &opts)
            .expect("budgeted par-spill explores");
        assert!(run.outcome.is_complete(), "budgeted par-spill run must complete");
        let bytes = recorder.spilled_bytes();
        assert!(
            bytes > 0,
            "par-spill gate: a 256 KiB budget on chain4 must seal segments \
             (spilled_bytes == 0 means the disk tiers never engaged)"
        );
        (
            seq_best.as_secs_f64() / par_best.as_secs_f64().max(1e-9),
            bytes,
        )
    };

    // --- thread-scaling curve: both parallel engines, 1/2/4/8 workers --
    // One descriptive sample per point (the gates above are what is
    // asserted); every point re-checks the state count so a scaling
    // entry can never come from a wrong graph.
    let worker_counts: [usize; 4] = [1, 2, 4, 8];
    let mut scaling_rows = Vec::new();
    for sc in scenarios(smoke) {
        let mut fp_entries = Vec::new();
        let mut ws_entries = Vec::new();
        let mut states = 0usize;
        for &w in &worker_counts {
            let entry = |t: Duration, n: usize, w: usize| {
                format!(
                    "{{ \"workers\": {w}, \"seconds\": {:.6}, \"states_per_sec\": {:.0} }}",
                    t.as_secs_f64(),
                    n as f64 / t.as_secs_f64().max(1e-9)
                )
            };
            let (t, g) = time_best(1, || explore_null(&sc.system, &options, w));
            states = g.len();
            fp_entries.push(entry(t, states, w));
            let (t, g) = time_best(1, || explore_ws_null(&sc.system, &options, w));
            assert_eq!(g.len(), states, "{}: scaling run disagrees", sc.name);
            ws_entries.push(entry(t, states, w));
        }
        scaling_rows.push(format!(
            "    {{\n      \"scenario\": \"{}\",\n      \"states\": {},\n      \"par_fp\": [{}],\n      \"par_ws\": [{}]\n    }}",
            sc.name,
            states,
            fp_entries.join(", "),
            ws_entries.join(", ")
        ));
    }
    let scaling_json = format!(
        "{{\n  \"benchmark\": \"explore_scaling\",\n  \"smoke\": {smoke},\n  \"iterations\": 1,\n  \"hardware_threads\": {hardware},\n  \"worker_counts\": [1, 2, 4, 8],\n  \"engines\": {{\n    \"par_fp\": \"level-synchronous parallel engine, fingerprint mode\",\n    \"par_ws\": \"work-stealing engine (packed layouts, barrier-free)\"\n  }},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        scaling_rows.join(",\n")
    );
    let scaling_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scaling.json");
    std::fs::write(scaling_path, &scaling_json).expect("write BENCH_scaling.json");
    println!("wrote {scaling_path}");

    // Gate legibility: every gate records whether its assert actually
    // fired, and — when skipped — a human-readable reason, so a JSON
    // reader never has to reverse-engineer the skip condition.
    let ws_asserted = hardware >= 2;
    let ws_skip_reason = if ws_asserted {
        "null".to_string()
    } else {
        "\"single hardware thread: worker counts time-slice one core, speedup \
         ratios are scheduling noise (byte-identity still checked)\""
            .to_string()
    };
    let json = format!(
        "{{\n  \"benchmark\": \"explore\",\n  \"smoke\": {smoke},\n  \"iterations\": {iters},\n  \"threads\": {threads},\n  \"engines\": {{\n    \"seed\": \"seed sequential BFS: exact SipHash visited set, interpretive successors\",\n    \"plain\": \"PR2 copy: fingerprinted + compiled, no observability layer (overhead baseline)\",\n    \"seq_fp\": \"sequential, fingerprinted visited set + compiled successor stepper, NullRecorder\",\n    \"par_fp\": \"level-synchronous parallel engine, fingerprint mode (delegates to sequential when 1 worker)\",\n    \"par_ws\": \"work-stealing engine: packed state layouts, per-worker deques, no level barriers\",\n    \"seq_ckpt\": \"seq_fp with checkpointing armed at DEFAULT_CHECKPOINT_CADENCE (crash-tolerance arming cost)\",\n    \"seq_spill\": \"bounded-memory spill engine at the default budget: disk-backed arena/edges, two-tier visited set\",\n    \"par_spill\": \"parallel bounded-memory engine: work-stealing workers over sharded hot tiers draining to sorted fingerprint runs\",\n    \"seq_red\": \"sequential engine under the scenario's Reduction (ample-set POR and/or symmetry), NullRecorder\"\n  }},\n  \"obs\": {{\n    \"report\": \"OBS_explore.jsonl\",\n    \"scenario\": \"{gate_name}\",\n    \"null_recorder_overhead\": {null_ovh:.4}\n  }},\n  \"resume\": {{\n    \"scenario\": \"{resume_name}\",\n    \"cadence\": {DEFAULT_CHECKPOINT_CADENCE},\n    \"resume_overhead\": {resume_ovh:.4}\n  }},\n  \"ws_gate\": {{\n    \"scenario\": \"{ws_name}\",\n    \"workers\": {ws_gate_workers},\n    \"hardware_threads\": {hardware},\n    \"speedup_vs_seq_fp\": {ws_vs_seq:.2},\n    \"speedup_vs_par_fp\": {ws_vs_par:.2},\n    \"asserted\": {ws_asserted},\n    \"skip_reason\": {ws_skip_reason}\n  }},\n  \"spill_gate\": {{\n    \"scenario\": \"{spill_name}\",\n    \"workers\": 1,\n    \"budget\": \"default (unconstrained)\",\n    \"overhead_vs_seq_fp\": {spill_ovh:.4},\n    \"limit\": 0.10,\n    \"asserted\": true,\n    \"skip_reason\": null\n  }},\n  \"par_spill_gate\": {{\n    \"scenario\": \"{par_spill_name}\",\n    \"workers\": {par_spill_workers},\n    \"hardware_threads\": {hardware},\n    \"speedup_vs_seq_spill\": {par_spill_speedup:.2},\n    \"limit\": 1.5,\n    \"spilled_bytes_at_256KiB\": {par_spill_bytes},\n    \"asserted\": {ws_asserted},\n    \"skip_reason\": {ws_skip_reason}\n  }},\n  \"scaling\": \"BENCH_scaling.json\",\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        rows.join(",\n")
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_explore.json");
    std::fs::write(path, &json).expect("write BENCH_explore.json");
    println!("wrote {path}");

    if let Some((name, par_x)) = acceptance {
        println!("\nacceptance ({name}): par_fp is {par_x:.2}× the seed throughput");
        assert!(
            par_x >= 2.0,
            "acceptance regression: par_fp only {par_x:.2}× seed on {name} (need ≥ 2×)"
        );
    }
    // Reduction acceptance: at least one of ring/mutex/chain4 must
    // shrink ≥ 2× under its reduction. Full mode only — the smoke set
    // runs mutex at 2 clients, where the 2-element symmetry group
    // cannot reach the bar by construction.
    if let Some((name, factor)) = best_reduction {
        println!("reduction ({name}): {factor:.2}× fewer states than full exploration");
        if !smoke {
            assert!(
                factor >= 2.0,
                "reduction regression: best factor on ring/mutex/chain4 is only \
                 {factor:.2}× ({name}, need ≥ 2×)"
            );
        }
    }
    println!(
        "overhead gate ({overhead_name}): NullRecorder engine gives up {:.1}% \
         vs the un-instrumented PR2 copy (limit 5%)",
        null_ovh * 100.0
    );
    assert!(
        null_ovh <= 0.05,
        "observability regression: NullRecorder path is {:.1}% slower than the \
         un-instrumented engine on {overhead_name} (limit 5%)",
        null_ovh * 100.0
    );
    println!(
        "resume gate ({resume_name}): checkpointing at the default cadence gives up \
         {:.1}% vs the unarmed engine (limit 5%)",
        resume_ovh * 100.0
    );
    assert!(
        resume_ovh <= 0.05,
        "crash-tolerance regression: checkpoint-armed engine is {:.1}% slower than \
         the unarmed engine on {resume_name} (limit 5%)",
        resume_ovh * 100.0
    );
    println!(
        "ws gate ({ws_name}, {ws_gate_workers} workers): par_ws is {ws_vs_seq:.2}× seq_fp \
         and {ws_vs_par:.2}× par_fp ({hardware} hardware thread(s))"
    );
    if hardware >= 2 {
        assert!(
            ws_vs_seq >= 1.5,
            "work-stealing regression: par_ws only {ws_vs_seq:.2}× seq_fp on {ws_name} \
             at {ws_gate_workers} workers (need ≥ 1.5×)"
        );
        assert!(
            ws_vs_par >= 1.8,
            "work-stealing regression: par_ws only {ws_vs_par:.2}× par_fp on {ws_name} \
             at {ws_gate_workers} workers (need ≥ 1.8×)"
        );
    } else {
        println!(
            "ws gate speedup asserts skipped (single hardware thread — byte-identity \
             was still checked)"
        );
    }
    println!(
        "spill gate ({spill_name}): bounded-memory engine gives up {:.1}% vs seq_fp \
         at the default budget (limit 10%)",
        spill_ovh * 100.0
    );
    assert!(
        spill_ovh <= 0.10,
        "spill regression: bounded-memory engine is {:.1}% slower than seq_fp on \
         {spill_name} at the default budget (limit 10%)",
        spill_ovh * 100.0
    );
    println!(
        "par_spill gate ({par_spill_name}, {par_spill_workers} workers): par_spill is \
         {par_spill_speedup:.2}× seq_spill, {par_spill_bytes} bytes spilled at 256 KiB \
         ({hardware} hardware thread(s))"
    );
    if hardware >= 2 {
        assert!(
            par_spill_speedup >= 1.5,
            "par-spill regression: par_spill only {par_spill_speedup:.2}× seq_spill on \
             {par_spill_name} at {par_spill_workers} workers (need ≥ 1.5×)"
        );
    } else {
        println!(
            "par_spill gate speedup assert skipped (single hardware thread — \
             byte-identity and spilled-bytes were still checked)"
        );
    }
}

/// Explores `system` under a [`JsonlRecorder`] with three engines —
/// sequential fingerprinted, sequential exact, and 4-thread parallel —
/// into one JSONL stream at `path`; validates the stream against the
/// schema and asserts the three run reports carry identical
/// state/transition totals. Returns the shared `states/transitions`
/// rendering.
fn write_obs_report(system: &System, path: &str) -> String {
    let recorder = Arc::new(JsonlRecorder::create(path).expect("create OBS_explore.jsonl"));
    let handle = RecorderHandle::new(recorder.clone());
    let configs: [(VisitedMode, usize); 3] = [
        (VisitedMode::Fingerprint, 1),
        (VisitedMode::Exact, 1),
        (VisitedMode::Fingerprint, 4),
    ];
    for (mode, threads) in configs {
        let budget = Budget::default().with_recorder(handle.clone());
        let opts = ExploreOptions {
            mode,
            threads: Some(threads),
            ..ExploreOptions::default()
        };
        let run = explore_governed_with(system, &budget, &opts).expect("obs run explores");
        assert!(run.outcome.is_complete());
    }
    recorder.flush();
    let text = std::fs::read_to_string(path).expect("read back OBS_explore.jsonl");
    let summary = obs::validate_stream(&text).unwrap_or_else(|e| {
        panic!("OBS_explore.jsonl fails schema validation: {e}");
    });
    assert_eq!(summary.runs.len(), 3, "expected one run report per engine");
    let totals: Vec<String> = summary
        .runs
        .iter()
        .map(|r| format!("{}/{}", r.states, r.transitions))
        .collect();
    assert!(
        totals.iter().all(|t| t == &totals[0]),
        "engines disagree in the observability report: {totals:?}"
    );
    assert!(
        summary.runs.iter().all(|r| r.complete),
        "observability runs must complete"
    );
    format!("{} states / {} transitions", summary.runs[0].states, summary.runs[0].transitions)
}
