//! Kill-and-resume smoke check — the CI step proving crash tolerance
//! end to end on the acceptance scenario:
//!
//! 1. explore chain4 under a tight state budget with checkpointing on
//!    → the run must exhaust, leaving a resume token and a snapshot
//!    file (`CKPT_chain4.snap` at the repository root);
//! 2. resume from that snapshot with the budget lifted → the run must
//!    complete and land exactly on the golden pre-reduction totals
//!    (54 358 states / 164 736 transitions / depth 55);
//! 3. the resumed graph must be byte-identical to an uninterrupted
//!    run's — states, initial states, edges, everything;
//! 4. the same round trip with the 4-thread level-synchronous parallel
//!    engine, the 4-worker work-stealing engine, the bounded-memory
//!    spill engine under a 256 KiB budget, and the *parallel*
//!    bounded-memory engine (4 work-stealing workers over the spill
//!    tiers, resumed at 2 workers) — each spill kill lands after at
//!    least one sealed arena segment, so its resume genuinely
//!    re-reads segment files (the snapshot pins neither the thread
//!    count nor the engine — any engine can resume any engine's
//!    snapshot, at any worker count);
//! 5. the same kill-and-resume on a *liveness lasso run*: a fair-cycle
//!    check of `◇FALSE` on the chain4 graph is interrupted by a
//!    transition budget (leaving `CKPT_chain4_live.snap`), resumed by
//!    the 4-worker parallel liveness engine, and must reproduce the
//!    uninterrupted sequential verdict and lasso byte-for-byte;
//! 6. all ten exploration runs plus the liveness events stream into
//!    `OBS_resume.jsonl` through a [`JsonlRecorder`], and the stream
//!    must validate against the observability schema.
//!
//! The snapshot files and the JSONL stream are left on disk for CI to
//! upload as artifacts.

use opentla_check::{
    check_liveness, check_liveness_resumable, explore_governed_with, explore_resumable,
    obs, Budget, Engine, ExploreOptions, JsonlRecorder, LiveTarget, LivenessOptions,
    RecorderHandle, StateGraph, Verdict,
};
use opentla_kernel::Expr;
use opentla_queue::{FairnessStyle, QueueChain};
use std::sync::Arc;

const GOLDEN: (usize, usize, usize) = (54_358, 164_736, 55);

/// Byte-for-byte graph equality: statistics, state arena order,
/// initial states, and edges.
fn assert_identical(label: &str, a: &StateGraph, b: &StateGraph) {
    assert_eq!(a.stats(), b.stats(), "{label}: stats differ");
    assert_eq!(a.states(), b.states(), "{label}: state order differs");
    assert_eq!(a.init(), b.init(), "{label}: initial states differ");
    for id in 0..a.len() {
        assert_eq!(a.edges(id), b.edges(id), "{label}: edges of {id} differ");
    }
}

fn main() {
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let obs_path = format!("{root}/OBS_resume.jsonl");
    let recorder =
        Arc::new(JsonlRecorder::create(&obs_path).expect("create OBS_resume.jsonl"));
    let handle = RecorderHandle::new(recorder.clone());

    let system = QueueChain::new(4, 1, 2, FairnessStyle::Joint)
        .complete_system()
        .expect("chain4 builds");
    let reference = {
        let run = explore_governed_with(
            &system,
            &Budget::unlimited(),
            &ExploreOptions::default(),
        )
        .expect("reference run explores");
        assert!(run.outcome.is_complete());
        run.graph
    };

    for (label, threads, resume_threads, engine, mem, snap_name) in [
        ("sequential", 1usize, 1usize, Engine::LevelSync, None, "CKPT_chain4.snap"),
        ("parallel(4)", 4, 4, Engine::LevelSync, None, "CKPT_chain4_par.snap"),
        (
            "work-stealing(4)",
            4,
            4,
            Engine::WorkStealing,
            None,
            "CKPT_chain4_ws.snap",
        ),
        (
            "spill(256KiB)",
            1,
            1,
            Engine::SpillBfs,
            Some(256usize << 10),
            "CKPT_chain4_spill.snap",
        ),
        // The parallel bounded-memory engine is killed at 4 workers
        // and resumed at 2 — the snapshot's canonical graph encodes
        // no worker count, so the resume must land on the same golden
        // totals regardless.
        (
            "par-spill(4→2, 256KiB)",
            4,
            2,
            Engine::SpillWs,
            Some(256usize << 10),
            "CKPT_chain4_parspill.snap",
        ),
    ] {
        let snap_path = format!("{root}/{snap_name}");
        let _ = std::fs::remove_file(&snap_path);
        let _ = std::fs::remove_dir_all(format!("{snap_path}.segs"));
        let opts = ExploreOptions {
            threads: Some(threads),
            engine,
            mem_budget_bytes: mem,
            ..ExploreOptions::default()
        };

        // The "kill": a budget far below the state space, with
        // periodic checkpointing tight enough to fire mid-run.
        let tight = Budget::default()
            .states(20_000)
            .with_checkpoint(&snap_path, 8_192)
            .with_recorder(handle.clone());
        let interrupted =
            explore_resumable(&system, &tight, &opts).expect("tight run explores");
        let token = interrupted
            .outcome
            .resume_token()
            .expect("tight budget must exhaust with a resume token")
            .clone();
        assert!(
            std::path::Path::new(&snap_path).exists(),
            "{label}: snapshot file must be written"
        );
        println!(
            "{label}: exhausted at {} states — snapshot {snap_name} (seq {})",
            interrupted.graph.len(),
            token.seq
        );
        if mem.is_some() {
            // The spill "kill" must land after the first sealed
            // segment, so the resume genuinely reads segment files.
            let sealed = std::fs::read_dir(format!("{snap_path}.segs"))
                .expect("spill leg leaves a segment dir next to its snapshot")
                .filter_map(|e| e.ok())
                .filter(|e| {
                    let n = e.file_name();
                    let n = n.to_string_lossy().into_owned();
                    n.starts_with("arena-") && n.ends_with(".seg")
                })
                .count();
            assert!(
                sealed >= 1,
                "{label}: interrupt must land after the first sealed segment"
            );
            println!("{label}: {sealed} sealed arena segment(s) at the kill point");
        }

        // The recovery: same call, budget lifted — and, on the
        // par-spill leg, a different worker count than the kill ran.
        let resume_opts = ExploreOptions {
            threads: Some(resume_threads),
            ..opts.clone()
        };
        let resumed = explore_resumable(
            &system,
            &Budget::unlimited()
                .with_checkpoint(&snap_path, 8_192)
                .with_recorder(handle.clone()),
            &resume_opts,
        )
        .expect("resumed run explores");
        assert!(resumed.outcome.is_complete(), "{label}: resumed run must complete");
        let stats = resumed.graph.stats();
        assert_eq!(
            (stats.states, stats.transitions, stats.depth),
            GOLDEN,
            "{label}: golden chain4 totals regressed across the resume"
        );
        assert_identical(label, &reference, &resumed.graph);
        println!(
            "{label}: resumed to completion — {} states / {} transitions / depth {}",
            stats.states, stats.transitions, stats.depth
        );
    }

    // The liveness leg: interrupt a fair-cycle lasso search mid-check,
    // resume it with the 4-worker parallel engine, and pin the verdict
    // to the uninterrupted sequential one. `◇FALSE` is violated by any
    // fair behavior, so the check must produce a lasso — golden shape:
    // a Violated verdict with a loop.
    {
        let target = LiveTarget::Eventually(Expr::bool(false));
        let seq = check_liveness(&system, &reference, &target)
            .expect("sequential liveness check succeeds");
        let seq_cx = seq
            .counterexample()
            .expect("chain4 must yield a fair lasso violating ◇FALSE");
        let live_snap = format!("{root}/CKPT_chain4_live.snap");
        let _ = std::fs::remove_file(&live_snap);

        let interrupted = check_liveness_resumable(
            &system,
            &reference,
            &target,
            &Budget::default()
                .transitions(60_000)
                .with_checkpoint(&live_snap, 8_192)
                .with_recorder(handle.clone()),
            &LivenessOptions::default().threads(1),
        )
        .expect("interrupted liveness run succeeds");
        let token = interrupted
            .outcome
            .resume_token()
            .expect("tight liveness budget must exhaust with a resume token");
        assert!(
            std::path::Path::new(&live_snap).exists(),
            "liveness snapshot file must be written"
        );
        println!(
            "liveness: exhausted with {} pending item(s) — snapshot CKPT_chain4_live.snap (seq {})",
            match &interrupted.outcome {
                opentla_check::Outcome::Exhausted { frontier_size, .. } => *frontier_size,
                _ => unreachable!(),
            },
            token.seq
        );

        let resumed = check_liveness_resumable(
            &system,
            &reference,
            &target,
            &Budget::unlimited()
                .with_checkpoint(&live_snap, 8_192)
                .with_recorder(handle.clone()),
            &LivenessOptions::default().threads(4),
        )
        .expect("resumed liveness run succeeds");
        assert!(resumed.outcome.is_complete(), "resumed liveness run must complete");
        let par = resumed.verdict.expect("complete runs carry a verdict");
        match &par {
            Verdict::Violated(cx) => {
                assert_eq!(cx.reason(), seq_cx.reason(), "liveness: reason diverges");
                assert_eq!(cx.states(), seq_cx.states(), "liveness: lasso states diverge");
                assert_eq!(cx.actions(), seq_cx.actions(), "liveness: lasso actions diverge");
                assert_eq!(
                    cx.loop_start(),
                    seq_cx.loop_start(),
                    "liveness: loop start diverges"
                );
                println!(
                    "liveness: resumed to the identical lasso — {} state(s), loop at {}",
                    cx.states().len(),
                    cx.loop_start().expect("lassos have loops")
                );
            }
            Verdict::Holds => panic!("liveness: resumed verdict lost the violation"),
        }
    }

    recorder.flush();
    let text = std::fs::read_to_string(&obs_path).expect("read back OBS_resume.jsonl");
    let summary = obs::validate_stream(&text).unwrap_or_else(|e| {
        panic!("OBS_resume.jsonl fails schema validation: {e}");
    });
    assert_eq!(
        summary.runs.len(),
        10,
        "five interrupted + five resumed runs must be reported"
    );
    let complete: Vec<_> = summary.runs.iter().filter(|r| r.complete).collect();
    assert_eq!(complete.len(), 5, "exactly the five resumed runs complete");
    assert!(
        complete
            .iter()
            .all(|r| r.states == GOLDEN.0 as u64 && r.transitions == GOLDEN.1 as u64),
        "resumed run reports must carry the golden totals"
    );
    let spills = summary.kinds.get("spill").copied().unwrap_or(0);
    assert!(
        spills >= 1,
        "the bounded-memory legs must report at least one spill event"
    );
    let cache_stats = summary.kinds.get("cache_stats").copied().unwrap_or(0);
    assert_eq!(
        cache_stats, 4,
        "each spill-engine run (interrupted + resumed, sequential and parallel) \
         reports its cache statistics once"
    );
    let liveness_workers = summary.kinds.get("liveness_worker").copied().unwrap_or(0);
    assert_eq!(
        liveness_workers, 4,
        "the resumed 4-worker liveness leg must report one event per worker"
    );
    println!(
        "wrote {obs_path} (schema-valid, {} runs, {liveness_workers} liveness worker events)",
        summary.runs.len()
    );
}
