//! Regenerates every figure of *Open Systems in TLA* and prints the
//! measurements recorded in `EXPERIMENTS.md`.
//!
//! Run with `cargo run --release -p opentla-bench --bin experiments`.

use opentla::{
    chaos_environment, check_ag_safety, check_ag_safety_diagnosed, closed_product, compose,
    escalate, Budget, CompositionOptions, CompositionProblem, Outcome,
};
use opentla_bench::{explore_all, handshake_system, ms, row};
use opentla_check::{check_invariant, check_liveness, ExploreOptions, LiveTarget};
use opentla_kernel::{Expr, Substitution};
use opentla_queue::{handshake_trace, DoubleQueue, FairnessStyle, QueueChain, SingleQueue};
use opentla_scenarios::{AlternatingBit, ArbiterFairness, ClockWorld, Fig1, Mutex, TokenRing};
use std::time::Instant;

fn main() {
    fig1();
    fig2();
    fig6();
    fig8();
    fig9();
    chain();
    mutex();
    clock();
    ring();
    abp();
    adversarial();
}

fn heading(title: &str) {
    println!("\n## {title}\n");
}

fn fig1() {
    heading("F1a/F1b — Figure 1, circular composition");
    let w = Fig1::new();
    println!("| check | verdict | states | time |");
    println!("|---|---|---|---|");

    let t = Instant::now();
    let ag_c = w.ag_c().unwrap();
    let ag_d = w.ag_d().unwrap();
    let target = w.safety_target().unwrap();
    let problem = CompositionProblem {
        vars: w.vars(),
        components: vec![&ag_c, &ag_d],
        target: &target,
        mapping: Substitution::default(),
    };
    let cert = compose(&problem, &CompositionOptions::default()).unwrap();
    println!(
        "{}",
        row(&[
            "compose (M⁰ circular safety)".into(),
            verdict(cert.holds()),
            cert.product_states.to_string(),
            ms(t.elapsed()),
        ])
    );

    let t = Instant::now();
    let chaos = chaos_environment("chaos_d", w.vars(), &[w.d()]);
    let sys = closed_product(w.vars(), &[&w.pi_c(), &chaos]).unwrap();
    let graph = explore_all(&sys);
    let v = check_ag_safety(
        &sys,
        &graph,
        &w.m0_d().safety_formula(),
        &w.m0_c().safety_formula(),
    )
    .unwrap();
    println!(
        "{}",
        row(&[
            "Π_c realizes M⁰_d ⊳ M⁰_c (chaos env)".into(),
            verdict(v.holds()),
            graph.len().to_string(),
            ms(t.elapsed()),
        ])
    );

    let t = Instant::now();
    let sys = closed_product(w.vars(), &[&w.pi_c(), &w.pi_d()]).unwrap();
    let graph = explore_all(&sys);
    let v = check_liveness(
        &sys,
        &graph,
        &LiveTarget::Eventually(Expr::var(w.c()).eq(Expr::int(1))),
    )
    .unwrap();
    println!(
        "{}",
        row(&[
            "Π_c ∥ Π_d ⊨ ◇(c=1) (M¹ liveness)".into(),
            verdict(v.holds()),
            graph.len().to_string(),
            ms(t.elapsed()),
        ])
    );
}

fn fig2() {
    heading("F2 — the two-phase handshake protocol");
    println!("replayed table for sends 37, 4, 19 (paper's Figure 2):\n");
    println!("| step | ack | sig | val |");
    println!("|---|---|---|---|");
    for r in handshake_trace(&[37, 4, 19]) {
        println!(
            "{}",
            row(&[
                r.label.clone(),
                r.ack.to_string(),
                r.sig.to_string(),
                r.val.map_or("–".into(), |v| v.to_string()),
            ])
        );
    }
    println!("\nchannel state space:\n");
    println!("| |V| | states | transitions | time |");
    println!("|---|---|---|---|");
    for vals in [2i64, 4, 8, 16] {
        let t = Instant::now();
        let (_, _, sys) = handshake_system(vals).unwrap();
        let graph = explore_all(&sys);
        println!(
            "{}",
            row(&[
                vals.to_string(),
                graph.len().to_string(),
                graph.edge_count().to_string(),
                ms(t.elapsed()),
            ])
        );
    }
}

fn fig6() {
    heading("F3–F6 — the complete queue system CQ(N, V)");
    println!("| N | |V| | states | transitions | |q|≤N | discipline | input served | time |");
    println!("|---|---|---|---|---|---|---|---|");
    for (n, v) in [(1usize, 2i64), (2, 2), (3, 2), (2, 3), (1, 4)] {
        let t = Instant::now();
        let world = SingleQueue::new(n, v, FairnessStyle::Joint);
        let sys = world.complete_system().unwrap();
        let graph = explore_all(&sys);
        let cap = check_invariant(&sys, &graph, &world.capacity_invariant())
            .unwrap()
            .holds();
        let disc = check_invariant(&sys, &graph, &world.output_discipline())
            .unwrap()
            .holds();
        let (p, q) = world.input_served();
        let served = check_liveness(&sys, &graph, &LiveTarget::LeadsTo(p, q))
            .unwrap()
            .holds();
        println!(
            "{}",
            row(&[
                n.to_string(),
                v.to_string(),
                graph.len().to_string(),
                graph.edge_count().to_string(),
                verdict(cap),
                verdict(disc),
                verdict(served),
                ms(t.elapsed()),
            ])
        );
    }
}

fn fig8() {
    heading("F7/F8 — CDQ ⇒ CQ[dbl] (complete-system refinement, §A.4)");
    println!("| N | |V| | CDQ states | edges checked | safety | liveness | time |");
    println!("|---|---|---|---|---|---|---|");
    for (n, v) in [(1usize, 2i64), (1, 3), (2, 2)] {
        let t = Instant::now();
        let w = DoubleQueue::new(n, v, FairnessStyle::Joint);
        let report = w.prove_refinement(&ExploreOptions::default()).unwrap();
        println!(
            "{}",
            row(&[
                n.to_string(),
                v.to_string(),
                report.simulation.states.to_string(),
                report.simulation.edges.to_string(),
                verdict(report.simulation.holds()),
                verdict(report.liveness.iter().all(|(_, v)| v.holds())),
                ms(t.elapsed()),
            ])
        );
    }
}

fn fig9() {
    heading("F9 — the Composition Theorem proof of (4), §A.5");
    println!("| N | |V| | product states | obligations | verdict | time |");
    println!("|---|---|---|---|---|---|");
    for (n, v) in [(1usize, 2i64), (1, 3), (2, 2)] {
        let t = Instant::now();
        let w = DoubleQueue::new(n, v, FairnessStyle::Joint);
        let cert = w.prove_composition(&CompositionOptions::default()).unwrap();
        println!(
            "{}",
            row(&[
                n.to_string(),
                v.to_string(),
                cert.product_states.to_string(),
                cert.obligations.len().to_string(),
                verdict(cert.holds()),
                ms(t.elapsed()),
            ])
        );
    }
    println!("\nobligations of the N=1, |V|=2 instance (the Figure 9 steps):\n");
    let w = DoubleQueue::new(1, 2, FairnessStyle::Joint);
    let cert = w.prove_composition(&CompositionOptions::default()).unwrap();
    println!("```");
    print!("{}", cert.display(w.vars()));
    println!("```");
}

fn chain() {
    heading("X1 — k queues in series (extension)");
    println!("| k | big capacity | product states | obligations | verdict | time |");
    println!("|---|---|---|---|---|---|");
    for k in [1usize, 2, 3] {
        let t = Instant::now();
        let chain = QueueChain::new(k, 1, 2, FairnessStyle::Joint);
        let cert = chain
            .prove_composition(&CompositionOptions::default())
            .unwrap();
        println!(
            "{}",
            row(&[
                k.to_string(),
                chain.big_capacity().to_string(),
                cert.product_states.to_string(),
                cert.obligations.len().to_string(),
                verdict(cert.holds()),
                ms(t.elapsed()),
            ])
        );
    }
}

fn mutex() {
    heading("X2 — mutex arbiter (extension): WF vs SF, k clients");
    println!("| clients | arbiter fairness | composition | mutual exclusion | r1 ↝ g1 | time |");
    println!("|---|---|---|---|---|---|");
    for (k, fairness) in [
        (2, ArbiterFairness::Weak),
        (2, ArbiterFairness::Strong),
        (3, ArbiterFairness::Weak),
        (3, ArbiterFairness::Strong),
    ] {
        let t = Instant::now();
        let w = Mutex::with_clients(k, fairness);
        let cert = w.prove(&CompositionOptions::default()).unwrap();
        let sys = w.product().unwrap();
        let graph = explore_all(&sys);
        let mutex_ok = check_invariant(&sys, &graph, &w.mutual_exclusion())
            .unwrap()
            .holds();
        let (p, q) = w.request_served(1);
        let served = check_liveness(&sys, &graph, &LiveTarget::LeadsTo(p, q))
            .unwrap()
            .holds();
        println!(
            "{}",
            row(&[
                k.to_string(),
                format!("{fairness:?}"),
                verdict(cert.holds()),
                verdict(mutex_ok),
                verdict(served),
                ms(t.elapsed()),
            ])
        );
    }
}

fn clock() {
    heading("X3 — law of nature (§2.3): timestamping under a monotonic clock");
    println!("| stampers | horizon | composition | bounded by now | product states | time |");
    println!("|---|---|---|---|---|---|");
    for (stampers, horizon) in [(1usize, 3i64), (2, 3), (2, 5)] {
        let t = Instant::now();
        let w = ClockWorld::new(stampers, horizon);
        let cert = w.prove(&CompositionOptions::default()).unwrap();
        let sys = w.product().unwrap();
        let graph = explore_all(&sys);
        let bounded = check_invariant(&sys, &graph, &w.bounded_by_now())
            .unwrap()
            .holds();
        println!(
            "{}",
            row(&[
                stampers.to_string(),
                horizon.to_string(),
                verdict(cert.holds()),
                verdict(bounded),
                cert.product_states.to_string(),
                ms(t.elapsed()),
            ])
        );
    }
}

fn ring() {
    heading("X4 — token ring (extension): the k-cycle of assumptions");
    println!("| nodes | composition (mutex) | token conservation | circulation □◇crit | states | time |");
    println!("|---|---|---|---|---|---|");
    for k in [2usize, 3, 4] {
        let t = Instant::now();
        let w = TokenRing::new(k);
        let cert = w.prove_mutex(&CompositionOptions::default()).unwrap();
        let sys = w.complete_system().unwrap();
        let graph = explore_all(&sys);
        let conserved = check_invariant(&sys, &graph, &w.token_conservation())
            .unwrap()
            .holds();
        let circulates = (0..k).all(|i| {
            check_liveness(
                &sys,
                &graph,
                &LiveTarget::AlwaysEventually(
                    Expr::var(w.crit(i)).eq(Expr::int(1)),
                ),
            )
            .unwrap()
            .holds()
        });
        println!(
            "{}",
            row(&[
                k.to_string(),
                verdict(cert.holds()),
                verdict(conserved),
                verdict(circulates),
                graph.len().to_string(),
                ms(t.elapsed()),
            ])
        );
    }
}

fn abp() {
    heading("X5 — alternating-bit protocol (extension)");
    println!("| messages | composition (reliable channel) | in-order | counting | ◇ all delivered | states | time |");
    println!("|---|---|---|---|---|---|---|");
    for k in [1i64, 2, 4] {
        let t = Instant::now();
        let w = AlternatingBit::new(k);
        let cert = w.prove(&CompositionOptions::default()).unwrap();
        let sys = w.complete_system().unwrap();
        let graph = explore_all(&sys);
        let in_order = check_invariant(&sys, &graph, &w.in_order_invariant())
            .unwrap()
            .holds();
        let counting = check_invariant(&sys, &graph, &w.counting_invariant())
            .unwrap()
            .holds();
        let done = Expr::var(w.recv()).eq(Expr::int(k));
        let delivered = check_liveness(&sys, &graph, &LiveTarget::Eventually(done))
            .unwrap()
            .holds();
        println!(
            "{}",
            row(&[
                k.to_string(),
                verdict(cert.holds()),
                verdict(in_order),
                verdict(counting),
                verdict(delivered),
                graph.len().to_string(),
                ms(t.elapsed()),
            ])
        );
    }
}

fn adversarial() {
    heading("X6 — adversarial faults and governed checking (extension)");
    println!("| scenario | ⊳ verdict | diagnosis | states | time |");
    println!("|---|---|---|---|---|");

    // Lossy ABP: in-order delivery is lost, but the receiver's E ⊳ M
    // survives with the break pinned on the injected fault.
    let t = Instant::now();
    let w = AlternatingBit::new(2);
    let lossy = w.lossy_system().unwrap();
    let graph = explore_all(&lossy);
    let report = check_ag_safety_diagnosed(
        &lossy,
        &graph,
        &w.receiver_assumption(),
        &w.receiver_guarantee(),
    )
    .unwrap();
    let diagnosis = report
        .env_break
        .as_ref()
        .map_or_else(|| "cooperative".to_string(), |b| {
            format!(
                "E broken at step {} by {}",
                b.step,
                b.action.as_deref().unwrap_or("(init)")
            )
        });
    println!(
        "{}",
        row(&[
            "ABP, lossy forward wire".to_string(),
            verdict(report.holds()),
            diagnosis,
            graph.len().to_string(),
            ms(t.elapsed()),
        ])
    );

    // Crash–restart queue chain, from both sides of ⊳.
    let chain = QueueChain::new(2, 1, 2, FairnessStyle::None);
    for (label, sys, expect_holds) in [
        ("chain, crashing environment", chain.crashy_env_system().unwrap(), true),
        ("chain, crashing queue 1", chain.crashy_queue_system(1).unwrap(), false),
    ] {
        let t = Instant::now();
        let graph = explore_all(&sys);
        let report = check_ag_safety_diagnosed(
            &sys,
            &graph,
            &chain.outer_assumption(),
            &chain.big_queue_guarantee().unwrap(),
        )
        .unwrap();
        assert_eq!(report.holds(), expect_holds);
        let diagnosis = match (&report.env_break, report.verdict.counterexample()) {
            (Some(b), _) => format!(
                "E broken at step {}, M held {} steps",
                b.step,
                b.step + 1
            ),
            (None, Some(cx)) => cx.reason().chars().take(60).collect(),
            (None, None) => "cooperative".to_string(),
        };
        println!(
            "{}",
            row(&[
                label.to_string(),
                verdict(report.holds()),
                diagnosis,
                graph.len().to_string(),
                ms(t.elapsed()),
            ])
        );
    }

    // Governed exploration: a tiny budget exhausts gracefully, and
    // geometric escalation completes the run.
    let t = Instant::now();
    let run = opentla_check::explore_governed(&lossy, &Budget::default().states(3)).unwrap();
    let partial = match &run.outcome {
        Outcome::Exhausted { reason, frontier_size, stats, .. } => {
            format!("{reason}; {} frontier, {} states seen", frontier_size, stats.states)
        }
        Outcome::Complete => "complete".to_string(),
    };
    let full = escalate(&Budget::default().states(3), 4, 8, |b| {
        opentla_check::explore_governed(&lossy, b)
    })
    .unwrap();
    println!(
        "{}",
        row(&[
            "governed explore (3-state budget, ×4 escalation)".to_string(),
            verdict(full.outcome.is_complete()),
            partial,
            full.graph.len().to_string(),
            ms(t.elapsed()),
        ])
    );
}

fn verdict(ok: bool) -> String {
    if ok { "PROVED" } else { "FAILS" }.to_string()
}
