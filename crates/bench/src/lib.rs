//! Shared workload builders for the benchmark suite and the
//! `experiments` binary that regenerates the paper's figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use opentla::{closed_product, ComponentSpec, SpecError};
use opentla_check::{explore, ExploreOptions, GuardedAction, Init, StateGraph, System};
use opentla_kernel::{Domain, Vars};
use opentla_queue::Channel;

/// A two-party handshake world: a sender putting arbitrary values on a
/// channel and a receiver acknowledging them — the complete system
/// behind Figure 2's protocol table.
///
/// # Errors
///
/// Never fails for well-formed parameters; the `Result` propagates the
/// generic builder contract.
pub fn handshake_system(num_values: i64) -> Result<(Vars, Channel, System), SpecError> {
    let mut vars = Vars::new();
    let values = Domain::int_range(0, num_values - 1);
    let c = Channel::declare(&mut vars, "c", &values);
    let sender = {
        let puts = GuardedAction::family("Send", values.values().to_vec(), |v| {
            (c.ready_to_send(), c.send_updates(v))
        });
        ComponentSpec::builder("sender")
            .outputs([c.sig, c.val])
            .inputs([c.ack])
            .init(Init::new([(c.sig, opentla_kernel::Value::Int(0))]))
            .actions(puts)
            .build()?
    };
    let receiver = ComponentSpec::builder("receiver")
        .outputs([c.ack])
        .inputs([c.sig, c.val])
        .init(Init::new([(c.ack, opentla_kernel::Value::Int(0))]))
        .action(GuardedAction::new(
            "Ack",
            c.ready_to_ack(),
            c.ack_updates(),
        ))
        .build()?;
    let system = closed_product(&vars, &[&sender, &receiver])?;
    Ok((vars, c, system))
}

/// Explores a system with default options, panicking on engine errors
/// (benchmark-grade convenience).
///
/// # Panics
///
/// Panics if exploration fails.
pub fn explore_all(system: &System) -> StateGraph {
    explore(system, &ExploreOptions::default()).expect("exploration succeeds")
}

/// Formats a markdown table row.
pub fn row(cells: &[String]) -> String {
    format!("| {} |", cells.join(" | "))
}

/// Milliseconds, pretty.
pub fn ms(d: std::time::Duration) -> String {
    format!("{:.2} ms", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_system_explores() {
        let (_, _, sys) = handshake_system(2).unwrap();
        let graph = explore_all(&sys);
        // sig, ack ∈ {0,1}², val ∈ {0,1}: all 8 combinations reachable
        // (val is initially free).
        assert_eq!(graph.len(), 8);
    }

    #[test]
    fn row_formats() {
        assert_eq!(row(&["a".into(), "b".into()]), "| a | b |");
    }
}
