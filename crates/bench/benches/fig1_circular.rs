//! Figure 1: the circular assumption/guarantee examples.
//!
//! Benchmarks the full Composition Theorem application on the safety
//! instance, the realization check of `Π_c`, and the liveness
//! counterexample search for the `M¹` instance.

use criterion::{criterion_group, criterion_main, Criterion};
use opentla::{
    chaos_environment, check_ag_safety, closed_product, compose, CompositionOptions,
    CompositionProblem,
};
use opentla_bench::explore_all;
use opentla_check::{check_liveness, LiveTarget};
use opentla_kernel::{Expr, Substitution};
use opentla_scenarios::Fig1;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1");

    group.bench_function("compose_safety", |b| {
        let w = Fig1::new();
        let ag_c = w.ag_c().unwrap();
        let ag_d = w.ag_d().unwrap();
        let target = w.safety_target().unwrap();
        b.iter(|| {
            let problem = CompositionProblem {
                vars: w.vars(),
                components: vec![&ag_c, &ag_d],
                target: &target,
                mapping: Substitution::default(),
            };
            let cert = compose(&problem, &CompositionOptions::default()).unwrap();
            assert!(cert.holds());
            cert.obligations.len()
        })
    });

    group.bench_function("realization_pi_c", |b| {
        let w = Fig1::new();
        let chaos = chaos_environment("chaos_d", w.vars(), &[w.d()]);
        let sys = closed_product(w.vars(), &[&w.pi_c(), &chaos]).unwrap();
        let graph = explore_all(&sys);
        let e = w.m0_d().safety_formula();
        let m = w.m0_c().safety_formula();
        b.iter(|| {
            let verdict = check_ag_safety(&sys, &graph, &e, &m).unwrap();
            assert!(verdict.holds());
        })
    });

    group.bench_function("liveness_counterexample", |b| {
        let w = Fig1::new();
        let sys = closed_product(w.vars(), &[&w.pi_c(), &w.pi_d()]).unwrap();
        let graph = explore_all(&sys);
        let target = LiveTarget::Eventually(Expr::var(w.c()).eq(Expr::int(1)));
        b.iter(|| {
            let verdict = check_liveness(&sys, &graph, &target).unwrap();
            assert!(!verdict.holds());
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
