//! Figure 2: the two-phase handshake protocol.
//!
//! Benchmarks trace regeneration (the paper's table, scaled to longer
//! value sequences) and channel state-space exploration as the value
//! domain grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use opentla_bench::{explore_all, handshake_system};
use opentla_queue::handshake_trace;

fn bench_handshake(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2");

    for len in [3usize, 64, 512] {
        group.bench_with_input(BenchmarkId::new("trace", len), &len, |b, &len| {
            let values: Vec<i64> = (0..len as i64).map(|i| i % 7).collect();
            b.iter(|| {
                let rows = handshake_trace(&values);
                assert_eq!(rows.len(), 2 * len);
                rows.len()
            })
        });
    }

    for vals in [2i64, 4, 8] {
        group.bench_with_input(BenchmarkId::new("explore", vals), &vals, |b, &vals| {
            b.iter(|| {
                let (_, _, sys) = handshake_system(vals).unwrap();
                let graph = explore_all(&sys);
                assert_eq!(graph.len(), (4 * vals) as usize);
                graph.len()
            })
        });
    }

    group.finish();
}

criterion_group!(benches, bench_handshake);
criterion_main!(benches);
