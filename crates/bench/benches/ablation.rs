//! Ablation studies for the engine's design choices (see DESIGN.md):
//!
//! * **Abstract vs brute-force enabledness** for refinement-mapped
//!   fairness: the mapped-guard predicate (`fairness_enabled_expr`,
//!   the semantically correct choice) against the brute-force
//!   next-state search over the domain product (which is both wrong
//!   under substitution *and* slower — this bench quantifies the
//!   "slower" half).
//! * **Pinned vs filtered initial states**: `Init`'s fixed-assignment
//!   representation enumerates only the free variables' domains; the
//!   ablation moves the same constraints into a filtering predicate
//!   over the full product.

use criterion::{criterion_group, criterion_main, Criterion};
use opentla_bench::explore_all;
use opentla_check::{explore, ExploreOptions, Init, System};
use opentla_kernel::Expr;
use opentla_queue::{DoubleQueue, FairnessStyle};

fn bench_enabledness(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_enabled");
    group.sample_size(10);

    let w = DoubleQueue::new(1, 2, FairnessStyle::Joint);
    let cdq = w.cdq_system().unwrap();
    let graph = explore_all(&cdq);
    let mapping = w.refinement_mapping();
    let mapped_fair = {
        use opentla_kernel::Formula;
        let fair = Formula::Fair(w.big_queue().fairness_condition(0));
        match mapping.formula(&fair).unwrap() {
            Formula::Fair(f) => f,
            _ => unreachable!(),
        }
    };
    let hint = mapping
        .expr(&w.big_queue().fairness_enabled_expr(0))
        .unwrap();

    group.bench_function("abstract_enabled_vector", |b| {
        b.iter(|| {
            graph
                .states()
                .iter()
                .filter(|s| hint.holds_state(s).unwrap())
                .count()
        })
    });
    group.bench_function("bruteforce_enabled_vector", |b| {
        let angle = mapped_fair.angle_action();
        b.iter(|| {
            graph
                .states()
                .iter()
                .filter(|s| cdq.universe().enabled(&angle, s).unwrap())
                .count()
        })
    });

    group.finish();
}

fn bench_init_representation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_init");
    group.sample_size(10);

    let w = DoubleQueue::new(1, 2, FairnessStyle::Joint);
    let cdq = w.cdq_system().unwrap();

    group.bench_function("pinned_assignments", |b| {
        b.iter(|| explore(&cdq, &ExploreOptions::default()).unwrap().len())
    });

    // The same initial condition as a filtering predicate over the full
    // domain product: every previously-pinned variable becomes free,
    // constrained by the equivalent predicate.
    let filtered = {
        let pred: Expr = cdq.init().as_pred();
        let init = Init::new([]).with_constraint(pred);
        System::new(cdq.vars().clone(), init, cdq.actions().to_vec())
    };
    group.bench_function("filtered_product", |b| {
        b.iter(|| explore(&filtered, &ExploreOptions::default()).unwrap().len())
    });

    group.finish();
}

criterion_group!(benches, bench_enabledness, bench_init_representation);
criterion_main!(benches);
