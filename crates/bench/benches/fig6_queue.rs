//! Figures 3–6: the complete single-queue system `CQ`.
//!
//! Benchmarks state-space exploration, the capacity invariant, and the
//! pending-input-is-served liveness property across the (N, |V|) grid.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use opentla_bench::explore_all;
use opentla_check::{check_invariant, check_liveness, LiveTarget};
use opentla_queue::{FairnessStyle, SingleQueue};

fn bench_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig6");

    for (n, v) in [(1usize, 2i64), (2, 2), (3, 2), (2, 3)] {
        let id = format!("N{n}_V{v}");
        group.bench_with_input(
            BenchmarkId::new("explore", &id),
            &(n, v),
            |b, &(n, v)| {
                let world = SingleQueue::new(n, v, FairnessStyle::Joint);
                let sys = world.complete_system().unwrap();
                b.iter(|| explore_all(&sys).len())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("capacity_invariant", &id),
            &(n, v),
            |b, &(n, v)| {
                let world = SingleQueue::new(n, v, FairnessStyle::Joint);
                let sys = world.complete_system().unwrap();
                let graph = explore_all(&sys);
                let inv = world.capacity_invariant();
                b.iter(|| {
                    assert!(check_invariant(&sys, &graph, &inv).unwrap().holds());
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("input_served", &id),
            &(n, v),
            |b, &(n, v)| {
                let world = SingleQueue::new(n, v, FairnessStyle::Joint);
                let sys = world.complete_system().unwrap();
                let graph = explore_all(&sys);
                let (p, q) = world.input_served();
                let target = LiveTarget::LeadsTo(p, q);
                b.iter(|| {
                    assert!(check_liveness(&sys, &graph, &target).unwrap().holds());
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_queue);
criterion_main!(benches);
