//! Propositions 1–4 and the semantic operators: evaluation throughput
//! of `⊳`, `C`, `⊥`, and `+v` on lasso behaviors, plus the exhaustive
//! validity sweep behind the Proposition 3 soundness check.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use opentla::proposition_3_reduction;
use opentla_kernel::{Domain, Expr, Formula, Vars};
use opentla_semantics::{all_lassos, eval, random_lasso, EvalCtx, Universe};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn world() -> (Universe, Formula, Formula) {
    let mut vars = Vars::new();
    let x = vars.declare("x", Domain::bits());
    let y = vars.declare("y", Domain::bits());
    let e = Formula::pred(Expr::var(y).eq(Expr::int(0)))
        .and(Formula::act_box(Expr::bool(false), vec![y]));
    let m = Formula::pred(Expr::var(x).eq(Expr::int(0)))
        .and(Formula::act_box(Expr::bool(false), vec![x]));
    (Universe::new(vars), e, m)
}

fn bench_props(c: &mut Criterion) {
    let mut group = c.benchmark_group("props");

    let (universe, e, m) = world();
    let mut rng = StdRng::seed_from_u64(2026);
    let lassos: Vec<_> = (0..256)
        .map(|_| random_lasso(&universe, 6, &mut rng))
        .collect();
    let ctx = EvalCtx::default();

    for (name, formula) in [
        ("while_plus", e.clone().while_plus(m.clone())),
        ("closure", e.clone().closure()),
        ("ortho", e.clone().ortho(m.clone())),
        (
            "plus",
            e.clone().plus(vec![universe.vars().find("x").unwrap()]),
        ),
    ] {
        group.bench_with_input(
            BenchmarkId::new("eval_256_lassos", name),
            &formula,
            |b, f| {
                b.iter(|| {
                    lassos
                        .iter()
                        .filter(|s| eval(f, s, &ctx).unwrap())
                        .count()
                })
            },
        );
    }

    group.bench_function("prop3_validity_sweep", |b| {
        let (universe, e, m) = world();
        let x = universe.vars().find("x").unwrap();
        let r = Formula::pred(Expr::var(x).eq(Expr::int(0)));
        let red = proposition_3_reduction(e, r, m, vec![x]);
        let lassos = all_lassos(&universe, 3);
        let ctx = EvalCtx::default();
        b.iter(|| {
            lassos
                .iter()
                .filter(|s| {
                    eval(&red.implication, s, &ctx).unwrap()
                        && eval(&red.orthogonality, s, &ctx).unwrap()
                        && eval(&red.conclusion, s, &ctx).unwrap()
                })
                .count()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_props);
criterion_main!(benches);
