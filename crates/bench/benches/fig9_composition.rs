//! Figure 9 / Section A.5: the Composition Theorem proof of
//! `G ∧ (QE[1] ⊳ QM[1]) ∧ (QE[2] ⊳ QM[2]) ⇒ (QE[dbl] ⊳ QM[dbl])`,
//! plus the k-queue chain scaling study and the mutex scenario.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use opentla::CompositionOptions;
use opentla_queue::{DoubleQueue, FairnessStyle, QueueChain};
use opentla_scenarios::{ArbiterFairness, Mutex};

fn bench_composition(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    group.sample_size(10);

    for (n, v) in [(1usize, 2i64), (2, 2)] {
        group.bench_with_input(
            BenchmarkId::new("double_queue", format!("N{n}_V{v}")),
            &(n, v),
            |b, &(n, v)| {
                let w = DoubleQueue::new(n, v, FairnessStyle::Joint);
                b.iter(|| {
                    let cert = w.prove_composition(&CompositionOptions::default()).unwrap();
                    assert!(cert.holds());
                    cert.product_states
                })
            },
        );
    }

    for k in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("chain", k), &k, |b, &k| {
            let chain = QueueChain::new(k, 1, 2, FairnessStyle::Joint);
            b.iter(|| {
                let cert = chain
                    .prove_composition(&CompositionOptions::default())
                    .unwrap();
                assert!(cert.holds());
                cert.product_states
            })
        });
    }

    group.bench_function("mutex_strong", |b| {
        let w = Mutex::new(ArbiterFairness::Strong);
        b.iter(|| {
            let cert = w.prove(&CompositionOptions::default()).unwrap();
            assert!(cert.holds());
            cert.product_states
        })
    });
    group.bench_function("mutex_weak_counterexample", |b| {
        let w = Mutex::new(ArbiterFairness::Weak);
        b.iter(|| {
            let cert = w.prove(&CompositionOptions::default()).unwrap();
            assert!(!cert.holds());
            cert.product_states
        })
    });

    group.finish();
}

criterion_group!(benches, bench_composition);
criterion_main!(benches);
