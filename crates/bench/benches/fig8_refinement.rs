//! Figures 7–8: the double queue `CDQ` and the complete-system
//! refinement `CDQ ⇒ CQ[dbl]` (Section A.4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use opentla_bench::explore_all;
use opentla_check::ExploreOptions;
use opentla_queue::{DoubleQueue, FairnessStyle};

fn bench_refinement(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8");
    group.sample_size(10);

    for (n, v) in [(1usize, 2i64), (2, 2)] {
        let id = format!("N{n}_V{v}");
        group.bench_with_input(BenchmarkId::new("explore_cdq", &id), &(n, v), |b, &(n, v)| {
            let w = DoubleQueue::new(n, v, FairnessStyle::Joint);
            let sys = w.cdq_system().unwrap();
            b.iter(|| explore_all(&sys).len())
        });
        group.bench_with_input(
            BenchmarkId::new("refinement", &id),
            &(n, v),
            |b, &(n, v)| {
                let w = DoubleQueue::new(n, v, FairnessStyle::Joint);
                b.iter(|| {
                    let report =
                        w.prove_refinement(&ExploreOptions::default()).unwrap();
                    assert!(report.holds());
                    report.simulation.states
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_refinement);
criterion_main!(benches);
