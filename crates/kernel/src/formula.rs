//! The temporal formula AST, including the paper's operators.

use crate::{Expr, VarId, VarSet, Vars};
use std::fmt;

/// Which fairness operator a [`Fairness`] condition uses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FairnessKind {
    /// `WF_v(A)`: infinitely many `⟨A⟩_v` steps, or infinitely many
    /// states in which `⟨A⟩_v` is not enabled.
    Weak,
    /// `SF_v(A)`: infinitely many `⟨A⟩_v` steps, or only finitely many
    /// states in which `⟨A⟩_v` is enabled.
    Strong,
}

/// A fairness condition `WF_v(A)` or `SF_v(A)`.
#[derive(Clone, PartialEq, Debug)]
pub struct Fairness {
    /// Weak or strong fairness.
    pub kind: FairnessKind,
    /// The action `A`.
    pub action: Expr,
    /// The subscript tuple `v`; an `⟨A⟩_v` step is an `A` step that
    /// changes `v`.
    pub sub: Vec<VarId>,
}

impl Fairness {
    /// `WF_sub(action)`.
    pub fn weak(action: Expr, sub: Vec<VarId>) -> Self {
        Fairness {
            kind: FairnessKind::Weak,
            action,
            sub,
        }
    }

    /// `SF_sub(action)`.
    pub fn strong(action: Expr, sub: Vec<VarId>) -> Self {
        Fairness {
            kind: FairnessKind::Strong,
            action,
            sub,
        }
    }

    /// The angle action `⟨A⟩_v ≜ A ∧ (v' ≠ v)` as an expression.
    pub fn angle_action(&self) -> Expr {
        angle(&self.action, &self.sub)
    }
}

/// `⟨A⟩_v ≜ A ∧ ¬(v' = v)`: an `A` step that changes the tuple `v`.
pub(crate) fn angle(action: &Expr, sub: &[VarId]) -> Expr {
    Expr::all([
        action.clone(),
        crate::unchanged(sub).not(),
    ])
}

/// A TLA formula of the fragment mechanized by this workspace.
///
/// Besides the standard operators (`□`, `◇`, `WF`, `SF`, `∃`), the AST
/// carries the four operators the paper introduces or relies on:
///
/// * [`Formula::WhilePlus`] — the assumption/guarantee operator
///   `E ⊳ M` (Section 3): `M` holds at least one step longer than `E`.
/// * [`Formula::Plus`] — `F +v` (Section 4.1): if `F` ever becomes
///   false, `v` stops changing.
/// * [`Formula::Ortho`] — `E ⊥ M` (Section 4.2): no step makes both
///   `E` and `M` false.
/// * [`Formula::Closure`] — `C(F)` (Section 2.4): the strongest safety
///   property implied by `F`.
///
/// Evaluation over behaviors lives in `opentla-semantics`.
#[derive(Clone, PartialEq, Debug)]
pub enum Formula {
    /// A state predicate, evaluated at the first state of a behavior.
    Pred(Expr),
    /// `□[A]_v`: every step is an `A` step or leaves `v` unchanged.
    ActBox {
        /// The action `A`.
        action: Expr,
        /// The subscript tuple `v`.
        sub: Vec<VarId>,
    },
    /// Negation.
    Not(Box<Formula>),
    /// N-ary conjunction; empty means `TRUE`.
    And(Vec<Formula>),
    /// N-ary disjunction; empty means `FALSE`.
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Equivalence.
    Equiv(Box<Formula>, Box<Formula>),
    /// `□F`: `F` holds of every suffix.
    Always(Box<Formula>),
    /// `◇F`: `F` holds of some suffix.
    Eventually(Box<Formula>),
    /// A fairness condition.
    Fair(Fairness),
    /// `∃ x1, …, xk : F` — `F` with the listed variables hidden.
    Exists {
        /// The hidden (internal) variables.
        vars: Vec<VarId>,
        /// The body.
        body: Box<Formula>,
    },
    /// `E ⊳ M`: if the environment satisfies `E` through "time" `n`,
    /// the system satisfies `M` through `n + 1`; and `E ⇒ M` overall.
    WhilePlus {
        /// The environment assumption `E`.
        env: Box<Formula>,
        /// The system guarantee `M`.
        sys: Box<Formula>,
    },
    /// `E -▷ M`: `M` holds *at least as long as* `E` does (Section 3
    /// cites this form from [5]); weaker than `⊳` in that `M` may fail
    /// on the same step as `E`.
    While {
        /// The environment assumption `E`.
        env: Box<Formula>,
        /// The system guarantee `M`.
        sys: Box<Formula>,
    },
    /// `F +v`: either `F` holds, or `F` holds for some prefix and `v`
    /// never changes afterwards.
    Plus {
        /// The body `F`.
        body: Box<Formula>,
        /// The tuple `v` that must stop changing if `F` fails.
        sub: Vec<VarId>,
    },
    /// `E ⊥ M`: there is no `n` such that `E` and `M` both hold for the
    /// first `n` states and both fail for the first `n + 1`.
    Ortho(Box<Formula>, Box<Formula>),
    /// `C(F)`: every prefix of the behavior satisfies `F`.
    Closure(Box<Formula>),
}

impl Formula {
    // ----- constructors --------------------------------------------------

    /// The formula `TRUE`.
    pub fn tt() -> Formula {
        Formula::And(vec![])
    }

    /// The formula `FALSE`.
    pub fn ff() -> Formula {
        Formula::Or(vec![])
    }

    /// A state predicate.
    pub fn pred(e: Expr) -> Formula {
        Formula::Pred(e)
    }

    /// `□[action]_sub`.
    pub fn act_box(action: Expr, sub: Vec<VarId>) -> Formula {
        Formula::ActBox { action, sub }
    }

    /// `□self`.
    pub fn always(self) -> Formula {
        Formula::Always(Box::new(self))
    }

    /// `◇self`.
    pub fn eventually(self) -> Formula {
        Formula::Eventually(Box::new(self))
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Formula {
        Formula::Not(Box::new(self))
    }

    /// Conjunction, flattening nested conjunctions and dropping `TRUE`.
    pub fn and(self, other: Formula) -> Formula {
        Formula::all([self, other])
    }

    /// Disjunction, flattening nested disjunctions and dropping `FALSE`.
    pub fn or(self, other: Formula) -> Formula {
        Formula::any_of([self, other])
    }

    /// N-ary conjunction.
    pub fn all(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        if out.len() == 1 {
            out.pop().expect("len checked")
        } else {
            Formula::And(out)
        }
    }

    /// N-ary disjunction.
    pub fn any_of(fs: impl IntoIterator<Item = Formula>) -> Formula {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        if out.len() == 1 {
            out.pop().expect("len checked")
        } else {
            Formula::Or(out)
        }
    }

    /// Implication.
    pub fn implies(self, other: Formula) -> Formula {
        Formula::Implies(Box::new(self), Box::new(other))
    }

    /// Equivalence.
    pub fn equiv(self, other: Formula) -> Formula {
        Formula::Equiv(Box::new(self), Box::new(other))
    }

    /// `WF_sub(action)`.
    pub fn wf(action: Expr, sub: Vec<VarId>) -> Formula {
        Formula::Fair(Fairness::weak(action, sub))
    }

    /// `SF_sub(action)`.
    pub fn sf(action: Expr, sub: Vec<VarId>) -> Formula {
        Formula::Fair(Fairness::strong(action, sub))
    }

    /// `∃ vars : self`.
    pub fn exists(vars: Vec<VarId>, body: Formula) -> Formula {
        if vars.is_empty() {
            body
        } else {
            Formula::Exists {
                vars,
                body: Box::new(body),
            }
        }
    }

    /// `self ⊳ sys` — the assumption/guarantee operator.
    pub fn while_plus(self, sys: Formula) -> Formula {
        Formula::WhilePlus {
            env: Box::new(self),
            sys: Box::new(sys),
        }
    }

    /// `self -▷ sys` — "`sys` holds as long as `self` does".
    pub fn while_op(self, sys: Formula) -> Formula {
        Formula::While {
            env: Box::new(self),
            sys: Box::new(sys),
        }
    }

    /// `self +sub`.
    pub fn plus(self, sub: Vec<VarId>) -> Formula {
        Formula::Plus {
            body: Box::new(self),
            sub,
        }
    }

    /// `self ⊥ other` — orthogonality.
    pub fn ortho(self, other: Formula) -> Formula {
        Formula::Ortho(Box::new(self), Box::new(other))
    }

    /// `C(self)` — the closure.
    pub fn closure(self) -> Formula {
        Formula::Closure(Box::new(self))
    }

    /// `self ↝ other ≜ □(self ⇒ ◇other)` — leads-to.
    pub fn leads_to(self, other: Formula) -> Formula {
        self.implies(other.eventually()).always()
    }

    // ----- structure -----------------------------------------------------

    /// Collects unprimed and primed variables occurring free in the
    /// formula. Hidden (existentially bound) variables are excluded.
    pub fn vars_into(&self, unprimed: &mut VarSet, primed: &mut VarSet) {
        match self {
            Formula::Pred(e) => e.vars_into(unprimed, primed),
            Formula::ActBox { action, sub } => {
                action.vars_into(unprimed, primed);
                for v in sub {
                    unprimed.insert(*v);
                    primed.insert(*v);
                }
            }
            Formula::Not(f)
            | Formula::Always(f)
            | Formula::Eventually(f)
            | Formula::Closure(f) => f.vars_into(unprimed, primed),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.vars_into(unprimed, primed);
                }
            }
            Formula::Implies(a, b)
            | Formula::Equiv(a, b)
            | Formula::Ortho(a, b) => {
                a.vars_into(unprimed, primed);
                b.vars_into(unprimed, primed);
            }
            Formula::WhilePlus { env, sys } | Formula::While { env, sys } => {
                env.vars_into(unprimed, primed);
                sys.vars_into(unprimed, primed);
            }
            Formula::Plus { body, sub } => {
                body.vars_into(unprimed, primed);
                for v in sub {
                    unprimed.insert(*v);
                    primed.insert(*v);
                }
            }
            Formula::Fair(fair) => {
                fair.action.vars_into(unprimed, primed);
                for v in &fair.sub {
                    unprimed.insert(*v);
                    primed.insert(*v);
                }
            }
            Formula::Exists { vars, body } => {
                let mut u = VarSet::new();
                let mut p = VarSet::new();
                body.vars_into(&mut u, &mut p);
                let bound: VarSet = vars.iter().copied().collect();
                for v in u.iter() {
                    if !bound.contains(v) {
                        unprimed.insert(v);
                    }
                }
                for v in p.iter() {
                    if !bound.contains(v) {
                        primed.insert(v);
                    }
                }
            }
        }
    }

    /// All free variables (primed or unprimed) of the formula.
    pub fn free_vars(&self) -> VarSet {
        let mut u = VarSet::new();
        let mut p = VarSet::new();
        self.vars_into(&mut u, &mut p);
        u.union_with(&p);
        u
    }

    /// Renders the formula with variable names from `vars`.
    pub fn display<'a>(&'a self, vars: &'a Vars) -> FormulaDisplay<'a> {
        FormulaDisplay { formula: self, vars }
    }
}

/// Helper returned by [`Formula::display`].
#[derive(Clone, Copy)]
pub struct FormulaDisplay<'a> {
    formula: &'a Formula,
    vars: &'a Vars,
}

impl fmt::Display for FormulaDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_formula(f, self.formula, self.vars)
    }
}

impl fmt::Debug for FormulaDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

fn write_sub(f: &mut fmt::Formatter<'_>, sub: &[VarId], vars: &Vars) -> fmt::Result {
    write!(f, "⟨")?;
    for (i, v) in sub.iter().enumerate() {
        if i > 0 {
            write!(f, ", ")?;
        }
        if v.index() < vars.len() {
            write!(f, "{}", vars.name(*v))?;
        } else {
            write!(f, "#{}", v.index())?;
        }
    }
    write!(f, "⟩")
}

fn write_formula(f: &mut fmt::Formatter<'_>, fla: &Formula, vars: &Vars) -> fmt::Result {
    match fla {
        Formula::Pred(e) => write!(f, "{}", e.display(vars)),
        Formula::ActBox { action, sub } => {
            write!(f, "□[{}]_", action.display(vars))?;
            write_sub(f, sub, vars)
        }
        Formula::Not(x) => {
            write!(f, "¬")?;
            write_formula(f, x, vars)
        }
        Formula::And(fs) => {
            if fs.is_empty() {
                return write!(f, "TRUE");
            }
            write!(f, "(")?;
            for (i, x) in fs.iter().enumerate() {
                if i > 0 {
                    write!(f, " ∧ ")?;
                }
                write_formula(f, x, vars)?;
            }
            write!(f, ")")
        }
        Formula::Or(fs) => {
            if fs.is_empty() {
                return write!(f, "FALSE");
            }
            write!(f, "(")?;
            for (i, x) in fs.iter().enumerate() {
                if i > 0 {
                    write!(f, " ∨ ")?;
                }
                write_formula(f, x, vars)?;
            }
            write!(f, ")")
        }
        Formula::Implies(a, b) => {
            write!(f, "(")?;
            write_formula(f, a, vars)?;
            write!(f, " ⇒ ")?;
            write_formula(f, b, vars)?;
            write!(f, ")")
        }
        Formula::Equiv(a, b) => {
            write!(f, "(")?;
            write_formula(f, a, vars)?;
            write!(f, " ≡ ")?;
            write_formula(f, b, vars)?;
            write!(f, ")")
        }
        Formula::Always(x) => {
            write!(f, "□")?;
            write_formula(f, x, vars)
        }
        Formula::Eventually(x) => {
            write!(f, "◇")?;
            write_formula(f, x, vars)
        }
        Formula::Fair(fair) => {
            let name = match fair.kind {
                FairnessKind::Weak => "WF",
                FairnessKind::Strong => "SF",
            };
            write!(f, "{name}_")?;
            write_sub(f, &fair.sub, vars)?;
            write!(f, "({})", fair.action.display(vars))
        }
        Formula::Exists { vars: hidden, body } => {
            write!(f, "(∃ ")?;
            for (i, v) in hidden.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                if v.index() < vars.len() {
                    write!(f, "{}", vars.name(*v))?;
                } else {
                    write!(f, "#{}", v.index())?;
                }
            }
            write!(f, " : ")?;
            write_formula(f, body, vars)?;
            write!(f, ")")
        }
        Formula::WhilePlus { env, sys } => {
            write!(f, "(")?;
            write_formula(f, env, vars)?;
            write!(f, " ⊳ ")?;
            write_formula(f, sys, vars)?;
            write!(f, ")")
        }
        Formula::While { env, sys } => {
            write!(f, "(")?;
            write_formula(f, env, vars)?;
            write!(f, " -▷ ")?;
            write_formula(f, sys, vars)?;
            write!(f, ")")
        }
        Formula::Plus { body, sub } => {
            write!(f, "(")?;
            write_formula(f, body, vars)?;
            write!(f, ")+")?;
            write_sub(f, sub, vars)
        }
        Formula::Ortho(a, b) => {
            write!(f, "(")?;
            write_formula(f, a, vars)?;
            write!(f, " ⊥ ")?;
            write_formula(f, b, vars)?;
            write!(f, ")")
        }
        Formula::Closure(x) => {
            write!(f, "C(")?;
            write_formula(f, x, vars)?;
            write!(f, ")")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    fn setup() -> (Vars, VarId, VarId) {
        let mut vars = Vars::new();
        let c = vars.declare("c", Domain::bits());
        let d = vars.declare("d", Domain::bits());
        (vars, c, d)
    }

    #[test]
    fn builders_flatten() {
        let (_, c, _) = setup();
        let p = Formula::pred(Expr::var(c).eq(Expr::int(0)));
        let f = p.clone().and(p.clone()).and(p.clone());
        match &f {
            Formula::And(fs) => assert_eq!(fs.len(), 3),
            other => panic!("expected And, got {other:?}"),
        }
        assert_eq!(Formula::all([p.clone()]), p);
        assert_eq!(Formula::tt(), Formula::And(vec![]));
        assert_eq!(Formula::ff(), Formula::Or(vec![]));
    }

    #[test]
    fn exists_of_nothing_is_identity() {
        let (_, c, _) = setup();
        let p = Formula::pred(Expr::var(c).eq(Expr::int(0)));
        assert_eq!(Formula::exists(vec![], p.clone()), p);
    }

    #[test]
    fn free_vars_respect_hiding() {
        let (_, c, d) = setup();
        let body = Formula::pred(Expr::var(c).eq(Expr::var(d)));
        let f = Formula::exists(vec![d], body);
        let fv = f.free_vars();
        assert!(fv.contains(c));
        assert!(!fv.contains(d));
    }

    #[test]
    fn subscripts_count_as_free() {
        let (_, c, d) = setup();
        let f = Formula::act_box(Expr::prime(c).eq(Expr::var(c)), vec![d]);
        let fv = f.free_vars();
        assert!(fv.contains(c));
        assert!(fv.contains(d));
        let g = Formula::tt().plus(vec![d]);
        assert!(g.free_vars().contains(d));
    }

    #[test]
    fn display_forms() {
        let (vars, c, d) = setup();
        let init = Formula::pred(Expr::var(c).eq(Expr::int(0)));
        let spec = init.and(Formula::act_box(Expr::bool(false), vec![c]));
        assert_eq!(
            spec.display(&vars).to_string(),
            "((c = 0) ∧ □[false]_⟨c⟩)".replace("false", "FALSE")
        );
        let ag = Formula::pred(Expr::var(d).eq(Expr::int(0)))
            .while_plus(Formula::pred(Expr::var(c).eq(Expr::int(0))));
        assert_eq!(ag.display(&vars).to_string(), "((d = 0) ⊳ (c = 0))");
        let wo = Formula::pred(Expr::var(d).eq(Expr::int(0)))
            .while_op(Formula::pred(Expr::var(c).eq(Expr::int(0))));
        assert_eq!(wo.display(&vars).to_string(), "((d = 0) -▷ (c = 0))");
        let wf = Formula::wf(Expr::prime(c).ne(Expr::var(c)), vec![c]);
        assert_eq!(wf.display(&vars).to_string(), "WF_⟨c⟩((c' ≠ c))");
        let cl = Formula::tt().closure();
        assert_eq!(cl.display(&vars).to_string(), "C(TRUE)");
        let pl = Formula::tt().plus(vec![c, d]);
        assert_eq!(pl.display(&vars).to_string(), "(TRUE)+⟨c, d⟩");
        let ex = Formula::exists(vec![d], Formula::pred(Expr::var(d).eq(Expr::int(1))));
        assert_eq!(ex.display(&vars).to_string(), "(∃ d : (d = 1))");
    }

    #[test]
    fn leads_to_desugars() {
        let (_, c, d) = setup();
        let p = Formula::pred(Expr::var(c).eq(Expr::int(1)));
        let q = Formula::pred(Expr::var(d).eq(Expr::int(1)));
        let lt = p.clone().leads_to(q.clone());
        assert_eq!(lt, p.implies(q.eventually()).always());
    }

    #[test]
    fn angle_action_changes_sub() {
        let (_, c, _) = setup();
        let fair = Fairness::weak(Expr::bool(true), vec![c]);
        let angle = fair.angle_action();
        let s = crate::State::new(vec![crate::Value::Int(0), crate::Value::Int(0)]);
        let t = s.with(&[(c, crate::Value::Int(1))]);
        assert!(angle
            .holds_action(crate::StatePair::new(&s, &t))
            .unwrap());
        assert!(!angle
            .holds_action(crate::StatePair::stutter(&s))
            .unwrap());
    }
}
