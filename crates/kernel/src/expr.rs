//! State functions and actions: expressions over primed and unprimed
//! variables.

use crate::{EvalError, State, StatePair, Value, VarId, VarSet, Vars};
use std::fmt;

/// A unary operator.
///
/// [`UnOp::apply`] is the single source of truth for the operator's
/// value semantics, shared by the tree-walking evaluator here and by
/// compiled evaluators built on top of the kernel.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum UnOp {
    /// Boolean negation `¬`.
    Not,
    /// Integer negation.
    Neg,
    /// Sequence/tuple length `|ρ|`.
    Len,
    /// `Head(ρ)`.
    Head,
    /// `Tail(ρ)`.
    Tail,
}

/// A binary operator.
///
/// [`BinOp::apply`] is the single source of truth for the operator's
/// value semantics on already-evaluated operands. Note that `∧`/`∨`
/// are n-ary [`Expr`] nodes, not binary operators, and that
/// [`BinOp::Implies`] *as applied by the evaluator* short-circuits —
/// `apply` is only reached for implications whose antecedent held.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BinOp {
    /// Integer addition.
    Add,
    /// Integer subtraction.
    Sub,
    /// Integer multiplication.
    Mul,
    /// Integer (Euclidean-style truncated) division.
    Div,
    /// Integer remainder.
    Mod,
    /// Equality (on any kind of value).
    Eq,
    /// Inequality.
    Ne,
    /// Integer `<`.
    Lt,
    /// Integer `≤`.
    Le,
    /// Integer `>`.
    Gt,
    /// Integer `≥`.
    Ge,
    /// Boolean implication `⇒`.
    Implies,
    /// Boolean equivalence `≡`.
    Equiv,
    /// Sequence concatenation `ρ ∘ τ`.
    Concat,
}

/// An expression: a state function (if it contains no primes) or an
/// action (if it does).
///
/// Expressions are evaluated against a [`State`] (state functions) or a
/// [`StatePair`] (actions) — see [`Expr::eval_state`] and
/// [`Expr::eval_action`].
///
/// # Example
///
/// ```
/// use opentla_kernel::{Vars, Domain, State, Value, Expr};
/// let mut vars = Vars::new();
/// let x = vars.declare("x", Domain::int_range(0, 3));
/// // The action x' = x + 1.
/// let incr = Expr::prime(x).eq(Expr::var(x).add(Expr::int(1)));
/// let s = State::new(vec![Value::Int(1)]);
/// let t = State::new(vec![Value::Int(2)]);
/// assert!(incr.holds_action(opentla_kernel::StatePair::new(&s, &t)).unwrap());
/// ```
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Expr {
    /// A constant value.
    Const(Value),
    /// An unprimed variable, referring to the current state.
    Var(VarId),
    /// A primed variable, referring to the next state.
    Prime(VarId),
    /// A unary operator application.
    Unary(UnOp, Box<Expr>),
    /// A binary operator application.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// N-ary conjunction; the empty conjunction is `TRUE`.
    And(Vec<Expr>),
    /// N-ary disjunction; the empty disjunction is `FALSE`.
    Or(Vec<Expr>),
    /// `IF c THEN a ELSE b`.
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Tuple construction `⟨e1, …, ek⟩`.
    Tuple(Vec<Expr>),
    /// Sequence construction.
    MkSeq(Vec<Expr>),
    /// Membership in an explicit finite set of values.
    InSet(Box<Expr>, Vec<Value>),
}

impl Expr {
    // ----- constructors -------------------------------------------------

    /// The unprimed variable `v`.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// The primed variable `v'`.
    pub fn prime(v: VarId) -> Expr {
        Expr::Prime(v)
    }

    /// An integer constant.
    pub fn int(i: i64) -> Expr {
        Expr::Const(Value::Int(i))
    }

    /// A boolean constant.
    pub fn bool(b: bool) -> Expr {
        Expr::Const(Value::Bool(b))
    }

    /// An arbitrary constant.
    pub fn con(v: Value) -> Expr {
        Expr::Const(v)
    }

    /// The constant empty sequence `⟨⟩`.
    pub fn empty_seq() -> Expr {
        Expr::Const(Value::empty_seq())
    }

    /// N-ary conjunction, flattening nested conjunctions.
    pub fn all(es: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out = Vec::new();
        for e in es {
            match e {
                Expr::And(inner) => out.extend(inner),
                Expr::Const(Value::Bool(true)) => {}
                other => out.push(other),
            }
        }
        match out.len() {
            1 => out.pop().expect("len checked"),
            _ => Expr::And(out),
        }
    }

    /// N-ary disjunction, flattening nested disjunctions.
    pub fn any(es: impl IntoIterator<Item = Expr>) -> Expr {
        let mut out = Vec::new();
        for e in es {
            match e {
                Expr::Or(inner) => out.extend(inner),
                Expr::Const(Value::Bool(false)) => {}
                other => out.push(other),
            }
        }
        match out.len() {
            1 => out.pop().expect("len checked"),
            _ => Expr::Or(out),
        }
    }

    // ----- combinators ---------------------------------------------------

    /// Boolean negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(self) -> Expr {
        Expr::Unary(UnOp::Not, Box::new(self))
    }

    /// Binary conjunction.
    pub fn and(self, other: Expr) -> Expr {
        Expr::all([self, other])
    }

    /// Binary disjunction.
    pub fn or(self, other: Expr) -> Expr {
        Expr::any([self, other])
    }

    /// Implication `self ⇒ other`.
    pub fn implies(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Implies, Box::new(self), Box::new(other))
    }

    /// Equivalence `self ≡ other`.
    pub fn equiv(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Equiv, Box::new(self), Box::new(other))
    }

    /// Equality.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Eq, Box::new(self), Box::new(other))
    }

    /// Inequality.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Ne, Box::new(self), Box::new(other))
    }

    /// Integer `<`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Lt, Box::new(self), Box::new(other))
    }

    /// Integer `≤`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Le, Box::new(self), Box::new(other))
    }

    /// Integer `>`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Gt, Box::new(self), Box::new(other))
    }

    /// Integer `≥`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Ge, Box::new(self), Box::new(other))
    }

    /// Integer addition.
    ///
    /// A builder combinator (like [`Expr::eq`]), intentionally named
    /// after the operator; `std::ops::Add` is not implemented because
    /// expression construction is infallible while evaluation is not.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Add, Box::new(self), Box::new(other))
    }

    /// Integer subtraction.
    ///
    /// A builder combinator (like [`Expr::eq`]), intentionally named
    /// after the operator; `std::ops::Sub` is not implemented because
    /// expression construction is infallible while evaluation is not.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Sub, Box::new(self), Box::new(other))
    }

    /// Integer multiplication.
    ///
    /// A builder combinator (like [`Expr::eq`]), intentionally named
    /// after the operator; `std::ops::Mul` is not implemented because
    /// expression construction is infallible while evaluation is not.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Mul, Box::new(self), Box::new(other))
    }

    /// Integer division.
    ///
    /// A builder combinator (like [`Expr::eq`]), intentionally named
    /// after the operator; `std::ops::Div` is not implemented because
    /// expression construction is infallible while evaluation is not.
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Div, Box::new(self), Box::new(other))
    }

    /// Integer remainder `self % other`.
    #[allow(clippy::should_implement_trait)]
    pub fn rem(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Mod, Box::new(self), Box::new(other))
    }

    /// `IF self THEN a ELSE b`.
    pub fn ite(self, a: Expr, b: Expr) -> Expr {
        Expr::Ite(Box::new(self), Box::new(a), Box::new(b))
    }

    /// Sequence/tuple length.
    pub fn len(self) -> Expr {
        Expr::Unary(UnOp::Len, Box::new(self))
    }

    /// `Head(self)`.
    pub fn head(self) -> Expr {
        Expr::Unary(UnOp::Head, Box::new(self))
    }

    /// `Tail(self)`.
    pub fn tail(self) -> Expr {
        Expr::Unary(UnOp::Tail, Box::new(self))
    }

    /// Concatenation `self ∘ other`.
    pub fn concat(self, other: Expr) -> Expr {
        Expr::Binary(BinOp::Concat, Box::new(self), Box::new(other))
    }

    /// Membership in a finite set of values.
    pub fn in_set(self, values: impl IntoIterator<Item = Value>) -> Expr {
        Expr::InSet(Box::new(self), values.into_iter().collect())
    }

    // ----- evaluation ----------------------------------------------------

    /// Evaluates a state function on a single state.
    ///
    /// # Errors
    ///
    /// Fails with [`EvalError::PrimeInStateContext`] if the expression
    /// contains a primed variable, and with the usual type errors.
    pub fn eval_state(&self, s: &State) -> Result<Value, EvalError> {
        self.eval(s, None)
    }

    /// Evaluates an action on a pair of states.
    ///
    /// # Errors
    ///
    /// Fails on unbound variables or type mismatches.
    pub fn eval_action(&self, pair: StatePair<'_>) -> Result<Value, EvalError> {
        self.eval(pair.old, Some(pair.new))
    }

    /// Evaluates a boolean state function on a state.
    ///
    /// # Errors
    ///
    /// Fails if evaluation fails or the result is not a boolean.
    pub fn holds_state(&self, s: &State) -> Result<bool, EvalError> {
        expect_bool(self.eval_state(s)?)
    }

    /// Evaluates a boolean action on a pair of states.
    ///
    /// # Errors
    ///
    /// Fails if evaluation fails or the result is not a boolean.
    pub fn holds_action(&self, pair: StatePair<'_>) -> Result<bool, EvalError> {
        expect_bool(self.eval_action(pair)?)
    }

    fn eval(&self, old: &State, new: Option<&State>) -> Result<Value, EvalError> {
        match self {
            Expr::Const(v) => Ok(v.clone()),
            Expr::Var(v) => old
                .try_get(*v)
                .cloned()
                .ok_or(EvalError::UnboundVar {
                    var: *v,
                    state_len: old.len(),
                }),
            Expr::Prime(v) => match new {
                None => Err(EvalError::PrimeInStateContext { var: *v }),
                Some(n) => n.try_get(*v).cloned().ok_or(EvalError::UnboundVar {
                    var: *v,
                    state_len: n.len(),
                }),
            },
            Expr::Unary(op, e) => eval_unary(*op, e.eval(old, new)?),
            // Implication short-circuits (like ∧/∨) so that the
            // consequent may be partial — e.g. `|q| > 0 ⇒ Head(q) = v`.
            Expr::Binary(BinOp::Implies, a, b) => {
                if expect_bool(a.eval(old, new)?)? {
                    Ok(Value::Bool(expect_bool(b.eval(old, new)?)?))
                } else {
                    Ok(Value::Bool(true))
                }
            }
            Expr::Binary(op, a, b) => {
                eval_binary(*op, a.eval(old, new)?, b.eval(old, new)?)
            }
            Expr::And(es) => {
                for e in es {
                    if !expect_bool(e.eval(old, new)?)? {
                        return Ok(Value::Bool(false));
                    }
                }
                Ok(Value::Bool(true))
            }
            Expr::Or(es) => {
                for e in es {
                    if expect_bool(e.eval(old, new)?)? {
                        return Ok(Value::Bool(true));
                    }
                }
                Ok(Value::Bool(false))
            }
            Expr::Ite(c, a, b) => {
                if expect_bool(c.eval(old, new)?)? {
                    a.eval(old, new)
                } else {
                    b.eval(old, new)
                }
            }
            Expr::Tuple(es) => Ok(Value::Tuple(
                es.iter()
                    .map(|e| e.eval(old, new))
                    .collect::<Result<_, _>>()?,
            )),
            Expr::MkSeq(es) => Ok(Value::Seq(
                es.iter()
                    .map(|e| e.eval(old, new))
                    .collect::<Result<_, _>>()?,
            )),
            Expr::InSet(e, set) => {
                let v = e.eval(old, new)?;
                Ok(Value::Bool(set.contains(&v)))
            }
        }
    }

    // ----- structure -----------------------------------------------------

    /// Collects the unprimed and primed variables occurring in the
    /// expression into the two sets.
    pub fn vars_into(&self, unprimed: &mut VarSet, primed: &mut VarSet) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                unprimed.insert(*v);
            }
            Expr::Prime(v) => {
                primed.insert(*v);
            }
            Expr::Unary(_, e) => e.vars_into(unprimed, primed),
            Expr::Binary(_, a, b) => {
                a.vars_into(unprimed, primed);
                b.vars_into(unprimed, primed);
            }
            Expr::And(es) | Expr::Or(es) | Expr::Tuple(es) | Expr::MkSeq(es) => {
                for e in es {
                    e.vars_into(unprimed, primed);
                }
            }
            Expr::Ite(c, a, b) => {
                c.vars_into(unprimed, primed);
                a.vars_into(unprimed, primed);
                b.vars_into(unprimed, primed);
            }
            Expr::InSet(e, _) => e.vars_into(unprimed, primed),
        }
    }

    /// The unprimed variables of the expression.
    pub fn unprimed_vars(&self) -> VarSet {
        let mut u = VarSet::new();
        let mut p = VarSet::new();
        self.vars_into(&mut u, &mut p);
        u
    }

    /// The primed variables of the expression.
    pub fn primed_vars(&self) -> VarSet {
        let mut u = VarSet::new();
        let mut p = VarSet::new();
        self.vars_into(&mut u, &mut p);
        p
    }

    /// All variables, primed or not.
    pub fn all_vars(&self) -> VarSet {
        let mut u = VarSet::new();
        let mut p = VarSet::new();
        self.vars_into(&mut u, &mut p);
        u.union_with(&p);
        u
    }

    /// Whether the expression is a state function (contains no primes).
    pub fn is_state_fn(&self) -> bool {
        self.primed_vars().is_empty()
    }

    /// Renders the expression with variable names from `vars`.
    pub fn display<'a>(&'a self, vars: &'a Vars) -> ExprDisplay<'a> {
        ExprDisplay { expr: self, vars }
    }
}

/// Coerces a value into a boolean, with the evaluator's standard
/// "boolean context" type error. Exposed so compiled evaluators report
/// byte-identical diagnostics.
pub fn expect_bool(v: Value) -> Result<bool, EvalError> {
    v.as_bool().ok_or(EvalError::TypeMismatch {
        op: "boolean context",
        value: v,
    })
}

fn expect_int(op: &'static str, v: Value) -> Result<i64, EvalError> {
    v.as_int()
        .ok_or(EvalError::TypeMismatch { op, value: v })
}

impl UnOp {
    /// Applies the operator to an evaluated operand.
    ///
    /// # Errors
    ///
    /// Type mismatches, overflow, and `Head`/`Tail` of empty sequences.
    pub fn apply(self, v: Value) -> Result<Value, EvalError> {
        eval_unary(self, v)
    }
}

impl BinOp {
    /// Applies the operator to evaluated operands.
    ///
    /// For [`BinOp::Implies`] this is the *non-short-circuit* reading
    /// (both operands already evaluated); evaluators that implement the
    /// short-circuit form must branch before evaluating the consequent,
    /// exactly as [`Expr::eval_state`] does.
    ///
    /// # Errors
    ///
    /// Type mismatches, overflow, and division by zero.
    pub fn apply(self, a: Value, b: Value) -> Result<Value, EvalError> {
        eval_binary(self, a, b)
    }
}

fn eval_unary(op: UnOp, v: Value) -> Result<Value, EvalError> {
    match op {
        UnOp::Not => Ok(Value::Bool(!expect_bool(v)?)),
        UnOp::Neg => Ok(Value::Int(
            expect_int("-", v)?
                .checked_neg()
                .ok_or(EvalError::Overflow { op: "-" })?,
        )),
        UnOp::Len => v
            .len()
            .map(|n| Value::Int(n as i64))
            .ok_or(EvalError::TypeMismatch { op: "Len", value: v }),
        UnOp::Head => match v.as_items() {
            None => Err(EvalError::TypeMismatch {
                op: "Head",
                value: v,
            }),
            Some(_) => v.head().ok_or(EvalError::EmptySeq { op: "Head" }),
        },
        UnOp::Tail => match v.as_items() {
            None => Err(EvalError::TypeMismatch {
                op: "Tail",
                value: v,
            }),
            Some(_) => v.tail().ok_or(EvalError::EmptySeq { op: "Tail" }),
        },
    }
}

fn eval_binary(op: BinOp, a: Value, b: Value) -> Result<Value, EvalError> {
    let int2 = |op_name| -> Result<(i64, i64), EvalError> {
        Ok((expect_int(op_name, a.clone())?, expect_int(op_name, b.clone())?))
    };
    match op {
        BinOp::Add => {
            let (x, y) = int2("+")?;
            Ok(Value::Int(x.checked_add(y).ok_or(EvalError::Overflow { op: "+" })?))
        }
        BinOp::Sub => {
            let (x, y) = int2("-")?;
            Ok(Value::Int(x.checked_sub(y).ok_or(EvalError::Overflow { op: "-" })?))
        }
        BinOp::Mul => {
            let (x, y) = int2("*")?;
            Ok(Value::Int(x.checked_mul(y).ok_or(EvalError::Overflow { op: "*" })?))
        }
        BinOp::Div => {
            let (x, y) = int2("÷")?;
            Ok(Value::Int(x.checked_div(y).ok_or(EvalError::DivisionByZero)?))
        }
        BinOp::Mod => {
            let (x, y) = int2("%")?;
            Ok(Value::Int(x.checked_rem(y).ok_or(EvalError::DivisionByZero)?))
        }
        BinOp::Eq => Ok(Value::Bool(a == b)),
        BinOp::Ne => Ok(Value::Bool(a != b)),
        BinOp::Lt => {
            let (x, y) = int2("<")?;
            Ok(Value::Bool(x < y))
        }
        BinOp::Le => {
            let (x, y) = int2("<=")?;
            Ok(Value::Bool(x <= y))
        }
        BinOp::Gt => {
            let (x, y) = int2(">")?;
            Ok(Value::Bool(x > y))
        }
        BinOp::Ge => {
            let (x, y) = int2(">=")?;
            Ok(Value::Bool(x >= y))
        }
        BinOp::Implies => Ok(Value::Bool(!expect_bool(a)? || expect_bool(b)?)),
        BinOp::Equiv => Ok(Value::Bool(expect_bool(a)? == expect_bool(b)?)),
        BinOp::Concat => a.concat(&b).ok_or(EvalError::TypeMismatch {
            op: "∘",
            value: a,
        }),
    }
}

/// Helper returned by [`Expr::display`].
#[derive(Clone, Copy)]
pub struct ExprDisplay<'a> {
    expr: &'a Expr,
    vars: &'a Vars,
}

impl fmt::Display for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write_expr(f, self.expr, self.vars)
    }
}

impl fmt::Debug for ExprDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

fn write_expr(f: &mut fmt::Formatter<'_>, e: &Expr, vars: &Vars) -> fmt::Result {
    let name = |v: &VarId| -> String {
        if v.index() < vars.len() {
            vars.name(*v).to_string()
        } else {
            format!("#{}", v.index())
        }
    };
    let bin = |f: &mut fmt::Formatter<'_>, sym: &str, a: &Expr, b: &Expr| -> fmt::Result {
        write!(f, "(")?;
        write_expr(f, a, vars)?;
        write!(f, " {sym} ")?;
        write_expr(f, b, vars)?;
        write!(f, ")")
    };
    match e {
        Expr::Const(v) => write!(f, "{v}"),
        Expr::Var(v) => write!(f, "{}", name(v)),
        Expr::Prime(v) => write!(f, "{}'", name(v)),
        Expr::Unary(UnOp::Not, e) => {
            write!(f, "¬")?;
            write_expr(f, e, vars)
        }
        Expr::Unary(UnOp::Neg, e) => {
            write!(f, "-")?;
            write_expr(f, e, vars)
        }
        Expr::Unary(UnOp::Len, e) => {
            write!(f, "Len(")?;
            write_expr(f, e, vars)?;
            write!(f, ")")
        }
        Expr::Unary(UnOp::Head, e) => {
            write!(f, "Head(")?;
            write_expr(f, e, vars)?;
            write!(f, ")")
        }
        Expr::Unary(UnOp::Tail, e) => {
            write!(f, "Tail(")?;
            write_expr(f, e, vars)?;
            write!(f, ")")
        }
        Expr::Binary(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "÷",
                BinOp::Mod => "%",
                BinOp::Eq => "=",
                BinOp::Ne => "≠",
                BinOp::Lt => "<",
                BinOp::Le => "≤",
                BinOp::Gt => ">",
                BinOp::Ge => "≥",
                BinOp::Implies => "⇒",
                BinOp::Equiv => "≡",
                BinOp::Concat => "∘",
            };
            bin(f, sym, a, b)
        }
        Expr::And(es) => write_nary(f, "∧", "TRUE", es, vars),
        Expr::Or(es) => write_nary(f, "∨", "FALSE", es, vars),
        Expr::Ite(c, a, b) => {
            write!(f, "(IF ")?;
            write_expr(f, c, vars)?;
            write!(f, " THEN ")?;
            write_expr(f, a, vars)?;
            write!(f, " ELSE ")?;
            write_expr(f, b, vars)?;
            write!(f, ")")
        }
        Expr::Tuple(es) => {
            write!(f, "⟨")?;
            for (i, e) in es.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_expr(f, e, vars)?;
            }
            write!(f, "⟩")
        }
        Expr::MkSeq(es) => {
            write!(f, "«")?;
            for (i, e) in es.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write_expr(f, e, vars)?;
            }
            write!(f, "»")
        }
        Expr::InSet(e, set) => {
            write_expr(f, e, vars)?;
            write!(f, " ∈ {{")?;
            for (i, v) in set.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            write!(f, "}}")
        }
    }
}

fn write_nary(
    f: &mut fmt::Formatter<'_>,
    sym: &str,
    empty: &str,
    es: &[Expr],
    vars: &Vars,
) -> fmt::Result {
    if es.is_empty() {
        return write!(f, "{empty}");
    }
    write!(f, "(")?;
    for (i, e) in es.iter().enumerate() {
        if i > 0 {
            write!(f, " {sym} ")?;
        }
        write_expr(f, e, vars)?;
    }
    write!(f, ")")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    fn setup() -> (Vars, VarId, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, 3));
        let q = vars.declare("q", Domain::seqs_up_to(&Domain::bits(), 2));
        (vars, x, q)
    }

    fn st(x: i64, q: Value) -> State {
        State::new(vec![Value::Int(x), q])
    }

    #[test]
    fn arithmetic_and_comparison() {
        let (_, x, _) = setup();
        let s = st(2, Value::empty_seq());
        let e = Expr::var(x).add(Expr::int(1)).mul(Expr::int(3));
        assert_eq!(e.eval_state(&s).unwrap(), Value::Int(9));
        assert!(Expr::var(x).lt(Expr::int(3)).holds_state(&s).unwrap());
        assert!(Expr::var(x).ge(Expr::int(2)).holds_state(&s).unwrap());
        assert!(!Expr::var(x).gt(Expr::int(2)).holds_state(&s).unwrap());
        assert!(Expr::var(x).le(Expr::int(2)).holds_state(&s).unwrap());
        assert!(Expr::var(x).ne(Expr::int(0)).holds_state(&s).unwrap());
        let neg = Expr::Unary(UnOp::Neg, Box::new(Expr::var(x)));
        assert_eq!(neg.eval_state(&s).unwrap(), Value::Int(-2));
    }

    #[test]
    fn boolean_operators() {
        let (_, x, _) = setup();
        let s = st(1, Value::empty_seq());
        let p = Expr::var(x).eq(Expr::int(1));
        let q = Expr::var(x).eq(Expr::int(2));
        assert!(p.clone().or(q.clone()).holds_state(&s).unwrap());
        assert!(!p.clone().and(q.clone()).holds_state(&s).unwrap());
        assert!(q.clone().implies(p.clone()).holds_state(&s).unwrap());
        assert!(!p.clone().implies(q.clone()).holds_state(&s).unwrap());
        assert!(!p.clone().equiv(q.clone()).holds_state(&s).unwrap());
        assert!(p.clone().not().equiv(q).holds_state(&s).unwrap());
        // Empty conjunction/disjunction.
        assert!(Expr::And(vec![]).holds_state(&s).unwrap());
        assert!(!Expr::Or(vec![]).holds_state(&s).unwrap());
    }

    #[test]
    fn short_circuit_skips_type_errors() {
        let (_, x, _) = setup();
        let s = st(1, Value::empty_seq());
        // Second conjunct would be a type error (x + 1 is not boolean),
        // but the first conjunct is false.
        let e = Expr::bool(false).and(Expr::var(x).add(Expr::int(1)));
        assert!(!e.holds_state(&s).unwrap());
        let e = Expr::bool(true).or(Expr::var(x).add(Expr::int(1)));
        assert!(e.holds_state(&s).unwrap());
    }

    #[test]
    fn sequence_operators() {
        let (_, _, q) = setup();
        let s = st(0, Value::seq(vec![Value::Int(1), Value::Int(0)]));
        assert_eq!(
            Expr::var(q).len().eval_state(&s).unwrap(),
            Value::Int(2)
        );
        assert_eq!(
            Expr::var(q).head().eval_state(&s).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            Expr::var(q).tail().eval_state(&s).unwrap(),
            Value::seq(vec![Value::Int(0)])
        );
        let app = Expr::var(q).concat(Expr::MkSeq(vec![Expr::int(1)]));
        assert_eq!(
            app.eval_state(&s).unwrap(),
            Value::seq(vec![Value::Int(1), Value::Int(0), Value::Int(1)])
        );
    }

    #[test]
    fn head_of_empty_is_an_error() {
        let (_, _, q) = setup();
        let s = st(0, Value::empty_seq());
        assert_eq!(
            Expr::var(q).head().eval_state(&s),
            Err(EvalError::EmptySeq { op: "Head" })
        );
        assert_eq!(
            Expr::var(q).tail().eval_state(&s),
            Err(EvalError::EmptySeq { op: "Tail" })
        );
    }

    #[test]
    fn primes_require_a_pair() {
        let (_, x, _) = setup();
        let s = st(0, Value::empty_seq());
        let t = st(1, Value::empty_seq());
        let a = Expr::prime(x).eq(Expr::var(x).add(Expr::int(1)));
        assert!(a.holds_action(StatePair::new(&s, &t)).unwrap());
        assert!(!a.holds_action(StatePair::stutter(&s)).unwrap());
        assert!(matches!(
            a.eval_state(&s),
            Err(EvalError::PrimeInStateContext { .. })
        ));
    }

    #[test]
    fn ite_and_in_set() {
        let (_, x, _) = setup();
        let s = st(2, Value::empty_seq());
        let e = Expr::var(x)
            .eq(Expr::int(2))
            .ite(Expr::int(10), Expr::int(20));
        assert_eq!(e.eval_state(&s).unwrap(), Value::Int(10));
        assert!(Expr::var(x)
            .in_set([Value::Int(1), Value::Int(2)])
            .holds_state(&s)
            .unwrap());
        assert!(!Expr::var(x)
            .in_set([Value::Int(0)])
            .holds_state(&s)
            .unwrap());
    }

    #[test]
    fn var_sets() {
        let (_, x, q) = setup();
        let a = Expr::prime(x).eq(Expr::var(q).len());
        assert_eq!(a.unprimed_vars().iter().collect::<Vec<_>>(), vec![q]);
        assert_eq!(a.primed_vars().iter().collect::<Vec<_>>(), vec![x]);
        assert!(!a.is_state_fn());
        assert!(Expr::var(q).len().is_state_fn());
        assert_eq!(a.all_vars().len(), 2);
    }

    #[test]
    fn display_with_names() {
        let (vars, x, q) = setup();
        let e = Expr::prime(x).eq(Expr::var(q).len());
        assert_eq!(e.display(&vars).to_string(), "(x' = Len(q))");
        let e = Expr::all([
            Expr::var(x).eq(Expr::int(0)),
            Expr::var(q).eq(Expr::empty_seq()),
        ]);
        assert_eq!(e.display(&vars).to_string(), "((x = 0) ∧ (q = «»))");
    }

    #[test]
    fn flattening_builders() {
        let (_, x, _) = setup();
        let p = Expr::var(x).eq(Expr::int(0));
        let e = Expr::all([p.clone().and(p.clone()), p.clone()]);
        match &e {
            Expr::And(es) => assert_eq!(es.len(), 3),
            other => panic!("expected flattened And, got {other:?}"),
        }
        // TRUE units are dropped.
        let e = Expr::all([Expr::bool(true), p.clone()]);
        assert_eq!(e, p);
    }

    #[test]
    fn unbound_var_reports_length() {
        let (_, _, q) = setup();
        let short = State::new(vec![Value::Int(0)]);
        assert_eq!(
            Expr::var(q).eval_state(&short),
            Err(EvalError::UnboundVar {
                var: q,
                state_len: 1
            })
        );
    }

    #[test]
    fn div_and_mod() {
        let (_, x, _) = setup();
        let s = st(3, Value::empty_seq());
        assert_eq!(
            Expr::var(x).div(Expr::int(2)).eval_state(&s).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            Expr::var(x).rem(Expr::int(2)).eval_state(&s).unwrap(),
            Value::Int(1)
        );
        assert_eq!(
            Expr::var(x).div(Expr::int(0)).eval_state(&s),
            Err(EvalError::DivisionByZero)
        );
        assert_eq!(
            Expr::var(x).rem(Expr::int(0)).eval_state(&s),
            Err(EvalError::DivisionByZero)
        );
    }

    #[test]
    fn overflow_detected() {
        let (_, x, _) = setup();
        let s = st(1, Value::empty_seq());
        let e = Expr::var(x).add(Expr::int(i64::MAX));
        assert_eq!(e.eval_state(&s), Err(EvalError::Overflow { op: "+" }));
    }
}
