//! Renaming and substitution.
//!
//! Two distinct operations from the paper are mechanized here:
//!
//! * [`Renaming`] — variable-for-variable renaming, used for the
//!   constructions `F[1] ≜ F[z/o, q1/q]` and `F[2] ≜ F[z/i, q2/q]`
//!   (Section A.4). Renaming is applied to *all* occurrences,
//!   including bound ones, which matches the paper's usage (renaming a
//!   hidden variable yields an α-equivalent formula).
//! * [`Substitution`] — replacing variables by *state functions*, used
//!   for refinement mappings (`F̄`, substituting an expression over
//!   concrete variables for a hidden abstract variable).

use crate::formula::Fairness;
use crate::{Expr, Formula, KernelError, VarId, VarSet};
use std::collections::HashMap;

/// Converts a state function into its primed form: every unprimed
/// variable becomes primed.
///
/// # Errors
///
/// Fails with [`KernelError::DoublePrime`] if the expression already
/// contains a primed variable.
pub fn prime_expr(e: &Expr) -> Result<Expr, KernelError> {
    Ok(match e {
        Expr::Const(v) => Expr::Const(v.clone()),
        Expr::Var(v) => Expr::Prime(*v),
        Expr::Prime(v) => return Err(KernelError::DoublePrime { var: *v }),
        Expr::Unary(op, x) => Expr::Unary(*op, Box::new(prime_expr(x)?)),
        Expr::Binary(op, a, b) => {
            Expr::Binary(*op, Box::new(prime_expr(a)?), Box::new(prime_expr(b)?))
        }
        Expr::And(es) => Expr::And(es.iter().map(prime_expr).collect::<Result<_, _>>()?),
        Expr::Or(es) => Expr::Or(es.iter().map(prime_expr).collect::<Result<_, _>>()?),
        Expr::Ite(c, a, b) => Expr::Ite(
            Box::new(prime_expr(c)?),
            Box::new(prime_expr(a)?),
            Box::new(prime_expr(b)?),
        ),
        Expr::Tuple(es) => Expr::Tuple(es.iter().map(prime_expr).collect::<Result<_, _>>()?),
        Expr::MkSeq(es) => Expr::MkSeq(es.iter().map(prime_expr).collect::<Result<_, _>>()?),
        Expr::InSet(x, set) => Expr::InSet(Box::new(prime_expr(x)?), set.clone()),
    })
}

/// A variable-for-variable renaming.
///
/// Unlisted variables are left alone. Renamings apply uniformly to
/// primed and unprimed occurrences, to subscripts, and to bound
/// variables.
///
/// # Example
///
/// ```
/// use opentla_kernel::{Vars, Domain, Expr, Renaming};
/// let mut vars = Vars::new();
/// let o = vars.declare("o", Domain::bits());
/// let z = vars.declare("z", Domain::bits());
/// let r = Renaming::new([(o, z)]);
/// assert_eq!(r.expr(&Expr::prime(o)), Expr::prime(z));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Renaming {
    map: HashMap<VarId, VarId>,
}

impl Renaming {
    /// Builds a renaming from `(from, to)` pairs.
    pub fn new(pairs: impl IntoIterator<Item = (VarId, VarId)>) -> Self {
        Renaming {
            map: pairs.into_iter().collect(),
        }
    }

    /// The image of one variable.
    pub fn var(&self, v: VarId) -> VarId {
        *self.map.get(&v).unwrap_or(&v)
    }

    /// Renames all variables of a subscript tuple.
    pub fn sub(&self, sub: &[VarId]) -> Vec<VarId> {
        sub.iter().map(|v| self.var(*v)).collect()
    }

    /// Applies the renaming to an expression.
    pub fn expr(&self, e: &Expr) -> Expr {
        match e {
            Expr::Const(v) => Expr::Const(v.clone()),
            Expr::Var(v) => Expr::Var(self.var(*v)),
            Expr::Prime(v) => Expr::Prime(self.var(*v)),
            Expr::Unary(op, x) => Expr::Unary(*op, Box::new(self.expr(x))),
            Expr::Binary(op, a, b) => {
                Expr::Binary(*op, Box::new(self.expr(a)), Box::new(self.expr(b)))
            }
            Expr::And(es) => Expr::And(es.iter().map(|x| self.expr(x)).collect()),
            Expr::Or(es) => Expr::Or(es.iter().map(|x| self.expr(x)).collect()),
            Expr::Ite(c, a, b) => Expr::Ite(
                Box::new(self.expr(c)),
                Box::new(self.expr(a)),
                Box::new(self.expr(b)),
            ),
            Expr::Tuple(es) => Expr::Tuple(es.iter().map(|x| self.expr(x)).collect()),
            Expr::MkSeq(es) => Expr::MkSeq(es.iter().map(|x| self.expr(x)).collect()),
            Expr::InSet(x, set) => Expr::InSet(Box::new(self.expr(x)), set.clone()),
        }
    }

    /// Applies the renaming to a formula (including bound variables).
    pub fn formula(&self, f: &Formula) -> Formula {
        match f {
            Formula::Pred(e) => Formula::Pred(self.expr(e)),
            Formula::ActBox { action, sub } => Formula::ActBox {
                action: self.expr(action),
                sub: self.sub(sub),
            },
            Formula::Not(x) => Formula::Not(Box::new(self.formula(x))),
            Formula::And(fs) => Formula::And(fs.iter().map(|x| self.formula(x)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|x| self.formula(x)).collect()),
            Formula::Implies(a, b) => {
                Formula::Implies(Box::new(self.formula(a)), Box::new(self.formula(b)))
            }
            Formula::Equiv(a, b) => {
                Formula::Equiv(Box::new(self.formula(a)), Box::new(self.formula(b)))
            }
            Formula::Always(x) => Formula::Always(Box::new(self.formula(x))),
            Formula::Eventually(x) => Formula::Eventually(Box::new(self.formula(x))),
            Formula::Fair(fair) => Formula::Fair(Fairness {
                kind: fair.kind,
                action: self.expr(&fair.action),
                sub: self.sub(&fair.sub),
            }),
            Formula::Exists { vars, body } => Formula::Exists {
                vars: self.sub(vars),
                body: Box::new(self.formula(body)),
            },
            Formula::WhilePlus { env, sys } => Formula::WhilePlus {
                env: Box::new(self.formula(env)),
                sys: Box::new(self.formula(sys)),
            },
            Formula::While { env, sys } => Formula::While {
                env: Box::new(self.formula(env)),
                sys: Box::new(self.formula(sys)),
            },
            Formula::Plus { body, sub } => Formula::Plus {
                body: Box::new(self.formula(body)),
                sub: self.sub(sub),
            },
            Formula::Ortho(a, b) => {
                Formula::Ortho(Box::new(self.formula(a)), Box::new(self.formula(b)))
            }
            Formula::Closure(x) => Formula::Closure(Box::new(self.formula(x))),
        }
    }
}

/// A substitution of *state functions* for variables — a refinement
/// mapping.
///
/// Substituting into a primed occurrence `x'` yields the primed form of
/// the replacement. Subscript tuples (`□[A]_v`, `WF_v`) are handled by
/// rewriting: the stutter disjunct `v' = v` is expanded so that mapped
/// subscript components become expression equalities, and the subscript
/// is widened to the free variables of the replacements (which
/// preserves the semantics of `[A]_v`).
#[derive(Clone, Debug, Default)]
pub struct Substitution {
    map: HashMap<VarId, Expr>,
}

impl Substitution {
    /// Builds a substitution from `(var, state function)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if a replacement expression contains a primed variable:
    /// refinement mappings are state functions by definition.
    pub fn new(pairs: impl IntoIterator<Item = (VarId, Expr)>) -> Self {
        let map: HashMap<VarId, Expr> = pairs.into_iter().collect();
        for (v, e) in &map {
            assert!(
                e.is_state_fn(),
                "replacement for variable #{} contains primes",
                v.index()
            );
        }
        Substitution { map }
    }

    /// The variables this substitution replaces.
    pub fn domain(&self) -> impl Iterator<Item = VarId> + '_ {
        self.map.keys().copied()
    }

    /// The replacement for `v`, if any.
    pub fn get(&self, v: VarId) -> Option<&Expr> {
        self.map.get(&v)
    }

    /// Applies the substitution to an expression.
    ///
    /// # Errors
    ///
    /// Fails with [`KernelError::DoublePrime`] if a primed occurrence is
    /// replaced by an expression that cannot be primed (impossible for
    /// substitutions built with [`Substitution::new`], which validates).
    pub fn expr(&self, e: &Expr) -> Result<Expr, KernelError> {
        Ok(match e {
            Expr::Const(v) => Expr::Const(v.clone()),
            Expr::Var(v) => match self.map.get(v) {
                Some(rep) => rep.clone(),
                None => Expr::Var(*v),
            },
            Expr::Prime(v) => match self.map.get(v) {
                Some(rep) => prime_expr(rep)?,
                None => Expr::Prime(*v),
            },
            Expr::Unary(op, x) => Expr::Unary(*op, Box::new(self.expr(x)?)),
            Expr::Binary(op, a, b) => {
                Expr::Binary(*op, Box::new(self.expr(a)?), Box::new(self.expr(b)?))
            }
            Expr::And(es) => {
                Expr::And(es.iter().map(|x| self.expr(x)).collect::<Result<_, _>>()?)
            }
            Expr::Or(es) => {
                Expr::Or(es.iter().map(|x| self.expr(x)).collect::<Result<_, _>>()?)
            }
            Expr::Ite(c, a, b) => Expr::Ite(
                Box::new(self.expr(c)?),
                Box::new(self.expr(a)?),
                Box::new(self.expr(b)?),
            ),
            Expr::Tuple(es) => {
                Expr::Tuple(es.iter().map(|x| self.expr(x)).collect::<Result<_, _>>()?)
            }
            Expr::MkSeq(es) => {
                Expr::MkSeq(es.iter().map(|x| self.expr(x)).collect::<Result<_, _>>()?)
            }
            Expr::InSet(x, set) => Expr::InSet(Box::new(self.expr(x)?), set.clone()),
        })
    }

    /// Rewrites a subscript tuple under the substitution.
    ///
    /// Returns the stutter condition (`∧` of equalities `fᵢ' = fᵢ` for
    /// the mapped components) and the widened variable tuple.
    fn rewrite_sub(&self, sub: &[VarId]) -> Result<(Expr, Vec<VarId>), KernelError> {
        let mut eqs = Vec::new();
        let mut new_vars = VarSet::new();
        for v in sub {
            match self.map.get(v) {
                None => {
                    eqs.push(Expr::prime(*v).eq(Expr::var(*v)));
                    new_vars.insert(*v);
                }
                Some(rep) => {
                    eqs.push(prime_expr(rep)?.eq(rep.clone()));
                    new_vars.union_with(&rep.unprimed_vars());
                }
            }
        }
        Ok((Expr::all(eqs), new_vars.iter().collect()))
    }

    /// Applies the substitution to a formula.
    ///
    /// # Errors
    ///
    /// * [`KernelError::Capture`] if a hidden variable of the formula is
    ///   in the substitution's domain or occurs in a replacement.
    /// * [`KernelError::Capture`] if a `+v` subscript component is
    ///   mapped (the `+` operator is eliminated via Proposition 3 before
    ///   refinement mappings are applied; see the `opentla` crate).
    pub fn formula(&self, f: &Formula) -> Result<Formula, KernelError> {
        Ok(match f {
            Formula::Pred(e) => Formula::Pred(self.expr(e)?),
            Formula::ActBox { action, sub } => {
                let (stutter, new_sub) = self.rewrite_sub(sub)?;
                Formula::ActBox {
                    action: Expr::any([self.expr(action)?, stutter]),
                    sub: new_sub,
                }
            }
            Formula::Not(x) => Formula::Not(Box::new(self.formula(x)?)),
            Formula::And(fs) => Formula::And(
                fs.iter()
                    .map(|x| self.formula(x))
                    .collect::<Result<_, _>>()?,
            ),
            Formula::Or(fs) => Formula::Or(
                fs.iter()
                    .map(|x| self.formula(x))
                    .collect::<Result<_, _>>()?,
            ),
            Formula::Implies(a, b) => {
                Formula::Implies(Box::new(self.formula(a)?), Box::new(self.formula(b)?))
            }
            Formula::Equiv(a, b) => {
                Formula::Equiv(Box::new(self.formula(a)?), Box::new(self.formula(b)?))
            }
            Formula::Always(x) => Formula::Always(Box::new(self.formula(x)?)),
            Formula::Eventually(x) => Formula::Eventually(Box::new(self.formula(x)?)),
            Formula::Fair(fair) => {
                // ⟨A⟩_f = A ∧ ¬(f' = f); fold the mapped stutter
                // condition into the action and widen the subscript.
                let (stutter, new_sub) = self.rewrite_sub(&fair.sub)?;
                Formula::Fair(Fairness {
                    kind: fair.kind,
                    action: Expr::all([self.expr(&fair.action)?, stutter.not()]),
                    sub: new_sub,
                })
            }
            Formula::Exists { vars, body } => {
                for v in vars {
                    if self.map.contains_key(v) {
                        return Err(KernelError::Capture { bound: *v });
                    }
                    for rep in self.map.values() {
                        if rep.unprimed_vars().contains(*v) {
                            return Err(KernelError::Capture { bound: *v });
                        }
                    }
                }
                Formula::Exists {
                    vars: vars.clone(),
                    body: Box::new(self.formula(body)?),
                }
            }
            Formula::WhilePlus { env, sys } => Formula::WhilePlus {
                env: Box::new(self.formula(env)?),
                sys: Box::new(self.formula(sys)?),
            },
            Formula::While { env, sys } => Formula::While {
                env: Box::new(self.formula(env)?),
                sys: Box::new(self.formula(sys)?),
            },
            Formula::Plus { body, sub } => {
                for v in sub {
                    if self.map.contains_key(v) {
                        return Err(KernelError::Capture { bound: *v });
                    }
                }
                Formula::Plus {
                    body: Box::new(self.formula(body)?),
                    sub: sub.clone(),
                }
            }
            Formula::Ortho(a, b) => {
                Formula::Ortho(Box::new(self.formula(a)?), Box::new(self.formula(b)?))
            }
            Formula::Closure(x) => Formula::Closure(Box::new(self.formula(x)?)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, State, StatePair, Value, Vars};

    fn setup() -> (Vars, VarId, VarId, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let y = vars.declare("y", Domain::bits());
        let z = vars.declare("z", Domain::bits());
        (vars, x, y, z)
    }

    #[test]
    fn prime_expr_primes_all_vars() {
        let (_, x, y, _) = setup();
        let e = Expr::var(x).add(Expr::var(y));
        let p = prime_expr(&e).unwrap();
        assert_eq!(p, Expr::prime(x).add(Expr::prime(y)));
        assert!(matches!(
            prime_expr(&Expr::prime(x)),
            Err(KernelError::DoublePrime { .. })
        ));
    }

    #[test]
    fn renaming_renames_everywhere() {
        let (_, x, y, z) = setup();
        let r = Renaming::new([(x, z)]);
        let f = Formula::exists(
            vec![x],
            Formula::act_box(Expr::prime(x).eq(Expr::var(y)), vec![x]),
        );
        let g = r.formula(&f);
        assert_eq!(
            g,
            Formula::exists(
                vec![z],
                Formula::act_box(Expr::prime(z).eq(Expr::var(y)), vec![z]),
            )
        );
    }

    #[test]
    fn renaming_identity_outside_domain() {
        let (_, x, y, z) = setup();
        let r = Renaming::new([(x, z)]);
        assert_eq!(r.var(y), y);
        assert_eq!(r.expr(&Expr::var(y)), Expr::var(y));
    }

    #[test]
    fn substitution_on_primes() {
        let (_, x, y, z) = setup();
        // x ↦ y + z; then x' becomes y' + z'.
        let s = Substitution::new([(x, Expr::var(y).add(Expr::var(z)))]);
        let e = s.expr(&Expr::prime(x)).unwrap();
        assert_eq!(e, Expr::prime(y).add(Expr::prime(z)));
    }

    #[test]
    fn substitution_rewrites_subscripts_semantically() {
        let (_, x, y, z) = setup();
        // □[FALSE]_⟨x⟩ says x never changes. Map x ↦ y + z: the result
        // must say y + z never changes.
        let f = Formula::act_box(Expr::bool(false), vec![x]);
        let s = Substitution::new([(x, Expr::var(y).add(Expr::var(z)))]);
        let g = s.formula(&f).unwrap();
        let Formula::ActBox { action, sub } = &g else {
            panic!("expected ActBox, got {g:?}");
        };
        // The widened subscript contains y and z.
        assert!(sub.contains(&y) && sub.contains(&z));
        // Semantics: a step swapping y and z keeps y + z constant, so
        // the rewritten action must accept it.
        let s0 = State::new(vec![Value::Int(0), Value::Int(0), Value::Int(1)]);
        let s1 = State::new(vec![Value::Int(0), Value::Int(1), Value::Int(0)]);
        assert!(action.holds_action(StatePair::new(&s0, &s1)).unwrap());
        // A step changing the sum must be rejected.
        let s2 = State::new(vec![Value::Int(0), Value::Int(1), Value::Int(1)]);
        assert!(!action.holds_action(StatePair::new(&s0, &s2)).unwrap());
    }

    #[test]
    fn substitution_detects_capture() {
        let (_, x, y, z) = setup();
        let f = Formula::exists(vec![y], Formula::pred(Expr::var(x).eq(Expr::var(y))));
        // x ↦ y captures the bound y.
        let s = Substitution::new([(x, Expr::var(y))]);
        assert!(matches!(
            s.formula(&f),
            Err(KernelError::Capture { bound }) if bound == y
        ));
        // Substituting the bound variable itself is also a capture.
        let s = Substitution::new([(y, Expr::var(z))]);
        assert!(matches!(s.formula(&f), Err(KernelError::Capture { .. })));
    }

    #[test]
    #[should_panic(expected = "primes")]
    fn substitution_rejects_primed_replacements() {
        let (_, x, y, _) = setup();
        let _ = Substitution::new([(x, Expr::prime(y))]);
    }

    #[test]
    fn substitution_on_plus_subscript_errors() {
        let (_, x, y, _) = setup();
        let f = Formula::tt().plus(vec![x]);
        let s = Substitution::new([(x, Expr::var(y))]);
        assert!(matches!(s.formula(&f), Err(KernelError::Capture { .. })));
    }

    #[test]
    fn fairness_subscript_rewrite() {
        let (_, x, y, z) = setup();
        let f = Formula::wf(Expr::prime(x).ne(Expr::var(x)), vec![x]);
        let s = Substitution::new([(x, Expr::var(y).add(Expr::var(z)))]);
        let g = s.formula(&f).unwrap();
        let Formula::Fair(fair) = &g else {
            panic!("expected Fair, got {g:?}");
        };
        assert!(fair.sub.contains(&y) && fair.sub.contains(&z));
        // Action must now require the *sum* to change.
        let s0 = State::new(vec![Value::Int(0), Value::Int(0), Value::Int(1)]);
        let s1 = State::new(vec![Value::Int(0), Value::Int(1), Value::Int(0)]);
        assert!(!fair
            .action
            .holds_action(StatePair::new(&s0, &s1))
            .unwrap());
        let s2 = State::new(vec![Value::Int(0), Value::Int(1), Value::Int(1)]);
        assert!(fair
            .action
            .holds_action(StatePair::new(&s0, &s2))
            .unwrap());
    }
}
