//! Iterative strongly-connected-component decomposition.
//!
//! The liveness engines of `opentla-check` repeatedly decompose
//! property-restricted subgraphs into SCCs — once per target, and again
//! inside every Streett (`SF`) recursion step. This module provides the
//! shared machinery: a reusable [`SccScratch`] buffer set and a fully
//! **iterative** (non-recursive, stack-safe) Tarjan driver
//! [`tarjan_sccs_with`] that is generic over how edges are produced and
//! metered, so the checker can thread its budget accounting through
//! without this crate knowing about budgets.
//!
//! The driver's guarantees, which the checker's determinism story leans
//! on:
//!
//! * roots are scanned in ascending node order (`0..n`);
//! * components are emitted in Tarjan **completion order** (the order
//!   their roots finish), each sorted ascending internally;
//! * single nodes form components of their own — callers modeling TLA
//!   behaviors treat every node as carrying an implicit stuttering
//!   self-loop.

/// Sentinel for "node not yet visited" in [`SccScratch`].
const UNVISITED: usize = usize::MAX;

/// Reusable buffers for [`tarjan_sccs_with`].
///
/// A decomposition over `n` nodes needs five `O(n)` buffers; callers
/// that decompose many subgraphs of the same arena (the Streett
/// recursion, the parallel liveness engine's per-worker loops) reuse
/// one scratch instead of reallocating per call.
#[derive(Clone, Debug, Default)]
pub struct SccScratch {
    /// Tarjan discovery index per node (`UNVISITED` = not yet seen).
    index: Vec<usize>,
    /// Low-link value per node.
    low: Vec<usize>,
    /// Is the node currently on the component stack?
    on_stack: Vec<bool>,
    /// The component stack.
    stack: Vec<usize>,
    /// Explicit DFS stack: `(node, next edge position)`.
    dfs: Vec<(usize, usize)>,
}

impl SccScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        SccScratch::default()
    }

    /// Sizes every buffer for `n` nodes and clears previous state.
    fn reset(&mut self, n: usize) {
        self.index.clear();
        self.index.resize(n, UNVISITED);
        self.low.clear();
        self.low.resize(n, 0);
        self.on_stack.clear();
        self.on_stack.resize(n, false);
        self.stack.clear();
        self.dfs.clear();
    }
}

/// Iterative Tarjan SCC decomposition over an implicit graph of `n`
/// nodes, generic over edge production and error/abort type `B`.
///
/// * `node_ok(v)` — is node `v` part of the subgraph? Excluded nodes
///   are neither roots nor targets.
/// * `out_degree(v)` — number of edge slots of `v`; slots are probed in
///   order `0..out_degree(v)`.
/// * `edge(v, i)` — resolve edge slot `i` of `v`: `Ok(Some(t))` if the
///   edge is in the subgraph and leads to (subgraph) node `t`,
///   `Ok(None)` if the slot is filtered out, `Err(b)` to abort the
///   whole decomposition (budget exhaustion, evaluation error). Called
///   exactly once per slot of every visited node, in slot order — the
///   metering hook.
/// * `on_root(root, remaining)` — called once per DFS root before it
///   is expanded, with the root's node id and the number of subgraph
///   nodes not yet visited (including the root itself); returning
///   `Err` aborts. The budget poll site.
/// * `emit(component)` — called once per finished component, in
///   completion order, with the component sorted ascending.
///
/// The DFS is driven by an explicit stack in `scratch` — no recursion,
/// so deep lassos (e.g. a million-state chain) cannot overflow the call
/// stack.
///
/// # Errors
///
/// Whatever `edge` or `on_root` return; the decomposition stops at the
/// first error with `scratch` left in an unspecified (but reusable
/// after the internal reset) state.
pub fn tarjan_sccs_with<B>(
    n: usize,
    scratch: &mut SccScratch,
    node_ok: &dyn Fn(usize) -> bool,
    out_degree: &dyn Fn(usize) -> usize,
    edge: &mut dyn FnMut(usize, usize) -> Result<Option<usize>, B>,
    on_root: &mut dyn FnMut(usize, usize) -> Result<(), B>,
    emit: &mut dyn FnMut(Vec<usize>),
) -> Result<(), B> {
    scratch.reset(n);
    let ok_total = (0..n).filter(|v| node_ok(*v)).count();
    let mut visited = 0usize;
    let mut next_index = 0usize;

    for root in 0..n {
        if !node_ok(root) || scratch.index[root] != UNVISITED {
            continue;
        }
        on_root(root, ok_total - visited)?;
        scratch.dfs.push((root, 0));
        scratch.index[root] = next_index;
        scratch.low[root] = next_index;
        next_index += 1;
        visited += 1;
        scratch.stack.push(root);
        scratch.on_stack[root] = true;
        while let Some((node, pos)) = scratch.dfs.last_mut() {
            let node = *node;
            if *pos < out_degree(node) {
                let i = *pos;
                *pos += 1;
                let Some(t) = edge(node, i)? else {
                    continue;
                };
                if scratch.index[t] == UNVISITED {
                    scratch.index[t] = next_index;
                    scratch.low[t] = next_index;
                    next_index += 1;
                    visited += 1;
                    scratch.stack.push(t);
                    scratch.on_stack[t] = true;
                    scratch.dfs.push((t, 0));
                } else if scratch.on_stack[t] {
                    scratch.low[node] = scratch.low[node].min(scratch.index[t]);
                }
            } else {
                scratch.dfs.pop();
                if let Some((parent, _)) = scratch.dfs.last() {
                    scratch.low[*parent] = scratch.low[*parent].min(scratch.low[node]);
                }
                if scratch.low[node] == scratch.index[node] {
                    let mut comp = Vec::new();
                    loop {
                        let w = scratch.stack.pop().expect("tarjan stack invariant");
                        scratch.on_stack[w] = false;
                        comp.push(w);
                        if w == node {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    emit(comp);
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the driver over an adjacency list with no filtering.
    fn sccs_of(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        let mut scratch = SccScratch::new();
        tarjan_sccs_with::<()>(
            adj.len(),
            &mut scratch,
            &|_| true,
            &|v| adj[v].len(),
            &mut |v, i| Ok(Some(adj[v][i])),
            &mut |_, _| Ok(()),
            &mut |comp| out.push(comp),
        )
        .unwrap();
        out
    }

    #[test]
    fn single_nodes_are_components() {
        // 0 -> 1 -> 2, no cycles: three singleton components, emitted
        // deepest-first (completion order).
        let sccs = sccs_of(&[vec![1], vec![2], vec![]]);
        assert_eq!(sccs, vec![vec![2], vec![1], vec![0]]);
    }

    #[test]
    fn cycle_is_one_component_sorted() {
        // 0 -> 1 -> 2 -> 0 plus a tail 2 -> 3.
        let sccs = sccs_of(&[vec![1], vec![2], vec![0, 3], vec![]]);
        assert_eq!(sccs, vec![vec![3], vec![0, 1, 2]]);
    }

    #[test]
    fn node_filter_excludes_roots_and_targets() {
        // Same cycle, but node 1 is filtered: the cycle breaks apart.
        let adj = [vec![1], vec![2], vec![0, 3], vec![]];
        let mut out = Vec::new();
        let mut scratch = SccScratch::new();
        tarjan_sccs_with::<()>(
            adj.len(),
            &mut scratch,
            &|v| v != 1,
            &|v| adj[v].len(),
            &mut |v, i| {
                let t = adj[v][i];
                Ok((t != 1).then_some(t))
            },
            &mut |_, _| Ok(()),
            &mut |comp| out.push(comp),
        )
        .unwrap();
        // Root 0's only edge is filtered, so it finishes first; root 2
        // then reaches 3 (which completes before it).
        assert_eq!(out, vec![vec![0], vec![3], vec![2]]);
    }

    #[test]
    fn abort_from_edge_hook_propagates() {
        let adj = [vec![1], vec![0]];
        let mut scratch = SccScratch::new();
        let r = tarjan_sccs_with::<&str>(
            adj.len(),
            &mut scratch,
            &|_| true,
            &|v| adj[v].len(),
            &mut |_, _| Err("budget"),
            &mut |_, _| Ok(()),
            &mut |_| {},
        );
        assert_eq!(r.unwrap_err(), "budget");
    }

    #[test]
    fn on_root_counts_remaining_subgraph_nodes() {
        // Two disjoint singletons: the first root sees 2 remaining, the
        // second sees 1; root ids arrive in ascending order.
        let adj = [vec![], vec![]];
        let mut seen = Vec::new();
        let mut scratch = SccScratch::new();
        tarjan_sccs_with::<()>(
            adj.len(),
            &mut scratch,
            &|_| true,
            &|v| adj[v].len(),
            &mut |v, i| Ok(Some(adj[v][i])),
            &mut |root, remaining| {
                seen.push((root, remaining));
                Ok(())
            },
            &mut |_| {},
        )
        .unwrap();
        assert_eq!(seen, vec![(0, 2), (1, 1)]);
    }

    #[test]
    fn deep_chain_is_stack_safe() {
        // A 200k-deep chain would overflow a recursive Tarjan.
        let n = 200_000;
        let adj: Vec<Vec<usize>> = (0..n)
            .map(|v| if v + 1 < n { vec![v + 1] } else { vec![] })
            .collect();
        let sccs = sccs_of(&adj);
        assert_eq!(sccs.len(), n);
        assert_eq!(sccs[0], vec![n - 1]);
    }
}
