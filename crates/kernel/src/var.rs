//! Flexible variables, variable sets, and finite domains.

use crate::Value;
use std::fmt;

/// An interned flexible variable.
///
/// Variables are declared in a [`Vars`] registry, which owns their names
/// and (optional) finite domains; a `VarId` is a cheap copyable handle.
///
/// # Example
///
/// ```
/// use opentla_kernel::{Vars, Domain};
/// let mut vars = Vars::new();
/// let x = vars.declare("x", Domain::bits());
/// assert_eq!(vars.name(x), "x");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(u32);

impl VarId {
    /// The position of this variable in its registry (and in every
    /// [`crate::State`] built against that registry).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VarId({})", self.0)
    }
}

/// A finite, ordered domain of values for a variable.
///
/// Domains drive state enumeration in the model checker and bounded
/// witness search in the semantics engine. The order is the enumeration
/// order, which makes exploration (and therefore counterexamples)
/// deterministic.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Domain {
    values: Vec<Value>,
}

impl Domain {
    /// A domain from an explicit list of values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty or contains duplicates: every
    /// variable must be able to take at least one value, and duplicate
    /// entries would silently skew enumeration counts.
    pub fn new(values: Vec<Value>) -> Self {
        assert!(!values.is_empty(), "domain must be nonempty");
        for (i, v) in values.iter().enumerate() {
            assert!(
                !values[..i].contains(v),
                "domain contains duplicate value {v}"
            );
        }
        Domain { values }
    }

    /// The two-element domain `{0, 1}` used for handshake bits.
    pub fn bits() -> Self {
        Domain::int_range(0, 1)
    }

    /// The boolean domain `{FALSE, TRUE}`.
    pub fn booleans() -> Self {
        Domain::new(vec![Value::Bool(false), Value::Bool(true)])
    }

    /// The integer interval `lo..=hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn int_range(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty integer range {lo}..={hi}");
        Domain::new((lo..=hi).map(Value::Int).collect())
    }

    /// All sequences over `elems` of length at most `max_len`, shortest
    /// first. This is the domain of a bounded queue's content variable.
    pub fn seqs_up_to(elems: &Domain, max_len: usize) -> Self {
        let mut out: Vec<Value> = vec![Value::empty_seq()];
        let mut layer: Vec<Vec<Value>> = vec![vec![]];
        for _ in 0..max_len {
            let mut next = Vec::new();
            for prefix in &layer {
                for e in elems.iter() {
                    let mut s = prefix.clone();
                    s.push(e.clone());
                    out.push(Value::seq(s.clone()));
                    next.push(s);
                }
            }
            layer = next;
        }
        Domain::new(out)
    }

    /// The values of the domain, in enumeration order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Iterates over the values in enumeration order.
    pub fn iter(&self) -> impl Iterator<Item = &Value> {
        self.values.iter()
    }

    /// Number of values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always `false`: domains are nonempty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `v` belongs to the domain.
    pub fn contains(&self, v: &Value) -> bool {
        self.values.contains(v)
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "}}")
    }
}

/// The registry of declared variables: names and domains.
///
/// All states, expressions, and formulas in one verification problem
/// share a single `Vars`; a [`VarId`] indexes into it.
#[derive(Clone, Debug, Default)]
pub struct Vars {
    names: Vec<String>,
    domains: Vec<Domain>,
}

impl Vars {
    /// An empty registry.
    pub fn new() -> Self {
        Vars::default()
    }

    /// Declares a fresh variable with the given name and domain.
    ///
    /// Names are for diagnostics only and need not be unique, though
    /// unique names make counterexamples far easier to read.
    pub fn declare(&mut self, name: impl Into<String>, domain: Domain) -> VarId {
        let id = VarId(u32::try_from(self.names.len()).expect("too many variables"));
        self.names.push(name.into());
        self.domains.push(domain);
        id
    }

    /// The name of a declared variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not declared in this registry.
    pub fn name(&self, v: VarId) -> &str {
        &self.names[v.index()]
    }

    /// The domain of a declared variable.
    ///
    /// # Panics
    ///
    /// Panics if `v` was not declared in this registry.
    pub fn domain(&self, v: VarId) -> &Domain {
        &self.domains[v.index()]
    }

    /// Looks a variable up by name (first match).
    pub fn find(&self, name: &str) -> Option<VarId> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| VarId(i as u32))
    }

    /// Number of declared variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no variables have been declared.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all declared variables.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        (0..self.names.len()).map(|i| VarId(i as u32))
    }

    /// The number of states in the full domain product, if it fits in a
    /// `u128`.
    pub fn state_space_size(&self) -> Option<u128> {
        let mut n: u128 = 1;
        for d in &self.domains {
            n = n.checked_mul(d.len() as u128)?;
        }
        Some(n)
    }
}

/// A set of variables, stored as a bitset.
///
/// Used for free-variable computations and for the tuples of variables
/// that subscript `□[A]_v`, `WF_v`, and `+v`.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct VarSet {
    bits: Vec<u64>,
}

impl VarSet {
    /// The empty set.
    pub fn new() -> Self {
        VarSet::default()
    }

    /// Inserts a variable; returns whether it was newly added.
    pub fn insert(&mut self, v: VarId) -> bool {
        let (w, b) = (v.index() / 64, v.index() % 64);
        if w >= self.bits.len() {
            self.bits.resize(w + 1, 0);
        }
        let newly = self.bits[w] & (1 << b) == 0;
        self.bits[w] |= 1 << b;
        newly
    }

    /// Whether the set contains `v`.
    pub fn contains(&self, v: VarId) -> bool {
        let (w, b) = (v.index() / 64, v.index() % 64);
        self.bits.get(w).is_some_and(|word| word & (1 << b) != 0)
    }

    /// Adds every variable of `other`.
    pub fn union_with(&mut self, other: &VarSet) {
        if other.bits.len() > self.bits.len() {
            self.bits.resize(other.bits.len(), 0);
        }
        for (a, b) in self.bits.iter_mut().zip(&other.bits) {
            *a |= *b;
        }
    }

    /// Whether the two sets share no variable.
    pub fn is_disjoint(&self, other: &VarSet) -> bool {
        self.bits.iter().zip(&other.bits).all(|(a, b)| a & b == 0)
    }

    /// Whether every element of `self` is in `other`.
    pub fn is_subset(&self, other: &VarSet) -> bool {
        self.bits
            .iter()
            .enumerate()
            .all(|(i, a)| a & !other.bits.get(i).copied().unwrap_or(0) == 0)
    }

    /// Number of variables in the set.
    pub fn len(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits.iter().all(|w| *w == 0)
    }

    /// Iterates over the members in index order.
    pub fn iter(&self) -> impl Iterator<Item = VarId> + '_ {
        self.bits.iter().enumerate().flat_map(|(w, word)| {
            (0..64)
                .filter(move |b| word & (1u64 << b) != 0)
                .map(move |b| VarId((w * 64 + b) as u32))
        })
    }
}

impl FromIterator<VarId> for VarSet {
    fn from_iter<I: IntoIterator<Item = VarId>>(iter: I) -> Self {
        let mut s = VarSet::new();
        for v in iter {
            s.insert(v);
        }
        s
    }
}

impl Extend<VarId> for VarSet {
    fn extend<I: IntoIterator<Item = VarId>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

impl fmt::Debug for VarSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter().map(|v| v.index())).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_lookup() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let y = vars.declare("y", Domain::int_range(0, 2));
        assert_eq!(vars.name(x), "x");
        assert_eq!(vars.name(y), "y");
        assert_eq!(vars.find("y"), Some(y));
        assert_eq!(vars.find("z"), None);
        assert_eq!(vars.len(), 2);
        assert_eq!(vars.state_space_size(), Some(6));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn domain_rejects_duplicates() {
        Domain::new(vec![Value::Int(1), Value::Int(1)]);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn domain_rejects_empty() {
        Domain::new(vec![]);
    }

    #[test]
    fn seq_domain_counts() {
        // Sequences over {0,1} of length ≤ 2: ⟨⟩, ⟨0⟩, ⟨1⟩, 4 pairs = 7.
        let d = Domain::seqs_up_to(&Domain::bits(), 2);
        assert_eq!(d.len(), 7);
        assert!(d.contains(&Value::empty_seq()));
        assert!(d.contains(&Value::seq(vec![Value::Int(1), Value::Int(0)])));
        // Shortest-first enumeration order.
        assert_eq!(d.values()[0], Value::empty_seq());
    }

    #[test]
    fn varset_basics() {
        let mut vars = Vars::new();
        let ids: Vec<VarId> = (0..70)
            .map(|i| vars.declare(format!("v{i}"), Domain::bits()))
            .collect();
        let mut s = VarSet::new();
        assert!(s.insert(ids[0]));
        assert!(s.insert(ids[65]));
        assert!(!s.insert(ids[0]));
        assert!(s.contains(ids[65]));
        assert!(!s.contains(ids[64]));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![ids[0], ids[65]]);

        let t: VarSet = [ids[1], ids[64]].into_iter().collect();
        assert!(s.is_disjoint(&t));
        let mut u = s.clone();
        u.union_with(&t);
        assert_eq!(u.len(), 4);
        assert!(s.is_subset(&u));
        assert!(!u.is_subset(&s));
    }

    #[test]
    fn varset_empty() {
        let s = VarSet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.is_disjoint(&VarSet::new()));
        assert!(s.is_subset(&VarSet::new()));
    }
}
