//! Action helpers: `UNCHANGED v`, `[A]_v`, and enabledness support.

use crate::{Expr, VarId, VarSet};

/// The action `UNCHANGED ⟨v1, …, vk⟩`, i.e. `∧ vi' = vi`.
///
/// # Example
///
/// ```
/// use opentla_kernel::{Vars, Domain, State, StatePair, Value, unchanged};
/// let mut vars = Vars::new();
/// let x = vars.declare("x", Domain::bits());
/// let s = State::new(vec![Value::Int(0)]);
/// assert!(unchanged(&[x]).holds_action(StatePair::stutter(&s)).unwrap());
/// ```
pub fn unchanged(vars: &[VarId]) -> Expr {
    Expr::all(
        vars.iter()
            .map(|v| Expr::prime(*v).eq(Expr::var(*v))),
    )
}

/// The action `[A]_v ≜ A ∨ (v' = v)`: an `A` step or a step leaving the
/// tuple `v` unchanged.
pub fn box_action(action: Expr, sub: &[VarId]) -> Expr {
    Expr::any([action, unchanged(sub)])
}

/// The variables whose next-state values matter for deciding whether an
/// action is enabled: its primed variables.
///
/// `Enabled A` holds in state `s` iff some state `t` makes `⟨s,t⟩` an
/// `A` step; since `A` only constrains the primes it mentions, a
/// witness search may vary exactly these variables and copy the rest.
pub fn enabled_vars(action: &Expr) -> VarSet {
    action.primed_vars()
}

/// The primed variables pinned to their current value by a top-level
/// conjunct of the shape `v' = v` (the shape `UNCHANGED` produces).
///
/// Every `A` step `⟨s, t⟩` must satisfy such a conjunct, so `t` agrees
/// with `s` on `v`; a witness search for `Enabled A` may therefore copy
/// these variables from `s` instead of varying them — the restriction
/// loses no witnesses. Actions built with frame conditions prime every
/// declared variable, so without this the search degenerates into an
/// enumeration of (nearly) the whole universe.
pub fn determined_primes(action: &Expr) -> VarSet {
    use crate::{BinOp, Expr as E};
    let mut out = VarSet::new();
    let conjuncts: &[Expr] = match action {
        E::And(cs) => cs,
        single => std::slice::from_ref(single),
    };
    for c in conjuncts {
        if let E::Binary(BinOp::Eq, a, b) = c {
            match (&**a, &**b) {
                (E::Prime(v), E::Var(w)) | (E::Var(w), E::Prime(v)) if v == w => {
                    out.insert(*v);
                }
                _ => {}
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, State, StatePair, Value, Vars};

    fn setup() -> (Vars, VarId, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let y = vars.declare("y", Domain::bits());
        (vars, x, y)
    }

    #[test]
    fn unchanged_tuple() {
        let (_, x, y) = setup();
        let s = State::new(vec![Value::Int(0), Value::Int(0)]);
        let t = s.with(&[(y, Value::Int(1))]);
        assert!(unchanged(&[x]).holds_action(StatePair::new(&s, &t)).unwrap());
        assert!(!unchanged(&[x, y])
            .holds_action(StatePair::new(&s, &t))
            .unwrap());
        // UNCHANGED of the empty tuple is TRUE.
        assert!(unchanged(&[]).holds_action(StatePair::new(&s, &t)).unwrap());
    }

    #[test]
    fn boxed_action_allows_stutter() {
        let (_, x, y) = setup();
        let a = Expr::prime(x).eq(Expr::int(1)).and(Expr::var(x).eq(Expr::int(0)));
        let boxed = box_action(a, &[x]);
        let s = State::new(vec![Value::Int(0), Value::Int(0)]);
        let t = s.with(&[(x, Value::Int(1))]);
        let u = s.with(&[(y, Value::Int(1))]); // x-stutter
        assert!(boxed.holds_action(StatePair::new(&s, &t)).unwrap());
        assert!(boxed.holds_action(StatePair::new(&s, &u)).unwrap());
        assert!(boxed.holds_action(StatePair::stutter(&s)).unwrap());
        // A non-A step that changes x violates [A]_x: here x goes 1 -> 0
        // but A requires x = 0 before the step... build it from t.
        let back = t.with(&[(x, Value::Int(0))]);
        assert!(!boxed.holds_action(StatePair::new(&t, &back)).unwrap());
    }

    #[test]
    fn determined_primes_finds_unchanged_conjuncts() {
        let (_, x, y) = setup();
        // x' = x ∧ y' = y + 1: x is determined, y is not.
        let a = Expr::all([
            Expr::prime(x).eq(Expr::var(x)),
            Expr::prime(y).eq(Expr::var(y).add(Expr::int(1))),
        ]);
        let d = determined_primes(&a);
        assert!(d.contains(x));
        assert!(!d.contains(y));
        // Both orientations of the equality count.
        let flipped = Expr::var(y).eq(Expr::prime(y));
        let d = determined_primes(&flipped);
        assert!(d.contains(y));
        // x' = y is a genuine constraint, not a frame condition.
        let cross = Expr::prime(x).eq(Expr::var(y));
        assert!(determined_primes(&cross).is_empty());
        // A disjunction determines nothing.
        let or = Expr::any([Expr::prime(x).eq(Expr::var(x)), Expr::bool(true)]);
        assert!(determined_primes(&or).is_empty());
    }

    #[test]
    fn enabled_vars_are_the_primes() {
        let (_, x, y) = setup();
        let a = Expr::prime(x).eq(Expr::var(y));
        let vs = enabled_vars(&a);
        assert!(vs.contains(x));
        assert!(!vs.contains(y));
    }
}
