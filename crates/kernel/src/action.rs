//! Action helpers: `UNCHANGED v`, `[A]_v`, and enabledness support.

use crate::{Expr, VarId, VarSet};

/// The action `UNCHANGED ⟨v1, …, vk⟩`, i.e. `∧ vi' = vi`.
///
/// # Example
///
/// ```
/// use opentla_kernel::{Vars, Domain, State, StatePair, Value, unchanged};
/// let mut vars = Vars::new();
/// let x = vars.declare("x", Domain::bits());
/// let s = State::new(vec![Value::Int(0)]);
/// assert!(unchanged(&[x]).holds_action(StatePair::stutter(&s)).unwrap());
/// ```
pub fn unchanged(vars: &[VarId]) -> Expr {
    Expr::all(
        vars.iter()
            .map(|v| Expr::prime(*v).eq(Expr::var(*v))),
    )
}

/// The action `[A]_v ≜ A ∨ (v' = v)`: an `A` step or a step leaving the
/// tuple `v` unchanged.
pub fn box_action(action: Expr, sub: &[VarId]) -> Expr {
    Expr::any([action, unchanged(sub)])
}

/// The variables whose next-state values matter for deciding whether an
/// action is enabled: its primed variables.
///
/// `Enabled A` holds in state `s` iff some state `t` makes `⟨s,t⟩` an
/// `A` step; since `A` only constrains the primes it mentions, a
/// witness search may vary exactly these variables and copy the rest.
pub fn enabled_vars(action: &Expr) -> VarSet {
    action.primed_vars()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Domain, State, StatePair, Value, Vars};

    fn setup() -> (Vars, VarId, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let y = vars.declare("y", Domain::bits());
        (vars, x, y)
    }

    #[test]
    fn unchanged_tuple() {
        let (_, x, y) = setup();
        let s = State::new(vec![Value::Int(0), Value::Int(0)]);
        let t = s.with(&[(y, Value::Int(1))]);
        assert!(unchanged(&[x]).holds_action(StatePair::new(&s, &t)).unwrap());
        assert!(!unchanged(&[x, y])
            .holds_action(StatePair::new(&s, &t))
            .unwrap());
        // UNCHANGED of the empty tuple is TRUE.
        assert!(unchanged(&[]).holds_action(StatePair::new(&s, &t)).unwrap());
    }

    #[test]
    fn boxed_action_allows_stutter() {
        let (_, x, y) = setup();
        let a = Expr::prime(x).eq(Expr::int(1)).and(Expr::var(x).eq(Expr::int(0)));
        let boxed = box_action(a, &[x]);
        let s = State::new(vec![Value::Int(0), Value::Int(0)]);
        let t = s.with(&[(x, Value::Int(1))]);
        let u = s.with(&[(y, Value::Int(1))]); // x-stutter
        assert!(boxed.holds_action(StatePair::new(&s, &t)).unwrap());
        assert!(boxed.holds_action(StatePair::new(&s, &u)).unwrap());
        assert!(boxed.holds_action(StatePair::stutter(&s)).unwrap());
        // A non-A step that changes x violates [A]_x: here x goes 1 -> 0
        // but A requires x = 0 before the step... build it from t.
        let back = t.with(&[(x, Value::Int(0))]);
        assert!(!boxed.holds_action(StatePair::new(&t, &back)).unwrap());
    }

    #[test]
    fn enabled_vars_are_the_primes() {
        let (_, x, y) = setup();
        let a = Expr::prime(x).eq(Expr::var(y));
        let vs = enabled_vars(&a);
        assert!(vs.contains(x));
        assert!(!vs.contains(y));
    }
}
