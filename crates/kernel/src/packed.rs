//! Packed state layouts: fixed-width bit slots compiled from declared
//! variable domains.
//!
//! A [`PackedLayout`] assigns every variable a contiguous run of bits
//! wide enough to index its (finite, declared) domain: a variable over
//! a `k`-value domain gets `⌈log₂ k⌉` bits holding the value's *index*
//! in the domain's canonical value list (singleton domains get zero
//! bits). States then pack into a flat `⌈Σ widths / 8⌉`-byte buffer —
//! no heap `Value` trees, no per-slot allocation — and the explorer
//! can store, hash, and deduplicate millions of them as plain byte
//! runs in an arena.
//!
//! Two properties make the packed path a drop-in replacement for the
//! `Value`-tree path rather than a parallel universe:
//!
//! 1. **Round trip**: `unpack(pack(s)) == s` for every state whose
//!    values all lie in their declared domains (packing is injective
//!    on in-domain states, so exact-mode deduplication may key on the
//!    packed bytes directly).
//! 2. **Fingerprint equality**: [`PackedLayout::fingerprint`] over the
//!    packed bytes equals [`State::fingerprint`] over the tree, *bit
//!    for bit*. The layout pre-computes a Zobrist table
//!    `z[slot][code] = slot_fingerprint(slot, domain[slot][code])`
//!    from the same per-slot hash the tree path uses, so the packed
//!    engine inherits the collision-soundness bound unchanged — it is
//!    the same hash function, evaluated through a table.
//!
//! [`PackedLayout::compile`] returns `None` when a layout is not
//! worthwhile or not possible (domains too large to tabulate, or a
//! state too wide to pack); callers fall back to the `Value`-tree
//! path. The current in-repo `Vars` builder only declares finite
//! explicit domains, so compilation virtually always succeeds, but
//! the fallback keeps the engine honest about the contract.

use crate::state::{slot_fingerprint, State};
use crate::value::Value;
use crate::var::Vars;
use fxhash::FxHashMap;

/// Cap on the total packed width of one state, in bits. A state wider
/// than this (4 KiB packed) is past the point where packing pays.
const MAX_STATE_BITS: usize = 1 << 15;

/// Cap on the total number of tabulated `(slot, code)` Zobrist
/// entries across all slots. Each entry costs 8 bytes plus a decode
/// `Value`; past ~4M entries the tables stop fitting hot caches.
const MAX_TOTAL_CODES: usize = 1 << 22;

/// How a slot maps a `Value` to its domain index without a table
/// probe when the domain has recognizable structure.
enum SlotCodec {
    /// The domain is `lo, lo+1, …, lo+k-1` in order: code is `v - lo`.
    IntRange {
        /// First integer of the range.
        lo: i64,
    },
    /// Arbitrary finite domain: code via hash table.
    Table(FxHashMap<Value, u32>),
}

/// One variable's slot in the packed buffer.
struct Slot {
    /// First bit of the slot, counting little-endian from byte 0.
    offset: u32,
    /// Width in bits; `0` for singleton domains.
    width: u32,
    /// Encoder from `Value` to domain index.
    codec: SlotCodec,
}

/// A compiled fixed-width bit layout for the states of one `Vars`
/// declaration. See the module docs for the contract.
pub struct PackedLayout {
    slots: Vec<Slot>,
    /// Packed size of one state, in bytes.
    stride: usize,
    /// `zobrist[slot][code]` = the tree path's slot hash of the
    /// decoded value, so packed and tree fingerprints agree exactly.
    zobrist: Vec<Vec<u64>>,
    /// `decode[slot][code]` = the domain value, for unpacking.
    decode: Vec<Vec<Value>>,
}

impl PackedLayout {
    /// Compiles a layout from declared domains, or `None` when the
    /// state space is too wide to pack or too large to tabulate.
    pub fn compile(vars: &Vars) -> Option<PackedLayout> {
        let mut slots = Vec::with_capacity(vars.len());
        let mut zobrist = Vec::with_capacity(vars.len());
        let mut decode = Vec::with_capacity(vars.len());
        let mut offset = 0usize;
        let mut total_codes = 0usize;
        for v in vars.iter() {
            let values = vars.domain(v).values();
            total_codes += values.len();
            if total_codes > MAX_TOTAL_CODES {
                return None;
            }
            let width = if values.len() <= 1 {
                0
            } else {
                usize::BITS - (values.len() - 1).leading_zeros()
            };
            let codec = match int_range_lo(values) {
                Some(lo) => SlotCodec::IntRange { lo },
                None => SlotCodec::Table(
                    values
                        .iter()
                        .enumerate()
                        .map(|(code, val)| (val.clone(), code as u32))
                        .collect(),
                ),
            };
            slots.push(Slot {
                offset: u32::try_from(offset).ok()?,
                width,
                codec,
            });
            zobrist.push(
                values
                    .iter()
                    .map(|val| slot_fingerprint(v.index(), val))
                    .collect(),
            );
            decode.push(values.to_vec());
            offset += width as usize;
            if offset > MAX_STATE_BITS {
                return None;
            }
        }
        Some(PackedLayout {
            slots,
            stride: offset.div_ceil(8),
            zobrist,
            decode,
        })
    }

    /// Packed size of one state, in bytes. Zero-variable systems pack
    /// to zero bytes.
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Number of variable slots (equals the `Vars` arity).
    pub fn slots(&self) -> usize {
        self.slots.len()
    }

    /// Total packed width of one state, in bits.
    pub fn state_bits(&self) -> usize {
        self.slots
            .iter()
            .map(|s| s.width as usize)
            .sum()
    }

    /// The domain index of `value` in `slot`, or `None` when the
    /// value is outside the declared domain.
    pub fn code_of(&self, slot: usize, value: &Value) -> Option<u32> {
        let n = self.decode[slot].len() as u32;
        match &self.slots[slot].codec {
            SlotCodec::IntRange { lo } => match value {
                Value::Int(i) => {
                    let code = u32::try_from(i.checked_sub(*lo)?).ok()?;
                    (code < n).then_some(code)
                }
                _ => None,
            },
            SlotCodec::Table(map) => map.get(value).copied(),
        }
    }

    /// The domain value decoded from a slot code.
    ///
    /// Panics when `code` is out of range for the slot — packed
    /// buffers produced by [`pack_into`](Self::pack_into) and
    /// [`write_code`](Self::write_code) never contain such codes.
    pub fn value_of(&self, slot: usize, code: u32) -> &Value {
        &self.decode[slot][code as usize]
    }

    /// Reads the code stored in `slot` of a packed buffer.
    pub fn read_code(&self, buf: &[u8], slot: usize) -> u32 {
        let s = &self.slots[slot];
        let (mut byte, mut bit) = ((s.offset / 8) as usize, s.offset % 8);
        let mut acc = 0u32;
        let mut got = 0u32;
        while got < s.width {
            let take = (8 - bit).min(s.width - got);
            let bits = (buf[byte] >> bit) as u32 & ((1u32 << take) - 1);
            acc |= bits << got;
            got += take;
            byte += 1;
            bit = 0;
        }
        acc
    }

    /// Writes `code` into `slot` of a packed buffer, clearing the
    /// slot's previous bits.
    pub fn write_code(&self, buf: &mut [u8], slot: usize, code: u32) {
        let s = &self.slots[slot];
        debug_assert!(s.width == 32 || code < (1u32 << s.width));
        let (mut byte, mut bit) = ((s.offset / 8) as usize, s.offset % 8);
        let mut rest = code;
        let mut put = 0u32;
        while put < s.width {
            let take = (8 - bit).min(s.width - put);
            let mask = ((1u32 << take) - 1) as u8;
            buf[byte] = (buf[byte] & !(mask << bit)) | (((rest as u8) & mask) << bit);
            rest >>= take;
            put += take;
            byte += 1;
            bit = 0;
        }
    }

    /// Packs `values` into `buf` (cleared and resized to one stride).
    /// Returns `false` — leaving `buf` unspecified — when any value
    /// is outside its declared domain.
    pub fn pack_into(&self, values: &[Value], buf: &mut Vec<u8>) -> bool {
        buf.clear();
        buf.resize(self.stride, 0);
        if values.len() != self.slots.len() {
            return false;
        }
        for (slot, value) in values.iter().enumerate() {
            match self.code_of(slot, value) {
                Some(code) => self.write_code(buf, slot, code),
                None => return false,
            }
        }
        true
    }

    /// Packs a state, or `None` when a value is outside its domain.
    pub fn pack(&self, s: &State) -> Option<Vec<u8>> {
        let mut buf = Vec::with_capacity(self.stride);
        self.pack_into(s.values(), &mut buf).then_some(buf)
    }

    /// Unpacks one packed state into `out` (cleared first).
    pub fn unpack_into(&self, buf: &[u8], out: &mut Vec<Value>) {
        out.clear();
        out.reserve(self.slots.len());
        for slot in 0..self.slots.len() {
            let code = self.read_code(buf, slot);
            out.push(self.decode[slot][code as usize].clone());
        }
    }

    /// Unpacks one packed state into a fresh [`State`].
    pub fn unpack(&self, buf: &[u8]) -> State {
        let mut values = Vec::new();
        self.unpack_into(buf, &mut values);
        State::new(values)
    }

    /// The Zobrist fingerprint of a packed state — exactly equal to
    /// [`State::fingerprint`] of the unpacked state.
    pub fn fingerprint(&self, buf: &[u8]) -> u64 {
        (0..self.slots.len())
            .fold(0, |fp, slot| {
                fp ^ self.zobrist[slot][self.read_code(buf, slot) as usize]
            })
    }

    /// The fingerprint change from rewriting `slot` from `old` to
    /// `new`: `fp' = fp ^ delta`. Zero when the codes are equal.
    pub fn fingerprint_delta(&self, slot: usize, old: u32, new: u32) -> u64 {
        self.zobrist[slot][old as usize] ^ self.zobrist[slot][new as usize]
    }
}

/// `Some(lo)` when `values` is exactly `lo, lo+1, …` in order.
fn int_range_lo(values: &[Value]) -> Option<i64> {
    let Some(Value::Int(lo)) = values.first() else {
        return None;
    };
    values
        .iter()
        .enumerate()
        .all(|(i, v)| matches!(v, Value::Int(x) if *x == lo.wrapping_add(i as i64)))
        .then_some(*lo)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::Domain;

    fn mixed_vars() -> Vars {
        let mut vars = Vars::new();
        vars.declare("b", Domain::booleans());
        vars.declare("i", Domain::int_range(-3, 9));
        vars.declare("one", Domain::new(vec![Value::str("only")]));
        vars.declare(
            "s",
            Domain::new(vec![
                Value::str("red"),
                Value::str("green"),
                Value::str("blue"),
            ]),
        );
        vars.declare("w", Domain::int_range(0, 300));
        vars
    }

    fn all_states(vars: &Vars) -> Vec<State> {
        let mut states = vec![Vec::new()];
        for v in vars.iter() {
            let mut next = Vec::new();
            for prefix in &states {
                for val in vars.domain(v).iter() {
                    let mut s = prefix.clone();
                    s.push(val.clone());
                    next.push(s);
                }
            }
            states = next;
        }
        states.into_iter().map(State::new).collect()
    }

    #[test]
    fn round_trip_and_fingerprint_over_full_space() {
        let vars = mixed_vars();
        let layout = PackedLayout::compile(&vars).expect("finite domains compile");
        // 1 + 4 + 0 + 2 + 9 bits = 16 bits = 2 bytes.
        assert_eq!(layout.state_bits(), 16);
        assert_eq!(layout.stride(), 2);
        let mut buf = Vec::new();
        for s in all_states(&vars) {
            assert!(layout.pack_into(s.values(), &mut buf));
            assert_eq!(layout.unpack(&buf), s, "round trip of {s:?}");
            assert_eq!(
                layout.fingerprint(&buf),
                s.fingerprint(),
                "packed fingerprint of {s:?}"
            );
        }
    }

    #[test]
    fn incremental_delta_matches_full_fingerprint() {
        let vars = mixed_vars();
        let layout = PackedLayout::compile(&vars).expect("compiles");
        let s = State::new(vec![
            Value::Bool(true),
            Value::Int(4),
            Value::str("only"),
            Value::str("green"),
            Value::Int(211),
        ]);
        let mut buf = layout.pack(&s).expect("in-domain");
        let fp = layout.fingerprint(&buf);
        // Rewrite slot 1 (i: 4 → -3) and slot 3 (s: green → blue).
        for (slot, val) in [(1usize, Value::Int(-3)), (3, Value::str("blue"))] {
            let old = layout.read_code(&buf, slot);
            let new = layout.code_of(slot, &val).expect("in-domain");
            let delta = layout.fingerprint_delta(slot, old, new);
            layout.write_code(&mut buf, slot, new);
            let expect = layout.fingerprint(&buf);
            assert_eq!(fp ^ delta, expect, "delta for slot {slot} wrong");
            layout.write_code(&mut buf, slot, old);
        }
    }

    #[test]
    fn out_of_domain_values_refuse_to_pack() {
        let vars = mixed_vars();
        let layout = PackedLayout::compile(&vars).expect("compiles");
        let bad = State::new(vec![
            Value::Bool(true),
            Value::Int(10), // outside -3..=9
            Value::str("only"),
            Value::str("green"),
            Value::Int(0),
        ]);
        assert!(layout.pack(&bad).is_none());
        assert_eq!(layout.code_of(1, &Value::Int(-4)), None);
        assert_eq!(layout.code_of(3, &Value::str("mauve")), None);
    }

    #[test]
    fn singleton_slots_take_no_bits() {
        let mut vars = Vars::new();
        vars.declare("a", Domain::new(vec![Value::Int(7)]));
        vars.declare("b", Domain::new(vec![Value::Bool(false)]));
        let layout = PackedLayout::compile(&vars).expect("compiles");
        assert_eq!(layout.state_bits(), 0);
        assert_eq!(layout.stride(), 0);
        let s = State::new(vec![Value::Int(7), Value::Bool(false)]);
        let buf = layout.pack(&s).expect("in-domain");
        assert!(buf.is_empty());
        assert_eq!(layout.unpack(&buf), s);
        assert_eq!(layout.fingerprint(&buf), s.fingerprint());
    }

    #[test]
    fn oversized_state_declines_to_compile() {
        let mut vars = Vars::new();
        // 4096 ten-bit variables exceed the 32768-bit state cap.
        for i in 0..4096 {
            vars.declare(format!("v{i}"), Domain::int_range(0, 1000));
        }
        assert!(PackedLayout::compile(&vars).is_none());
    }

    #[test]
    fn structured_values_pack_via_table_codec() {
        let mut vars = Vars::new();
        let q = vars.declare("q", Domain::seqs_up_to(&Domain::booleans(), 2));
        let layout = PackedLayout::compile(&vars).expect("compiles");
        let mut buf = Vec::new();
        for val in vars.domain(q).iter() {
            let s = State::new(vec![val.clone()]);
            assert!(layout.pack_into(s.values(), &mut buf));
            assert_eq!(layout.unpack(&buf), s);
            assert_eq!(layout.fingerprint(&buf), s.fingerprint());
        }
    }
}
