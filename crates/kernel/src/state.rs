//! States: assignments of values to variables.

use crate::{Value, VarId, Vars};
use std::fmt;
use std::sync::Arc;

/// A state — an assignment of a [`Value`] to every declared variable.
///
/// States are immutable and cheap to clone (the payload is shared via
/// [`Arc`]); updated copies are produced with [`State::with`].
///
/// # Example
///
/// ```
/// use opentla_kernel::{Vars, Domain, State, Value};
/// let mut vars = Vars::new();
/// let x = vars.declare("x", Domain::bits());
/// let y = vars.declare("y", Domain::bits());
/// let s = State::new(vec![Value::Int(0), Value::Int(1)]);
/// assert_eq!(s.get(x), &Value::Int(0));
/// let t = s.with(&[(x, Value::Int(1))]);
/// assert_eq!(t.get(x), &Value::Int(1));
/// assert_eq!(t.get(y), &Value::Int(1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct State {
    values: Arc<[Value]>,
}

impl State {
    /// Builds a state from the values of all variables, in declaration
    /// order.
    pub fn new(values: impl Into<Arc<[Value]>>) -> Self {
        State {
            values: values.into(),
        }
    }

    /// The value of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for this state; use
    /// [`State::try_get`] for a fallible lookup.
    pub fn get(&self, v: VarId) -> &Value {
        &self.values[v.index()]
    }

    /// The value of variable `v`, or `None` if out of range.
    pub fn try_get(&self, v: VarId) -> Option<&Value> {
        self.values.get(v.index())
    }

    /// Number of variables this state assigns.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the state assigns no variables (a closed system over an
    /// empty registry).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All values in declaration order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// A copy of this state with the listed variables reassigned.
    pub fn with(&self, updates: &[(VarId, Value)]) -> State {
        let mut values: Vec<Value> = self.values.to_vec();
        for (v, val) in updates {
            values[v.index()] = val.clone();
        }
        State::new(values)
    }

    /// Whether the listed variables have equal values in `self` and
    /// `other` — the "`v` unchanged" test for a step.
    pub fn agrees_with(&self, other: &State, vars: &[VarId]) -> bool {
        vars.iter().all(|v| self.get(*v) == other.get(*v))
    }

    /// Renders the state with variable names from `vars`.
    pub fn display<'a>(&'a self, vars: &'a Vars) -> StateDisplay<'a> {
        StateDisplay { state: self, vars }
    }
}

impl fmt::Debug for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Helper returned by [`State::display`]; renders `x=0 y=1 …`.
#[derive(Clone, Copy)]
pub struct StateDisplay<'a> {
    state: &'a State,
    vars: &'a Vars,
}

impl fmt::Display for StateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for v in self.vars.iter() {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match self.state.try_get(v) {
                Some(val) => write!(f, "{}={}", self.vars.name(v), val)?,
                None => write!(f, "{}=?", self.vars.name(v))?,
            }
        }
        Ok(())
    }
}

impl fmt::Debug for StateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A pair of consecutive states — what an action is evaluated against.
///
/// `old` is the unprimed state, `new` the primed one.
#[derive(Clone, Copy, Debug)]
pub struct StatePair<'a> {
    /// The unprimed (current) state.
    pub old: &'a State,
    /// The primed (next) state.
    pub new: &'a State,
}

impl<'a> StatePair<'a> {
    /// Builds a pair from two states.
    pub fn new(old: &'a State, new: &'a State) -> Self {
        StatePair { old, new }
    }

    /// The stuttering pair `⟨s, s⟩`.
    pub fn stutter(s: &'a State) -> Self {
        StatePair { old: s, new: s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    fn three_vars() -> (Vars, VarId, VarId, VarId) {
        let mut vars = Vars::new();
        let a = vars.declare("a", Domain::bits());
        let b = vars.declare("b", Domain::bits());
        let c = vars.declare("c", Domain::bits());
        (vars, a, b, c)
    }

    #[test]
    fn with_updates_only_listed_vars() {
        let (_, a, b, c) = three_vars();
        let s = State::new(vec![Value::Int(0), Value::Int(0), Value::Int(0)]);
        let t = s.with(&[(b, Value::Int(1))]);
        assert_eq!(t.get(a), &Value::Int(0));
        assert_eq!(t.get(b), &Value::Int(1));
        assert_eq!(t.get(c), &Value::Int(0));
        // Original untouched.
        assert_eq!(s.get(b), &Value::Int(0));
    }

    #[test]
    fn agrees_with_checks_subtuple() {
        let (_, a, b, c) = three_vars();
        let s = State::new(vec![Value::Int(0), Value::Int(0), Value::Int(0)]);
        let t = s.with(&[(c, Value::Int(1))]);
        assert!(s.agrees_with(&t, &[a, b]));
        assert!(!s.agrees_with(&t, &[a, c]));
        assert!(s.agrees_with(&t, &[]));
    }

    #[test]
    fn display_uses_names() {
        let (vars, _, _, _) = three_vars();
        let s = State::new(vec![Value::Int(0), Value::Int(1), Value::Int(0)]);
        assert_eq!(s.display(&vars).to_string(), "a=0 b=1 c=0");
    }

    #[test]
    fn try_get_out_of_range() {
        let (_, _, _, c) = three_vars();
        let short = State::new(vec![Value::Int(0)]);
        assert_eq!(short.try_get(c), None);
        assert_eq!(short.len(), 1);
        assert!(!short.is_empty());
    }

    #[test]
    fn states_hashable_and_equal_by_value() {
        let s = State::new(vec![Value::Int(0)]);
        let t = State::new(vec![Value::Int(0)]);
        assert_eq!(s, t);
        let mut set = std::collections::HashSet::new();
        set.insert(s);
        assert!(set.contains(&t));
    }
}
