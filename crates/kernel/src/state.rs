//! States: assignments of values to variables.

use crate::{Value, VarId, Vars};
use std::fmt;
use std::sync::Arc;

/// A state — an assignment of a [`Value`] to every declared variable.
///
/// States are immutable and cheap to clone (the payload is shared via
/// [`Arc`]); updated copies are produced with [`State::with`].
///
/// # Example
///
/// ```
/// use opentla_kernel::{Vars, Domain, State, Value};
/// let mut vars = Vars::new();
/// let x = vars.declare("x", Domain::bits());
/// let y = vars.declare("y", Domain::bits());
/// let s = State::new(vec![Value::Int(0), Value::Int(1)]);
/// assert_eq!(s.get(x), &Value::Int(0));
/// let t = s.with(&[(x, Value::Int(1))]);
/// assert_eq!(t.get(x), &Value::Int(1));
/// assert_eq!(t.get(y), &Value::Int(1));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct State {
    values: Arc<[Value]>,
}

impl State {
    /// Builds a state from the values of all variables, in declaration
    /// order.
    pub fn new(values: impl Into<Arc<[Value]>>) -> Self {
        State {
            values: values.into(),
        }
    }

    /// The value of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for this state; use
    /// [`State::try_get`] for a fallible lookup.
    pub fn get(&self, v: VarId) -> &Value {
        &self.values[v.index()]
    }

    /// The value of variable `v`, or `None` if out of range.
    pub fn try_get(&self, v: VarId) -> Option<&Value> {
        self.values.get(v.index())
    }

    /// Number of variables this state assigns.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the state assigns no variables (a closed system over an
    /// empty registry).
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All values in declaration order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// A copy of this state with the listed variables reassigned.
    pub fn with(&self, updates: &[(VarId, Value)]) -> State {
        let mut values: Vec<Value> = self.values.to_vec();
        for (v, val) in updates {
            values[v.index()] = val.clone();
        }
        State::new(values)
    }

    /// Whether the listed variables have equal values in `self` and
    /// `other` — the "`v` unchanged" test for a step.
    pub fn agrees_with(&self, other: &State, vars: &[VarId]) -> bool {
        vars.iter().all(|v| self.get(*v) == other.get(*v))
    }

    /// A 64-bit fingerprint of the state: the XOR of one fast
    /// non-cryptographic hash per `(slot index, value)` pair — the
    /// Zobrist construction, chosen so that [`State::fingerprint_with`]
    /// can update a fingerprint incrementally from an action's deltas
    /// instead of rehashing the whole state.
    ///
    /// Equal states always have equal fingerprints; the converse can
    /// fail with probability ≈ `n²/2⁶⁵` for `n` distinct states
    /// (birthday bound), which is what makes TLC-style fingerprint
    /// visited-sets sound only as an *under*-approximation — see the
    /// exploration engine's documentation. Fingerprints are stable
    /// within a process run; they are not a serialization format, and
    /// (like TLC's) they are not collision-resistant against
    /// adversarially crafted values.
    pub fn fingerprint(&self) -> u64 {
        self.values
            .iter()
            .enumerate()
            .fold(0, |fp, (i, v)| fp ^ slot_fingerprint(i, v))
    }

    /// The fingerprint of `self.with(updates)`, computed from `base`
    /// (which must be `self.fingerprint()`) in time proportional to the
    /// *updated* values only: each update XORs out the old slot hash
    /// and XORs in the new one.
    ///
    /// This is what makes fingerprinted exploration cheap — successor
    /// fingerprints cost `O(changed)` and are available *before* the
    /// successor state is materialized, so already-visited successors
    /// need never be constructed at all.
    ///
    /// # Panics
    ///
    /// Panics if an updated variable is out of range for this state.
    /// Listing the same variable twice yields the fingerprint of the
    /// corresponding repeated [`State::with`], only if the old value is
    /// re-read between the updates — callers with well-formed
    /// (duplicate-free) update lists are unaffected.
    pub fn fingerprint_with(&self, base: u64, updates: &[(VarId, Value)]) -> u64 {
        updates.iter().fold(base, |fp, (v, val)| {
            fp ^ slot_fingerprint(v.index(), self.get(*v)) ^ slot_fingerprint(v.index(), val)
        })
    }

    /// Renders the state with variable names from `vars`.
    pub fn display<'a>(&'a self, vars: &'a Vars) -> StateDisplay<'a> {
        StateDisplay { state: self, vars }
    }
}

/// The Zobrist slot hash: a fast hash of `(slot index, value)`. The
/// index participates so that swapping equal values between two slots
/// changes the fingerprint.
pub(crate) fn slot_fingerprint(index: usize, value: &Value) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = fxhash::FxHasher::default();
    h.write_usize(index);
    value.hash(&mut h);
    h.finish()
}

impl fmt::Debug for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "]")
    }
}

/// Helper returned by [`State::display`]; renders `x=0 y=1 …`.
#[derive(Clone, Copy)]
pub struct StateDisplay<'a> {
    state: &'a State,
    vars: &'a Vars,
}

impl fmt::Display for StateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for v in self.vars.iter() {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match self.state.try_get(v) {
                Some(val) => write!(f, "{}={}", self.vars.name(v), val)?,
                None => write!(f, "{}=?", self.vars.name(v))?,
            }
        }
        Ok(())
    }
}

impl fmt::Debug for StateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

/// A pair of consecutive states — what an action is evaluated against.
///
/// `old` is the unprimed state, `new` the primed one.
#[derive(Clone, Copy, Debug)]
pub struct StatePair<'a> {
    /// The unprimed (current) state.
    pub old: &'a State,
    /// The primed (next) state.
    pub new: &'a State,
}

impl<'a> StatePair<'a> {
    /// Builds a pair from two states.
    pub fn new(old: &'a State, new: &'a State) -> Self {
        StatePair { old, new }
    }

    /// The stuttering pair `⟨s, s⟩`.
    pub fn stutter(s: &'a State) -> Self {
        StatePair { old: s, new: s }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;

    fn three_vars() -> (Vars, VarId, VarId, VarId) {
        let mut vars = Vars::new();
        let a = vars.declare("a", Domain::bits());
        let b = vars.declare("b", Domain::bits());
        let c = vars.declare("c", Domain::bits());
        (vars, a, b, c)
    }

    #[test]
    fn with_updates_only_listed_vars() {
        let (_, a, b, c) = three_vars();
        let s = State::new(vec![Value::Int(0), Value::Int(0), Value::Int(0)]);
        let t = s.with(&[(b, Value::Int(1))]);
        assert_eq!(t.get(a), &Value::Int(0));
        assert_eq!(t.get(b), &Value::Int(1));
        assert_eq!(t.get(c), &Value::Int(0));
        // Original untouched.
        assert_eq!(s.get(b), &Value::Int(0));
    }

    #[test]
    fn agrees_with_checks_subtuple() {
        let (_, a, b, c) = three_vars();
        let s = State::new(vec![Value::Int(0), Value::Int(0), Value::Int(0)]);
        let t = s.with(&[(c, Value::Int(1))]);
        assert!(s.agrees_with(&t, &[a, b]));
        assert!(!s.agrees_with(&t, &[a, c]));
        assert!(s.agrees_with(&t, &[]));
    }

    #[test]
    fn display_uses_names() {
        let (vars, _, _, _) = three_vars();
        let s = State::new(vec![Value::Int(0), Value::Int(1), Value::Int(0)]);
        assert_eq!(s.display(&vars).to_string(), "a=0 b=1 c=0");
    }

    #[test]
    fn try_get_out_of_range() {
        let (_, _, _, c) = three_vars();
        let short = State::new(vec![Value::Int(0)]);
        assert_eq!(short.try_get(c), None);
        assert_eq!(short.len(), 1);
        assert!(!short.is_empty());
    }

    #[test]
    fn fingerprint_follows_value_equality() {
        let s = State::new(vec![Value::Int(0), Value::seq(vec![Value::Int(1)])]);
        let t = State::new(vec![Value::Int(0), Value::seq(vec![Value::Int(1)])]);
        let u = State::new(vec![Value::Int(1), Value::seq(vec![Value::Int(1)])]);
        assert_eq!(s.fingerprint(), t.fingerprint());
        assert_ne!(s.fingerprint(), u.fingerprint());
        // Tuple/Seq of the same contents are distinct values and must
        // fingerprint differently.
        let tup = State::new(vec![Value::tuple(vec![Value::Int(1)])]);
        let seq = State::new(vec![Value::seq(vec![Value::Int(1)])]);
        assert_ne!(tup.fingerprint(), seq.fingerprint());
        // Swapping equal values across slots changes the fingerprint
        // (the slot index participates in each slot hash).
        let ab = State::new(vec![Value::Int(0), Value::Int(1)]);
        let ba = State::new(vec![Value::Int(1), Value::Int(0)]);
        assert_ne!(ab.fingerprint(), ba.fingerprint());
    }

    #[test]
    fn incremental_fingerprint_matches_recomputation() {
        let (_, a, _, c) = three_vars();
        let s = State::new(vec![Value::Int(0), Value::Int(1), Value::Int(0)]);
        let base = s.fingerprint();
        for updates in [
            vec![(a, Value::Int(1))],
            vec![(c, Value::Int(1))],
            vec![(a, Value::Int(1)), (c, Value::Int(1))],
            vec![(a, Value::Int(0))], // no-op update
            vec![],
        ] {
            assert_eq!(
                s.fingerprint_with(base, &updates),
                s.with(&updates).fingerprint(),
                "updates {updates:?}"
            );
        }
    }

    #[test]
    fn states_hashable_and_equal_by_value() {
        let s = State::new(vec![Value::Int(0)]);
        let t = State::new(vec![Value::Int(0)]);
        assert_eq!(s, t);
        let mut set = std::collections::HashSet::new();
        set.insert(s);
        assert!(set.contains(&t));
    }
}
