//! A zero-dependency binary codec for [`Value`]s and [`State`]s.
//!
//! Checkpoint/resume (TLC's `-recover`) needs the state arena on disk,
//! and fingerprints are deliberately *not* a serialization format — so
//! this module provides the canonical byte encoding: length-prefixed,
//! little-endian, self-describing via one tag byte per value. The
//! encoding is total (every value encodes) and decoding is exact
//! (`decode(encode(v)) == v`); decoding arbitrary bytes never panics,
//! returning a typed [`DecodeError`] instead.
//!
//! Wire format per value:
//!
//! | tag | payload |
//! |-----|---------|
//! | `0` | `u8` boolean |
//! | `1` | `i64` LE integer |
//! | `2` | `u32` LE byte length + UTF-8 bytes |
//! | `3` | `u32` LE arity + that many values (tuple) |
//! | `4` | `u32` LE length + that many values (sequence) |
//!
//! A state is a `u32` LE slot count followed by one value per slot.

use crate::{State, Value};

/// Why a byte stream failed to decode as a value or state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value did.
    Truncated {
        /// What was being read when the bytes ran out.
        context: &'static str,
    },
    /// An unknown value tag byte.
    BadTag {
        /// The offending tag.
        tag: u8,
    },
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// A length prefix exceeds the remaining input (corrupt or
    /// adversarial data; also guards allocation-on-length attacks).
    BadLength {
        /// The claimed length.
        claimed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated { context } => {
                write!(f, "input truncated while reading {context}")
            }
            DecodeError::BadTag { tag } => write!(f, "unknown value tag {tag}"),
            DecodeError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
            DecodeError::BadLength { claimed, remaining } => write!(
                f,
                "length prefix {claimed} exceeds the {remaining} byte(s) remaining"
            ),
        }
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over an encoded byte slice; all reads are bounds-checked.
#[derive(Clone, Copy, Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] at end of input.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, DecodeError> {
        let b = *self
            .buf
            .get(self.pos)
            .ok_or(DecodeError::Truncated { context })?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], DecodeError> {
        let end = self
            .pos
            .checked_add(n)
            .ok_or(DecodeError::Truncated { context })?;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or(DecodeError::Truncated { context })?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] if fewer than 4 bytes remain.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, DecodeError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] if fewer than 8 bytes remain.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, DecodeError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a `u32` length prefix followed by that many raw bytes.
    ///
    /// # Errors
    ///
    /// [`DecodeError::Truncated`] if the input ends early, or
    /// [`DecodeError::BadLength`] if the prefix claims more bytes than
    /// remain.
    pub fn bytes(&mut self, context: &'static str) -> Result<&'a [u8], DecodeError> {
        let n = self.len(context)?;
        self.take(n, context)
    }

    /// Reads a length prefix and validates it against the remaining
    /// input, so corrupt data cannot demand absurd allocations.
    fn len(&mut self, context: &'static str) -> Result<usize, DecodeError> {
        let n = self.u32(context)? as usize;
        // Every encoded element costs at least one byte, so a claimed
        // count beyond the remaining bytes is definitely corrupt.
        if n > self.remaining() {
            return Err(DecodeError::BadLength {
                claimed: n,
                remaining: self.remaining(),
            });
        }
        Ok(n)
    }
}

/// Tag bytes of the wire format.
const TAG_BOOL: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_STR: u8 = 2;
const TAG_TUPLE: u8 = 3;
const TAG_SEQ: u8 = 4;

/// Appends the encoding of `v` to `out`.
pub fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Bool(b) => {
            out.push(TAG_BOOL);
            out.push(u8::from(*b));
        }
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Tuple(items) => {
            out.push(TAG_TUPLE);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items.iter() {
                encode_value(item, out);
            }
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            out.extend_from_slice(&(items.len() as u32).to_le_bytes());
            for item in items.iter() {
                encode_value(item, out);
            }
        }
    }
}

/// Decodes one value from the reader.
///
/// # Errors
///
/// A [`DecodeError`] on truncated, tag-invalid, or corrupt input;
/// never panics.
pub fn decode_value(r: &mut Reader<'_>) -> Result<Value, DecodeError> {
    match r.u8("value tag")? {
        TAG_BOOL => Ok(Value::Bool(r.u8("boolean payload")? != 0)),
        TAG_INT => {
            let b = r.take(8, "integer payload")?;
            Ok(Value::Int(i64::from_le_bytes([
                b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
            ])))
        }
        TAG_STR => {
            let n = r.len("string length")?;
            let bytes = r.take(n, "string payload")?;
            let s = std::str::from_utf8(bytes).map_err(|_| DecodeError::BadUtf8)?;
            Ok(Value::str(s))
        }
        TAG_TUPLE => {
            let n = r.len("tuple arity")?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(r)?);
            }
            Ok(Value::tuple(items))
        }
        TAG_SEQ => {
            let n = r.len("sequence length")?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(r)?);
            }
            Ok(Value::seq(items))
        }
        tag => Err(DecodeError::BadTag { tag }),
    }
}

/// Appends the encoding of `s` (slot count + one value per slot) to
/// `out`.
pub fn encode_state(s: &State, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    for v in s.values() {
        encode_value(v, out);
    }
}

/// Decodes one state from the reader.
///
/// # Errors
///
/// As [`decode_value`].
pub fn decode_state(r: &mut Reader<'_>) -> Result<State, DecodeError> {
    let n = r.len("state slot count")?;
    let mut values = Vec::with_capacity(n);
    for _ in 0..n {
        values.push(decode_value(r)?);
    }
    Ok(State::new(values))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(v: &Value) {
        let mut bytes = Vec::new();
        encode_value(v, &mut bytes);
        let mut r = Reader::new(&bytes);
        let back = decode_value(&mut r).expect("decodes");
        assert_eq!(&back, v);
        assert!(r.is_empty(), "trailing bytes after {v}");
    }

    #[test]
    fn values_round_trip() {
        round_trip(&Value::Bool(false));
        round_trip(&Value::Bool(true));
        round_trip(&Value::Int(0));
        round_trip(&Value::Int(i64::MIN));
        round_trip(&Value::Int(i64::MAX));
        round_trip(&Value::str(""));
        round_trip(&Value::str("héllo ⊳ wörld"));
        round_trip(&Value::empty_seq());
        round_trip(&Value::tuple(vec![]));
        round_trip(&Value::tuple(vec![
            Value::Int(1),
            Value::seq(vec![Value::Bool(true), Value::str("x")]),
        ]));
        // Tuple vs Seq of the same contents stay distinct on the wire.
        let mut a = Vec::new();
        let mut b = Vec::new();
        encode_value(&Value::tuple(vec![Value::Int(1)]), &mut a);
        encode_value(&Value::seq(vec![Value::Int(1)]), &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn states_round_trip() {
        for s in [
            State::new(Vec::<Value>::new()),
            State::new(vec![Value::Int(3), Value::Bool(true)]),
            State::new(vec![Value::seq(vec![Value::tuple(vec![
                Value::Int(1),
                Value::Int(0),
                Value::str("ack"),
            ])])]),
        ] {
            let mut bytes = Vec::new();
            encode_state(&s, &mut bytes);
            let mut r = Reader::new(&bytes);
            assert_eq!(decode_state(&mut r).expect("decodes"), s);
            assert!(r.is_empty());
        }
    }

    #[test]
    fn corrupt_input_yields_typed_errors_not_panics() {
        // Truncated integer.
        let mut bytes = Vec::new();
        encode_value(&Value::Int(42), &mut bytes);
        bytes.truncate(bytes.len() - 1);
        assert!(matches!(
            decode_value(&mut Reader::new(&bytes)),
            Err(DecodeError::Truncated { .. })
        ));
        // Unknown tag.
        assert!(matches!(
            decode_value(&mut Reader::new(&[99])),
            Err(DecodeError::BadTag { tag: 99 })
        ));
        // Absurd length prefix.
        let mut bytes = vec![TAG_SEQ];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_value(&mut Reader::new(&bytes)),
            Err(DecodeError::BadLength { .. })
        ));
        // Invalid UTF-8 payload.
        let mut bytes = vec![TAG_STR];
        bytes.extend_from_slice(&2u32.to_le_bytes());
        bytes.extend_from_slice(&[0xff, 0xfe]);
        assert_eq!(
            decode_value(&mut Reader::new(&bytes)),
            Err(DecodeError::BadUtf8)
        );
        // Empty input.
        assert!(matches!(
            decode_state(&mut Reader::new(&[])),
            Err(DecodeError::Truncated { .. })
        ));
        // Errors display something readable.
        assert!(DecodeError::BadUtf8.to_string().contains("UTF-8"));
        assert!(DecodeError::Truncated { context: "x" }.to_string().contains('x'));
    }
}
