//! Error types for the kernel.

use crate::{Value, VarId};
use std::fmt;

/// An error raised while evaluating an expression on states.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EvalError {
    /// A variable index was out of range for the state it was evaluated
    /// against (states and expressions built from different registries).
    UnboundVar {
        /// The offending variable.
        var: VarId,
        /// Number of variables the state assigns.
        state_len: usize,
    },
    /// A primed variable occurred where only a state function is legal
    /// (e.g. inside an initial predicate or a `WF` subscript).
    PrimeInStateContext {
        /// The offending variable.
        var: VarId,
    },
    /// An operator was applied to a value of the wrong kind.
    TypeMismatch {
        /// Operator name, e.g. `"+"` or `"Head"`.
        op: &'static str,
        /// The offending value.
        value: Value,
    },
    /// `Head` or `Tail` of an empty sequence.
    EmptySeq {
        /// Operator name.
        op: &'static str,
    },
    /// Integer overflow in arithmetic.
    Overflow {
        /// Operator name.
        op: &'static str,
    },
    /// Division or remainder by zero.
    DivisionByZero,
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnboundVar { var, state_len } => write!(
                f,
                "variable #{} is unbound in a state of {} variables",
                var.index(),
                state_len
            ),
            EvalError::PrimeInStateContext { var } => write!(
                f,
                "primed variable #{} used where a state function is required",
                var.index()
            ),
            EvalError::TypeMismatch { op, value } => {
                write!(f, "operator {op} applied to {} value {value}", value.kind())
            }
            EvalError::EmptySeq { op } => write!(f, "{op} applied to an empty sequence"),
            EvalError::Overflow { op } => write!(f, "integer overflow in {op}"),
            EvalError::DivisionByZero => write!(f, "division by zero"),
        }
    }
}

impl std::error::Error for EvalError {}

/// A structural error raised while building or transforming syntax
/// (substitution capture, malformed canonical forms, …).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// A substitution would capture a bound (hidden) variable.
    Capture {
        /// The bound variable that would be captured.
        bound: VarId,
    },
    /// A substitution maps a variable to an expression that already
    /// contains primes, so priming it again is meaningless.
    DoublePrime {
        /// The variable being substituted.
        var: VarId,
    },
    /// An evaluation error surfaced during a syntactic check.
    Eval(EvalError),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Capture { bound } => write!(
                f,
                "substitution would capture hidden variable #{}",
                bound.index()
            ),
            KernelError::DoublePrime { var } => write!(
                f,
                "substituting variable #{} with a primed expression inside a prime",
                var.index()
            ),
            KernelError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for KernelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KernelError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvalError> for KernelError {
    fn from(e: EvalError) -> Self {
        KernelError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = EvalError::TypeMismatch {
            op: "+",
            value: Value::Bool(true),
        };
        let msg = e.to_string();
        assert!(msg.contains('+') && msg.contains("bool"), "{msg}");

        let k = KernelError::from(e.clone());
        assert!(k.to_string().contains("bool"));
        assert!(std::error::Error::source(&k).is_some());
    }
}
