//! Disk-backed storage for out-of-core exploration: append-only
//! segment files plus sorted fingerprint runs.
//!
//! The in-RAM engines cap the largest checkable system at available
//! memory; TLC-lineage checkers break that cap with disk-based state
//! and fingerprint storage. This module provides the two on-disk
//! primitives the bounded-memory engine builds on:
//!
//! * [`SegmentStore`] — an append-only record log split into sealed
//!   **segment files** (length-prefixed records, FNV-1a-checksummed
//!   headers, written atomically via tmp+rename like the checkpoint
//!   snapshots) fronted by an in-RAM LRU [`SegmentCache`] with a
//!   configurable byte budget;
//! * [`FingerprintRun`] — an immutable sorted `(fingerprint, id)` run
//!   with a sparse in-RAM index, answering point lookups with one
//!   `seek` + one small block read.
//!
//! Both follow the [`codec`](crate::codec) conventions: little-endian,
//! length-prefixed, and decoding arbitrary bytes never panics — every
//! failure surfaces as a typed [`StoreError`].

use std::collections::{HashMap, VecDeque};
use std::fs;
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};

/// Magic bytes opening every segment file.
const SEGMENT_MAGIC: [u8; 8] = *b"OTLASEG\0";
/// Magic bytes opening every fingerprint-run file.
const RUN_MAGIC: [u8; 8] = *b"OTLARUN\0";
/// Current segment/run format version.
const STORE_VERSION: u32 = 1;
/// Byte length of a segment-file header (magic + version + first +
/// records + payload_len + payload checksum + header checksum).
const SEGMENT_HEADER_LEN: usize = 8 + 4 + 8 + 8 + 8 + 8 + 8;
/// Byte length of a run-file header (magic + version + count +
/// checksum).
const RUN_HEADER_LEN: usize = 8 + 4 + 8 + 8;
/// Entries per sparse-index block in a fingerprint run.
const RUN_BLOCK: usize = 256;
/// Bytes per fingerprint-run entry (fp u64 + id u64).
const RUN_ENTRY: usize = 16;

/// FNV-1a over a byte slice — the same convention the checkpoint
/// snapshots use, so every on-disk artifact shares one checksum.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Why a store operation failed. Mirrors the checkpoint error shape:
/// corrupt or truncated on-disk data yields a typed error, never a
/// panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// An underlying filesystem operation failed.
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The OS error message.
        message: String,
    },
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// The offending file.
        path: PathBuf,
    },
    /// The file claims a format version this build cannot read.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// A header or payload checksum did not match its contents.
    ChecksumMismatch {
        /// The offending file.
        path: PathBuf,
    },
    /// The file is structurally invalid (truncated payload, record
    /// overrun, miscounted records, …).
    Corrupt {
        /// Human-readable detail.
        detail: String,
    },
    /// A reopened segment disagrees with the metadata recorded when it
    /// was sealed (wrong first record, record count, or checksum).
    MetaMismatch {
        /// Which recorded field disagreed.
        field: &'static str,
        /// The value recorded at seal time.
        expected: u64,
        /// The value found on reopen.
        found: u64,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io { path, message } => {
                write!(f, "store I/O error on {}: {message}", path.display())
            }
            StoreError::BadMagic { path } => {
                write!(f, "{} is not a store file (bad magic)", path.display())
            }
            StoreError::UnsupportedVersion { found } => {
                write!(f, "unsupported store format version {found}")
            }
            StoreError::ChecksumMismatch { path } => {
                write!(f, "checksum mismatch in {} (corrupt file)", path.display())
            }
            StoreError::Corrupt { detail } => write!(f, "corrupt store file: {detail}"),
            StoreError::MetaMismatch {
                field,
                expected,
                found,
            } => write!(
                f,
                "segment metadata mismatch: {field} recorded as {expected}, found {found}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(path: &Path, e: std::io::Error) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        message: e.to_string(),
    }
}

/// Description of one sealed segment file, recorded at seal time and
/// re-verified on every reopen. This is what a checkpoint snapshot
/// persists *instead of* the segment's records — referencing sealed
/// files keeps snapshot cost proportional to the hot tier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentMeta {
    /// File name within the store directory.
    pub name: String,
    /// Global index of the segment's first record.
    pub first: u64,
    /// Number of records in the segment.
    pub records: u64,
    /// Payload length in bytes (length prefixes included).
    pub payload_len: u64,
    /// FNV-1a checksum of the payload bytes.
    pub payload_checksum: u64,
}

impl SegmentMeta {
    /// Total on-disk size of the sealed segment file (header included).
    pub fn file_len(&self) -> u64 {
        SEGMENT_HEADER_LEN as u64 + self.payload_len
    }
}

/// One sealed segment resident in the cache: its payload plus the
/// precomputed (offset, len) of every record.
struct LoadedSegment {
    payload: Vec<u8>,
    offsets: Vec<(usize, usize)>,
}

impl LoadedSegment {
    fn record(&self, i: usize) -> &[u8] {
        let (off, len) = self.offsets[i];
        &self.payload[off..off + len]
    }

    fn resident_bytes(&self) -> usize {
        self.payload.len() + self.offsets.len() * std::mem::size_of::<(usize, usize)>()
    }
}

/// Hit/miss/eviction counters for the segment cache, surfaced through
/// the `cache_stats` observability event.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Reads answered by a resident segment.
    pub hits: u64,
    /// Reads that had to load a segment from disk.
    pub misses: u64,
    /// Segments evicted to stay under the byte budget.
    pub evictions: u64,
    /// Bytes currently resident in the cache.
    pub resident_bytes: u64,
}

/// An append-only record log that spills to disk in sealed segment
/// files once the in-RAM tail exceeds `target_bytes`, reading sealed
/// records back through an LRU cache bounded by `cache_budget` bytes.
///
/// Records are opaque byte strings addressed by their global append
/// index. Sealed files are immutable; the unsealed tail lives in RAM
/// and is what a checkpoint embeds verbatim.
pub struct SegmentStore {
    dir: PathBuf,
    prefix: String,
    target_bytes: usize,
    cache_budget: usize,
    hot_payload: Vec<u8>,
    hot_offsets: Vec<(usize, usize)>,
    hot_first: u64,
    sealed: Vec<SegmentMeta>,
    cache: HashMap<usize, LoadedSegment>,
    lru: VecDeque<usize>,
    stats: CacheStats,
    spilled_bytes: u64,
}

impl SegmentStore {
    /// Opens a fresh store in `dir`, creating the directory and
    /// removing any stale `{prefix}-*.seg` files from an earlier run.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the directory cannot be created or
    /// scanned.
    pub fn create(
        dir: &Path,
        prefix: &str,
        target_bytes: usize,
        cache_budget: usize,
    ) -> Result<SegmentStore, StoreError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
        let stale_prefix = format!("{prefix}-");
        for entry in fs::read_dir(dir).map_err(|e| io_err(dir, e))? {
            let entry = entry.map_err(|e| io_err(dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(&stale_prefix) && name.ends_with(".seg") {
                let path = entry.path();
                fs::remove_file(&path).map_err(|e| io_err(&path, e))?;
            }
        }
        Ok(SegmentStore {
            dir: dir.to_path_buf(),
            prefix: prefix.to_string(),
            // A zero target would seal one segment per record; clamp
            // to something that still exercises spilling in tests.
            target_bytes: target_bytes.max(64),
            cache_budget,
            hot_payload: Vec::new(),
            hot_offsets: Vec::new(),
            hot_first: 0,
            sealed: Vec::new(),
            cache: HashMap::new(),
            lru: VecDeque::new(),
            stats: CacheStats::default(),
            spilled_bytes: 0,
        })
    }

    /// Total records appended so far (sealed + hot).
    pub fn len(&self) -> u64 {
        self.hot_first + self.hot_offsets.len() as u64
    }

    /// Whether no record has been appended yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Metadata of every sealed segment, in order.
    pub fn sealed(&self) -> &[SegmentMeta] {
        &self.sealed
    }

    /// Global index of the first record still in the in-RAM tail.
    pub fn hot_first(&self) -> u64 {
        self.hot_first
    }

    /// The raw records of the unsealed in-RAM tail, in append order.
    pub fn hot_records(&self) -> impl Iterator<Item = &[u8]> {
        self.hot_offsets
            .iter()
            .map(|&(off, len)| &self.hot_payload[off..off + len])
    }

    /// Total bytes written to sealed segment files so far.
    pub fn spilled_bytes(&self) -> u64 {
        self.spilled_bytes
    }

    /// Current cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        let mut stats = self.stats;
        stats.resident_bytes = self
            .cache
            .values()
            .map(|s| s.resident_bytes() as u64)
            .sum();
        stats
    }

    /// Appends one record, sealing the in-RAM tail into a segment file
    /// if it has reached the target size. Returns the metadata of the
    /// newly sealed segment when a seal happened.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if sealing fails to write the segment file.
    pub fn append(&mut self, record: &[u8]) -> Result<Option<SegmentMeta>, StoreError> {
        let off = self.hot_payload.len();
        self.hot_payload
            .extend_from_slice(&(record.len() as u32).to_le_bytes());
        self.hot_payload.extend_from_slice(record);
        self.hot_offsets.push((off + 4, record.len()));
        if self.hot_payload.len() >= self.target_bytes {
            self.seal()
        } else {
            Ok(None)
        }
    }

    /// Seals the in-RAM tail into an immutable segment file (no-op on
    /// an empty tail). The file is written to a temporary name and
    /// atomically renamed, so a crash never leaves a half-written
    /// segment behind.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure.
    pub fn seal(&mut self) -> Result<Option<SegmentMeta>, StoreError> {
        if self.hot_offsets.is_empty() {
            return Ok(None);
        }
        let name = format!("{}-{:05}.seg", self.prefix, self.sealed.len());
        let meta = SegmentMeta {
            name: name.clone(),
            first: self.hot_first,
            records: self.hot_offsets.len() as u64,
            payload_len: self.hot_payload.len() as u64,
            payload_checksum: fnv1a(&self.hot_payload),
        };
        let mut bytes = Vec::with_capacity(SEGMENT_HEADER_LEN + self.hot_payload.len());
        bytes.extend_from_slice(&SEGMENT_MAGIC);
        bytes.extend_from_slice(&STORE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&meta.first.to_le_bytes());
        bytes.extend_from_slice(&meta.records.to_le_bytes());
        bytes.extend_from_slice(&meta.payload_len.to_le_bytes());
        bytes.extend_from_slice(&meta.payload_checksum.to_le_bytes());
        let header_checksum = fnv1a(&bytes);
        bytes.extend_from_slice(&header_checksum.to_le_bytes());
        bytes.extend_from_slice(&self.hot_payload);
        let path = self.dir.join(&name);
        let tmp = self.dir.join(format!("{name}.tmp"));
        fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, e))?;
        fs::rename(&tmp, &path).map_err(|e| io_err(&path, e))?;
        self.spilled_bytes += bytes.len() as u64;
        self.hot_first += meta.records;
        self.hot_payload.clear();
        self.hot_offsets.clear();
        self.sealed.push(meta.clone());
        Ok(Some(meta))
    }

    /// Reads record `idx` into `out` (cleared first), pulling its
    /// segment through the cache if it is not resident.
    ///
    /// # Errors
    ///
    /// [`StoreError::Corrupt`] for an out-of-range index; any
    /// [`StoreError`] from reopening a sealed segment.
    pub fn read(&mut self, idx: u64, out: &mut Vec<u8>) -> Result<(), StoreError> {
        out.clear();
        if idx >= self.len() {
            return Err(StoreError::Corrupt {
                detail: format!("record {idx} out of range (store holds {})", self.len()),
            });
        }
        if idx >= self.hot_first {
            let (off, len) = self.hot_offsets[(idx - self.hot_first) as usize];
            out.extend_from_slice(&self.hot_payload[off..off + len]);
            return Ok(());
        }
        // Sealed segments partition [0, hot_first) by `first`; find
        // the one containing idx.
        let seg = match self.sealed.binary_search_by(|m| m.first.cmp(&idx)) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let within = (idx - self.sealed[seg].first) as usize;
        let loaded = self.load(seg)?;
        out.extend_from_slice(loaded.record(within));
        self.touch(seg);
        Ok(())
    }

    /// Ensures segment `seg` is resident, loading and verifying it
    /// from disk on a miss.
    fn load(&mut self, seg: usize) -> Result<&LoadedSegment, StoreError> {
        if self.cache.contains_key(&seg) {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
            let meta = &self.sealed[seg];
            let path = self.dir.join(&meta.name);
            let loaded = open_segment_file(&path, Some(meta))?;
            self.cache.insert(seg, loaded);
            self.lru.push_back(seg);
            self.evict();
        }
        Ok(&self.cache[&seg])
    }

    /// Moves `seg` to the most-recently-used position.
    fn touch(&mut self, seg: usize) {
        if self.lru.back() != Some(&seg) {
            if let Some(pos) = self.lru.iter().position(|&s| s == seg) {
                self.lru.remove(pos);
                self.lru.push_back(seg);
            }
        }
    }

    /// Evicts least-recently-used segments until the cache fits its
    /// byte budget, always keeping at least one resident so a read
    /// loop over a single segment cannot thrash.
    fn evict(&mut self) {
        let mut resident: usize = self.cache.values().map(LoadedSegment::resident_bytes).sum();
        while resident > self.cache_budget && self.cache.len() > 1 {
            let Some(victim) = self.lru.pop_front() else {
                break;
            };
            if let Some(gone) = self.cache.remove(&victim) {
                resident -= gone.resident_bytes();
                self.stats.evictions += 1;
            }
        }
    }
}

/// Reads and fully verifies one segment file: magic, version, header
/// checksum, payload length, payload checksum, and record framing.
/// When `meta` is given (reopening a segment this process sealed, or
/// one referenced by a checkpoint manifest), the header must agree
/// with it field-for-field.
fn open_segment_file(path: &Path, meta: Option<&SegmentMeta>) -> Result<LoadedSegment, StoreError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    if bytes.len() < SEGMENT_HEADER_LEN {
        return Err(StoreError::Corrupt {
            detail: format!("{} shorter than a segment header", path.display()),
        });
    }
    if bytes[..8] != SEGMENT_MAGIC {
        return Err(StoreError::BadMagic {
            path: path.to_path_buf(),
        });
    }
    let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().expect("4 bytes"));
    let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().expect("8 bytes"));
    let version = u32_at(8);
    if version != STORE_VERSION {
        return Err(StoreError::UnsupportedVersion { found: version });
    }
    let first = u64_at(12);
    let records = u64_at(20);
    let payload_len = u64_at(28);
    let payload_checksum = u64_at(36);
    let header_checksum = u64_at(44);
    if fnv1a(&bytes[..44]) != header_checksum {
        return Err(StoreError::ChecksumMismatch {
            path: path.to_path_buf(),
        });
    }
    let payload = &bytes[SEGMENT_HEADER_LEN..];
    if payload.len() as u64 != payload_len {
        return Err(StoreError::Corrupt {
            detail: format!(
                "{}: payload is {} byte(s), header claims {payload_len}",
                path.display(),
                payload.len()
            ),
        });
    }
    if fnv1a(payload) != payload_checksum {
        return Err(StoreError::ChecksumMismatch {
            path: path.to_path_buf(),
        });
    }
    if let Some(meta) = meta {
        if meta.first != first {
            return Err(StoreError::MetaMismatch {
                field: "first record",
                expected: meta.first,
                found: first,
            });
        }
        if meta.records != records {
            return Err(StoreError::MetaMismatch {
                field: "record count",
                expected: meta.records,
                found: records,
            });
        }
        if meta.payload_checksum != payload_checksum {
            return Err(StoreError::MetaMismatch {
                field: "payload checksum",
                expected: meta.payload_checksum,
                found: payload_checksum,
            });
        }
    }
    // Walk the length-prefixed records, bounds-checking every frame.
    let mut offsets = Vec::new();
    let mut pos = 0usize;
    while pos < payload.len() {
        if pos + 4 > payload.len() {
            return Err(StoreError::Corrupt {
                detail: format!("{}: truncated record length prefix", path.display()),
            });
        }
        let len = u32::from_le_bytes(payload[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if pos + 4 + len > payload.len() {
            return Err(StoreError::Corrupt {
                detail: format!(
                    "{}: record of {len} byte(s) overruns the payload",
                    path.display()
                ),
            });
        }
        offsets.push((pos + 4, len));
        pos += 4 + len;
    }
    if offsets.len() as u64 != records {
        return Err(StoreError::Corrupt {
            detail: format!(
                "{}: header claims {records} record(s), payload holds {}",
                path.display(),
                offsets.len()
            ),
        });
    }
    Ok(LoadedSegment {
        payload: payload.to_vec(),
        offsets,
    })
}

/// Opens and fully verifies a segment file, returning its records.
/// This is the external (test and checkpoint-materialization) entry
/// point; the store itself reads through its cache.
///
/// # Errors
///
/// Any [`StoreError`] describing why the file is unreadable or does
/// not match `meta`.
pub fn read_segment(path: &Path, meta: Option<&SegmentMeta>) -> Result<Vec<Vec<u8>>, StoreError> {
    let loaded = open_segment_file(path, meta)?;
    Ok((0..loaded.offsets.len())
        .map(|i| loaded.record(i).to_vec())
        .collect())
}

/// An immutable sorted `(fingerprint, id)` run on disk, with a sparse
/// in-RAM index (one entry per [`RUN_BLOCK`] pairs). The bounded
/// visited set spills its hot table into runs and answers membership
/// probes with one seek plus one block read per run.
pub struct FingerprintRun {
    path: PathBuf,
    file: fs::File,
    count: u64,
    /// `(first fingerprint of block, entry index of block start)`.
    index: Vec<(u64, u64)>,
    min: u64,
    max: u64,
}

impl FingerprintRun {
    /// Writes `entries` (must be sorted by fingerprint) as a run file
    /// and reopens it for lookups. Written atomically via tmp+rename.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on any filesystem failure;
    /// [`StoreError::Corrupt`] if `entries` is empty or unsorted.
    pub fn write(path: &Path, entries: &[(u64, u64)]) -> Result<FingerprintRun, StoreError> {
        if entries.is_empty() {
            return Err(StoreError::Corrupt {
                detail: "refusing to write an empty fingerprint run".to_string(),
            });
        }
        if entries.windows(2).any(|w| w[0].0 > w[1].0) {
            return Err(StoreError::Corrupt {
                detail: "fingerprint run entries are not sorted".to_string(),
            });
        }
        let mut body = Vec::with_capacity(entries.len() * RUN_ENTRY);
        for &(fp, id) in entries {
            body.extend_from_slice(&fp.to_le_bytes());
            body.extend_from_slice(&id.to_le_bytes());
        }
        let mut bytes = Vec::with_capacity(RUN_HEADER_LEN + body.len());
        bytes.extend_from_slice(&RUN_MAGIC);
        bytes.extend_from_slice(&STORE_VERSION.to_le_bytes());
        bytes.extend_from_slice(&(entries.len() as u64).to_le_bytes());
        bytes.extend_from_slice(&fnv1a(&body).to_le_bytes());
        bytes.extend_from_slice(&body);
        let tmp = path.with_extension("run.tmp");
        fs::write(&tmp, &bytes).map_err(|e| io_err(&tmp, e))?;
        fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
        let file = fs::File::open(path).map_err(|e| io_err(path, e))?;
        let index = entries
            .iter()
            .step_by(RUN_BLOCK)
            .enumerate()
            .map(|(i, &(fp, _))| (fp, (i * RUN_BLOCK) as u64))
            .collect();
        Ok(FingerprintRun {
            path: path.to_path_buf(),
            file,
            count: entries.len() as u64,
            index,
            min: entries[0].0,
            max: entries[entries.len() - 1].0,
        })
    }

    /// Reopens and fully verifies a run file (magic, version, count,
    /// checksum), rebuilding the sparse index.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] describing why the file is unreadable.
    pub fn open(path: &Path) -> Result<FingerprintRun, StoreError> {
        let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
        if bytes.len() < RUN_HEADER_LEN {
            return Err(StoreError::Corrupt {
                detail: format!("{} shorter than a run header", path.display()),
            });
        }
        if bytes[..8] != RUN_MAGIC {
            return Err(StoreError::BadMagic {
                path: path.to_path_buf(),
            });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != STORE_VERSION {
            return Err(StoreError::UnsupportedVersion { found: version });
        }
        let count = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
        let checksum = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
        let body = &bytes[RUN_HEADER_LEN..];
        if body.len() as u64 != count * RUN_ENTRY as u64 {
            return Err(StoreError::Corrupt {
                detail: format!(
                    "{}: header claims {count} entries, body holds {} byte(s)",
                    path.display(),
                    body.len()
                ),
            });
        }
        if count == 0 {
            return Err(StoreError::Corrupt {
                detail: format!("{}: empty fingerprint run", path.display()),
            });
        }
        if fnv1a(body) != checksum {
            return Err(StoreError::ChecksumMismatch {
                path: path.to_path_buf(),
            });
        }
        let fp_at = |i: usize| {
            u64::from_le_bytes(
                body[i * RUN_ENTRY..i * RUN_ENTRY + 8]
                    .try_into()
                    .expect("8 bytes"),
            )
        };
        let mut index = Vec::new();
        let mut prev = 0u64;
        for i in 0..count as usize {
            let fp = fp_at(i);
            if i > 0 && fp < prev {
                return Err(StoreError::Corrupt {
                    detail: format!("{}: run entries are not sorted", path.display()),
                });
            }
            prev = fp;
            if i % RUN_BLOCK == 0 {
                index.push((fp, i as u64));
            }
        }
        let file = fs::File::open(path).map_err(|e| io_err(path, e))?;
        Ok(FingerprintRun {
            path: path.to_path_buf(),
            file,
            count,
            index,
            min: fp_at(0),
            max: fp_at(count as usize - 1),
        })
    }

    /// Entries in this run.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// Always false — empty runs are never written.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Total file bytes, for spill accounting.
    pub fn bytes(&self) -> u64 {
        RUN_HEADER_LEN as u64 + self.count * RUN_ENTRY as u64
    }

    /// Appends to `out` the id of every entry whose fingerprint equals
    /// `fp`. One seek plus one block read in the common case; equal
    /// fingerprints spanning a block boundary read the next block too.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the underlying file read fails (the file
    /// was verified at write/open time, so content errors cannot occur
    /// here).
    pub fn lookup(&mut self, fp: u64, out: &mut Vec<u64>) -> Result<(), StoreError> {
        if fp < self.min || fp > self.max {
            return Ok(());
        }
        // Start at the last block whose first fingerprint is strictly
        // below fp (a run of equal fingerprints can begin mid-block
        // and continue into blocks whose first entry equals fp), then
        // scan forward until the sorted entries pass fp.
        let start = self.index.partition_point(|&(first, _)| first < fp);
        let mut entry = self.index[start.saturating_sub(1)].1;
        let mut buf = vec![0u8; RUN_BLOCK * RUN_ENTRY];
        while entry < self.count {
            let take = ((self.count - entry) as usize).min(RUN_BLOCK);
            let offset = RUN_HEADER_LEN as u64 + entry * RUN_ENTRY as u64;
            self.file
                .seek(SeekFrom::Start(offset))
                .map_err(|e| io_err(&self.path, e))?;
            let want = take * RUN_ENTRY;
            self.file
                .read_exact(&mut buf[..want])
                .map_err(|e| io_err(&self.path, e))?;
            for i in 0..take {
                let e_fp =
                    u64::from_le_bytes(buf[i * RUN_ENTRY..i * RUN_ENTRY + 8].try_into().unwrap());
                if e_fp == fp {
                    out.push(u64::from_le_bytes(
                        buf[i * RUN_ENTRY + 8..(i + 1) * RUN_ENTRY].try_into().unwrap(),
                    ));
                } else if e_fp > fp {
                    return Ok(());
                }
            }
            entry += take as u64;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "opentla-store-{tag}-{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn records_round_trip_across_seals() {
        let dir = tmp_dir("roundtrip");
        let mut store = SegmentStore::create(&dir, "arena", 64, 1 << 20).expect("create");
        let records: Vec<Vec<u8>> = (0..200u32)
            .map(|i| i.to_le_bytes().iter().cycle().take(3 + (i as usize % 13)).copied().collect())
            .collect();
        for r in &records {
            store.append(r).expect("append");
        }
        assert!(store.sealed().len() >= 2, "tiny target must seal >1 segment");
        assert_eq!(store.len(), records.len() as u64);
        let mut buf = Vec::new();
        // Read in a scattered order to exercise cache loads/evictions.
        for step in [7usize, 1, 13] {
            for i in (0..records.len()).step_by(step) {
                store.read(i as u64, &mut buf).expect("read");
                assert_eq!(buf, records[i], "record {i}");
            }
        }
        let stats = store.cache_stats();
        assert!(stats.hits + stats.misses > 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn sealed_files_reopen_and_verify() {
        let dir = tmp_dir("reopen");
        let mut store = SegmentStore::create(&dir, "arena", 64, 1 << 20).expect("create");
        for i in 0..100u64 {
            store.append(&i.to_le_bytes()).expect("append");
        }
        store.seal().expect("final seal");
        let mut all = Vec::new();
        for meta in store.sealed() {
            let recs = read_segment(&dir.join(&meta.name), Some(meta)).expect("reopen");
            assert_eq!(recs.len() as u64, meta.records);
            all.extend(recs);
        }
        assert_eq!(all.len(), 100);
        for (i, r) in all.iter().enumerate() {
            assert_eq!(r.as_slice(), (i as u64).to_le_bytes());
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_segments_yield_typed_errors_not_panics() {
        let dir = tmp_dir("corrupt");
        let mut store = SegmentStore::create(&dir, "arena", 64, 1 << 20).expect("create");
        for i in 0..50u64 {
            store.append(&i.to_le_bytes()).expect("append");
        }
        store.seal().expect("seal");
        let meta = store.sealed()[0].clone();
        let path = dir.join(&meta.name);
        let good = fs::read(&path).expect("read sealed file");

        // Truncated file.
        fs::write(&path, &good[..good.len() / 2]).expect("truncate");
        assert!(matches!(
            read_segment(&path, Some(&meta)),
            Err(StoreError::Corrupt { .. }) | Err(StoreError::ChecksumMismatch { .. })
        ));

        // Flipped payload byte.
        let mut flipped = good.clone();
        let last = flipped.len() - 1;
        flipped[last] ^= 0xff;
        fs::write(&path, &flipped).expect("flip");
        assert!(matches!(
            read_segment(&path, Some(&meta)),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        // Wrong magic.
        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xff;
        fs::write(&path, &bad_magic).expect("magic");
        assert!(matches!(
            read_segment(&path, Some(&meta)),
            Err(StoreError::BadMagic { .. })
        ));

        // Header lying about the record count (checksummed header —
        // flip the count *and* recompute nothing: checksum catches it).
        let mut bad_count = good.clone();
        bad_count[20] ^= 1;
        fs::write(&path, &bad_count).expect("count");
        assert!(matches!(
            read_segment(&path, Some(&meta)),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        // Meta disagreement: valid file, wrong expectation.
        fs::write(&path, &good).expect("restore");
        let mut wrong = meta.clone();
        wrong.first += 1;
        assert!(matches!(
            read_segment(&path, Some(&wrong)),
            Err(StoreError::MetaMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fingerprint_runs_answer_membership() {
        let dir = tmp_dir("runs");
        // Sorted entries with duplicate fingerprints straddling a
        // block boundary.
        let mut entries: Vec<(u64, u64)> = (0..1000u64).map(|i| (i * 3, i)).collect();
        for dup in 0..4 {
            entries.push(((RUN_BLOCK as u64 - 1) * 3, 5000 + dup));
        }
        entries.sort();
        let path = dir.join("visited-0.run");
        let mut run = FingerprintRun::write(&path, &entries).expect("write");
        let mut out = Vec::new();
        run.lookup(3 * 17, &mut out).expect("lookup");
        assert_eq!(out, vec![17]);
        out.clear();
        run.lookup(1, &mut out).expect("lookup miss");
        assert!(out.is_empty());
        out.clear();
        run.lookup((RUN_BLOCK as u64 - 1) * 3, &mut out).expect("dup lookup");
        assert_eq!(out.len(), 5, "one original + four duplicates");
        // Reopen path verifies checksum and answers identically.
        let mut reopened = FingerprintRun::open(&path).expect("reopen");
        out.clear();
        reopened.lookup(3 * 999, &mut out).expect("lookup");
        assert_eq!(out, vec![999]);
        // Corruption is typed.
        let mut bytes = fs::read(&path).expect("read");
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&path, &bytes).expect("corrupt");
        assert!(matches!(
            FingerprintRun::open(&path),
            Err(StoreError::ChecksumMismatch { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Arbitrary record streams survive the write/seal/reopen/read
        /// cycle byte-for-byte at arbitrary (tiny) segment targets.
        #[test]
        fn prop_segment_round_trip(
            records in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..40), 1..120),
            target in 64usize..512,
            seed in 0u64..u64::MAX,
        ) {
            let dir = std::env::temp_dir().join(format!(
                "opentla-store-prop-{}-{seed}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            let mut store = SegmentStore::create(&dir, "p", target, 2048).unwrap();
            for r in &records {
                store.append(r).unwrap();
            }
            let mut buf = Vec::new();
            for (i, r) in records.iter().enumerate() {
                store.read(i as u64, &mut buf).unwrap();
                prop_assert_eq!(&buf, r);
            }
            // Sealed portion also reopens from disk identically.
            let mut reopened = Vec::new();
            for meta in store.sealed() {
                reopened.extend(read_segment(&store.dir().join(&meta.name), Some(meta)).unwrap());
            }
            for h in store.hot_records() {
                reopened.push(h.to_vec());
            }
            prop_assert_eq!(reopened, records);
            let _ = fs::remove_dir_all(&dir);
        }

        /// Model-based check of the LRU segment cache: replay every
        /// read against a reference model tracking the resident set,
        /// its LRU order, and the byte accounting. After each read the
        /// real counters must equal the model's exactly — any
        /// divergence in eviction order or victim choice shows up as a
        /// hit/miss/eviction mismatch on a later read — and the
        /// resident bytes must respect the budget except for the
        /// deliberate keep-one-segment floor.
        #[test]
        fn prop_lru_cache_matches_model(
            records in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 0..24), 30..120),
            target in 64usize..256,
            budget in 256usize..4096,
            reads in proptest::collection::vec(any::<u64>(), 1..300),
            seed in 0u64..u64::MAX,
        ) {
            let dir = std::env::temp_dir().join(format!(
                "opentla-store-lru-{}-{seed}", std::process::id()));
            let _ = fs::remove_dir_all(&dir);
            let mut store = SegmentStore::create(&dir, "lru", target, budget).unwrap();
            for r in &records {
                store.append(r).unwrap();
            }
            // The model's segment table, from the sealed metadata the
            // store itself reports: resident cost mirrors
            // `LoadedSegment::resident_bytes` (payload incl. length
            // prefixes + one (usize, usize) offset pair per record).
            let segs: Vec<(u64, u64, usize)> = store.sealed().iter()
                .map(|m| (m.first, m.records,
                    m.payload_len as usize
                        + m.records as usize * std::mem::size_of::<(usize, usize)>()))
                .collect();
            let hot_first = store.hot_first();
            let mut lru: Vec<usize> = Vec::new(); // front = coldest
            let (mut hits, mut misses, mut evictions) = (0u64, 0u64, 0u64);
            let mut buf = Vec::new();
            for ix in &reads {
                let idx = ix % records.len() as u64;
                store.read(idx, &mut buf).unwrap();
                prop_assert_eq!(&buf, &records[idx as usize]);
                if idx < hot_first {
                    let seg = match segs.binary_search_by(|s| s.0.cmp(&idx)) {
                        Ok(i) => i,
                        Err(i) => i - 1,
                    };
                    if let Some(pos) = lru.iter().position(|&s| s == seg) {
                        hits += 1;
                        lru.remove(pos);
                        lru.push(seg);
                    } else {
                        misses += 1;
                        lru.push(seg);
                        let mut resident: usize =
                            lru.iter().map(|&s| segs[s].2).sum();
                        while resident > budget && lru.len() > 1 {
                            let victim = lru.remove(0);
                            resident -= segs[victim].2;
                            evictions += 1;
                        }
                    }
                }
                let stats = store.cache_stats();
                let resident: usize = lru.iter().map(|&s| segs[s].2).sum();
                prop_assert_eq!(stats.hits, hits);
                prop_assert_eq!(stats.misses, misses);
                prop_assert_eq!(stats.evictions, evictions);
                prop_assert_eq!(stats.resident_bytes, resident as u64);
                prop_assert!(
                    resident <= budget || lru.len() == 1,
                    "over budget ({resident} > {budget}) with {} resident segments",
                    lru.len()
                );
            }
            let _ = fs::remove_dir_all(&dir);
        }

        /// Sorted runs answer exactly the multiset of ids per
        /// fingerprint, and corrupting any byte yields a typed error.
        #[test]
        fn prop_run_lookup_and_corruption(
            mut entries in proptest::collection::vec((0u64..5000, any::<u64>()), 1..400),
            probe in 0u64..5000,
            flip in any::<u64>(),
        ) {
            entries.sort();
            let dir = std::env::temp_dir().join(format!(
                "opentla-run-prop-{}", std::process::id()));
            let _ = fs::create_dir_all(&dir);
            let path = dir.join("r.run");
            let mut run = FingerprintRun::write(&path, &entries).unwrap();
            let mut got = Vec::new();
            run.lookup(probe, &mut got).unwrap();
            got.sort_unstable();
            let mut want: Vec<u64> = entries.iter()
                .filter(|&&(fp, _)| fp == probe)
                .map(|&(_, id)| id)
                .collect();
            want.sort_unstable();
            prop_assert_eq!(got, want);
            let mut bytes = fs::read(&path).unwrap();
            let i = (flip % bytes.len() as u64) as usize;
            bytes[i] ^= 0xff;
            fs::write(&path, &bytes).unwrap();
            prop_assert!(FingerprintRun::open(&path).is_err());
            let _ = fs::remove_file(&path);
        }
    }
}
