//! Data values assigned to variables by states.

use std::fmt;
use std::sync::Arc;

/// A TLA data value.
///
/// The fragment of TLA mechanized here needs booleans, integers,
/// strings, tuples, and finite sequences. Sequences and tuples are both
/// ordered collections but are kept distinct so that a channel triple
/// `⟨c.sig, c.ack, c.val⟩` can never be confused with a queue content
/// sequence — the paper's queue example relies on both.
///
/// `Value` is cheap to clone: compound values share their contents via
/// [`Arc`].
///
/// # Example
///
/// ```
/// use opentla_kernel::Value;
/// let q = Value::seq(vec![Value::Int(37), Value::Int(4)]);
/// assert_eq!(q.len().unwrap(), 2);
/// assert_eq!(q.head().unwrap(), Value::Int(37));
/// ```
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A boolean.
    Bool(bool),
    /// A (bounded, machine-width) integer.
    Int(i64),
    /// An immutable string.
    Str(Arc<str>),
    /// A tuple `⟨v1, …, vk⟩`.
    Tuple(Arc<[Value]>),
    /// A finite sequence `⟨v1, …, vk⟩` (the paper's `ρ`).
    Seq(Arc<[Value]>),
}

impl Value {
    /// Builds a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Builds a tuple value from its components.
    pub fn tuple(items: impl IntoIterator<Item = Value>) -> Self {
        Value::Tuple(items.into_iter().collect())
    }

    /// Builds a sequence value from its elements.
    pub fn seq(items: impl IntoIterator<Item = Value>) -> Self {
        Value::Seq(items.into_iter().collect())
    }

    /// The empty sequence `⟨⟩`.
    pub fn empty_seq() -> Self {
        Value::Seq(Arc::from([]))
    }

    /// Returns the boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the integer payload, if this is an integer.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the elements, if this is a sequence or tuple.
    pub fn as_items(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) | Value::Tuple(items) => Some(items),
            _ => None,
        }
    }

    /// Length of a sequence or tuple (the paper's `|ρ|`).
    pub fn len(&self) -> Option<usize> {
        self.as_items().map(<[Value]>::len)
    }

    /// Whether this is a sequence or tuple with no elements.
    pub fn is_empty(&self) -> Option<bool> {
        self.len().map(|n| n == 0)
    }

    /// `Head(ρ)`: the first element of a nonempty sequence or tuple.
    pub fn head(&self) -> Option<Value> {
        self.as_items().and_then(<[Value]>::first).cloned()
    }

    /// `Tail(ρ)`: everything but the first element of a nonempty
    /// sequence; the result is a sequence.
    pub fn tail(&self) -> Option<Value> {
        let items = self.as_items()?;
        if items.is_empty() {
            None
        } else {
            Some(Value::Seq(items[1..].iter().cloned().collect()))
        }
    }

    /// `ρ ∘ τ`: concatenation of two sequences (or tuples, yielding a
    /// sequence).
    pub fn concat(&self, other: &Value) -> Option<Value> {
        let a = self.as_items()?;
        let b = other.as_items()?;
        Some(Value::Seq(a.iter().chain(b.iter()).cloned().collect()))
    }

    /// A short name for the value's kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Str(_) => "string",
            Value::Tuple(_) => "tuple",
            Value::Seq(_) => "sequence",
        }
    }
}

impl Default for Value {
    /// The default value is `FALSE`; it exists so containers of values
    /// can be built incrementally, not because `FALSE` is distinguished.
    fn default() -> Self {
        Value::Bool(false)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn list(f: &mut fmt::Formatter<'_>, items: &[Value]) -> fmt::Result {
            for (i, v) in items.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v}")?;
            }
            Ok(())
        }
        match self {
            Value::Bool(b) => write!(f, "{}", if *b { "TRUE" } else { "FALSE" }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Tuple(items) => {
                write!(f, "⟨")?;
                list(f, items)?;
                write!(f, "⟩")
            }
            Value::Seq(items) => {
                write!(f, "«")?;
                list(f, items)?;
                write!(f, "»")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequence_ops_match_paper_notation() {
        let rho = Value::seq(vec![Value::Int(37), Value::Int(4), Value::Int(19)]);
        assert_eq!(rho.len(), Some(3));
        assert_eq!(rho.head(), Some(Value::Int(37)));
        assert_eq!(
            rho.tail(),
            Some(Value::seq(vec![Value::Int(4), Value::Int(19)]))
        );
        let tau = Value::seq(vec![Value::Int(8)]);
        assert_eq!(
            rho.concat(&tau),
            Some(Value::seq(vec![
                Value::Int(37),
                Value::Int(4),
                Value::Int(19),
                Value::Int(8)
            ]))
        );
    }

    #[test]
    fn empty_sequence() {
        let e = Value::empty_seq();
        assert_eq!(e.len(), Some(0));
        assert_eq!(e.is_empty(), Some(true));
        assert_eq!(e.head(), None);
        assert_eq!(e.tail(), None);
    }

    #[test]
    fn scalar_accessors() {
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Int(5).as_bool(), None);
        assert_eq!(Value::Int(5).as_int(), Some(5));
        assert_eq!(Value::Bool(true).as_int(), None);
        assert_eq!(Value::Int(3).len(), None);
    }

    #[test]
    fn tuple_vs_seq_distinct() {
        let t = Value::tuple(vec![Value::Int(1)]);
        let s = Value::seq(vec![Value::Int(1)]);
        assert_ne!(t, s);
        // But both support the sequence accessors.
        assert_eq!(t.head(), s.head());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Value::Bool(true).to_string(), "TRUE");
        assert_eq!(Value::Int(-3).to_string(), "-3");
        assert_eq!(Value::str("hi").to_string(), "\"hi\"");
        assert_eq!(
            Value::tuple(vec![Value::Int(0), Value::Int(1)]).to_string(),
            "⟨0, 1⟩"
        );
        assert_eq!(Value::empty_seq().to_string(), "«»");
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from(7i64), Value::Int(7));
        assert_eq!(Value::from("x"), Value::str("x"));
    }
}
