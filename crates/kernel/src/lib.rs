//! # opentla-kernel
//!
//! The logical kernel for the `opentla` workspace: a mechanization of the
//! TLA fragment used by Abadi & Lamport in *Open Systems in TLA* (PODC
//! 1994).
//!
//! This crate defines the *syntax* of the logic and its building blocks:
//!
//! * [`Value`] — the data values states assign to variables (booleans,
//!   integers, strings, tuples, and finite sequences);
//! * [`VarId`] / [`Vars`] — interned flexible variables with optional
//!   finite [`Domain`]s;
//! * [`State`] — an assignment of values to variables;
//! * [`codec`] — the canonical binary encoding of values and states
//!   (what the checker's checkpoint snapshots persist);
//! * [`Expr`] — state functions and actions (expressions over primed and
//!   unprimed variables);
//! * [`Formula`] — the temporal formula AST, including the paper's
//!   operators: `□[A]_v`, `WF`/`SF`, `∃` (hiding), the
//!   assumption/guarantee operator `E ⊳ M` ([`Formula::WhilePlus`]), the
//!   `+v` operator ([`Formula::Plus`]), orthogonality `E ⊥ M`
//!   ([`Formula::Ortho`]), and the closure `C(F)`
//!   ([`Formula::Closure`]);
//! * substitution and renaming utilities used for the paper's
//!   `F[1]`, `F[2]`, `F[dbl]` constructions and for refinement mappings.
//!
//! Evaluation of formulas over behaviors lives in `opentla-semantics`;
//! model checking lives in `opentla-check`; the assumption/guarantee
//! calculus itself lives in the `opentla` crate.
//!
//! # Example
//!
//! ```
//! use opentla_kernel::{Vars, Domain, Value, Expr, Formula};
//!
//! let mut vars = Vars::new();
//! let c = vars.declare("c", Domain::bits());
//! // The state predicate `c = 0` and the formula `□[false]_c ∧ (c = 0)`,
//! // i.e. "c is always 0" in canonical form.
//! let init = Expr::var(c).eq(Expr::int(0));
//! let spec = Formula::pred(init).and(Formula::act_box(Expr::bool(false), vec![c]));
//! assert_eq!(spec.display(&vars).to_string(), "((c = 0) ∧ □[FALSE]_⟨c⟩)");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod action;
pub mod codec;
mod error;
mod expr;
mod footprint;
mod formula;
mod packed;
pub mod scc;
mod state;
pub mod store;
mod subst;
mod value;
mod var;

pub use action::{box_action, determined_primes, enabled_vars, unchanged};
pub use error::{EvalError, KernelError};
pub use expr::{expect_bool, BinOp, Expr, ExprDisplay, UnOp};
pub use footprint::Footprint;
pub use packed::PackedLayout;
pub use scc::{tarjan_sccs_with, SccScratch};
pub use formula::FormulaDisplay;
pub use state::StateDisplay;
pub use formula::{Fairness, FairnessKind, Formula};
pub use state::{State, StatePair};
pub use subst::{prime_expr, Renaming, Substitution};
pub use value::Value;
pub use var::{Domain, VarId, VarSet, Vars};
