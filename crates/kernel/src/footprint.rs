//! Read/write variable footprints of guarded commands.
//!
//! A guarded command `guard → (v₁ := e₁, …, vₙ := eₙ)` **reads** the
//! unprimed variables of its guard and update right-hand sides, and
//! **writes** its update targets. Two commands whose footprints do not
//! conflict commute and cannot enable or disable one another — the
//! syntactic independence that licenses ample-set partial-order
//! reduction over the paper's canonical interleaving form: a
//! component's next-state relation only touches variables it owns
//! (`N ⇒ e′ = e` for everything else), so commands of different
//! components are independent exactly when their footprints are
//! disjoint in the sense of [`Footprint::independent`].

use crate::expr::Expr;
use crate::var::{VarId, VarSet};

/// The variables a guarded command reads and writes.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    reads: VarSet,
    writes: VarSet,
}

impl Footprint {
    /// The empty footprint (reads nothing, writes nothing).
    pub fn new() -> Footprint {
        Footprint::default()
    }

    /// The footprint of a guarded command: `reads` collects the
    /// unprimed variables of the guard and of every update right-hand
    /// side; `writes` collects the update targets.
    ///
    /// Guards and update expressions of a well-formed command are
    /// state functions (no primed variables), so unprimed variables
    /// are the whole read set.
    pub fn of_command<'a>(
        guard: &Expr,
        updates: impl IntoIterator<Item = (VarId, &'a Expr)>,
    ) -> Footprint {
        let mut reads = guard.unprimed_vars();
        let mut writes = VarSet::new();
        for (target, rhs) in updates {
            writes.insert(target);
            reads.union_with(&rhs.unprimed_vars());
        }
        Footprint { reads, writes }
    }

    /// The variables read (guard plus update right-hand sides).
    pub fn reads(&self) -> &VarSet {
        &self.reads
    }

    /// The variables written (update targets).
    pub fn writes(&self) -> &VarSet {
        &self.writes
    }

    /// Whether this command writes any variable of `vars` — the
    /// *visibility* test of partial-order reduction: a command writing
    /// an observable variable may change a property's truth value and
    /// must never be deferred by a proper ample set.
    pub fn writes_any(&self, vars: &VarSet) -> bool {
        !self.writes.is_disjoint(vars)
    }

    /// Whether two commands are (syntactically) independent: neither
    /// writes a variable the other reads or writes. Independent
    /// commands commute — executing them in either order reaches the
    /// same state — and neither can enable or disable the other, since
    /// enabledness depends only on read variables.
    pub fn independent(&self, other: &Footprint) -> bool {
        self.writes.is_disjoint(&other.reads)
            && self.writes.is_disjoint(&other.writes)
            && other.writes.is_disjoint(&self.reads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::var::{Domain, Vars};

    fn three_vars() -> (Vars, VarId, VarId, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, 3));
        let y = vars.declare("y", Domain::int_range(0, 3));
        let z = vars.declare("z", Domain::int_range(0, 3));
        (vars, x, y, z)
    }

    #[test]
    fn collects_reads_and_writes() {
        let (_vars, x, y, z) = three_vars();
        let guard = Expr::var(x).lt(Expr::int(3));
        let rhs = Expr::var(y).add(Expr::int(1));
        let fp = Footprint::of_command(&guard, [(z, &rhs)]);
        assert!(fp.reads().contains(x));
        assert!(fp.reads().contains(y));
        assert!(!fp.reads().contains(z));
        assert!(fp.writes().contains(z));
        assert_eq!(fp.writes().len(), 1);
    }

    #[test]
    fn independence_is_footprint_disjointness() {
        let (_vars, x, y, z) = three_vars();
        let inc_x = Footprint::of_command(
            &Expr::var(x).lt(Expr::int(3)),
            [(x, &Expr::var(x).add(Expr::int(1)))],
        );
        let inc_y = Footprint::of_command(
            &Expr::var(y).lt(Expr::int(3)),
            [(y, &Expr::var(y).add(Expr::int(1)))],
        );
        // Disjoint variables: independent both ways.
        assert!(inc_x.independent(&inc_y));
        assert!(inc_y.independent(&inc_x));
        // Writing a variable the other reads: dependent.
        let copy_x_to_z =
            Footprint::of_command(&Expr::bool(true), [(z, &Expr::var(x))]);
        assert!(!inc_x.independent(&copy_x_to_z));
        // Reading without writing never conflicts with a pure reader.
        let watch_x = Footprint::of_command(&Expr::var(x).eq(Expr::int(0)), []);
        assert!(watch_x.independent(&copy_x_to_z));
    }

    #[test]
    fn visibility_is_a_write_test() {
        let (_vars, x, y, _z) = three_vars();
        let fp = Footprint::of_command(
            &Expr::var(y).lt(Expr::int(3)),
            [(x, &Expr::var(y))],
        );
        let observe_x: VarSet = [x].into_iter().collect();
        let observe_y: VarSet = [y].into_iter().collect();
        assert!(fp.writes_any(&observe_x));
        assert!(!fp.writes_any(&observe_y), "reads are not visible writes");
    }
}
