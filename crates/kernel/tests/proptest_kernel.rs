//! Property-based tests for the kernel: evaluation determinism,
//! renaming/substitution laws, and prime semantics, over randomly
//! generated expressions.

use opentla_kernel::{
    prime_expr, Domain, Expr, Renaming, State, StatePair, Substitution, Value, VarId,
    Vars,
};
use proptest::prelude::*;

fn world() -> (Vars, VarId, VarId) {
    let mut vars = Vars::new();
    let a = vars.declare("a", Domain::int_range(0, 3));
    let b = vars.declare("b", Domain::int_range(0, 3));
    (vars, a, b)
}

/// Random *state functions* (no primes) over two small integers,
/// producing integer-valued expressions.
fn arb_int_expr() -> BoxedStrategy<Expr> {
    let (_, a, b) = world();
    let leaf = prop_oneof![
        (0..4i64).prop_map(Expr::int),
        Just(Expr::var(a)),
        Just(Expr::var(b)),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.add(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.sub(y)),
            (inner.clone(), inner.clone(), inner.clone())
                .prop_map(|(c, x, y)| c.clone().eq(c).ite(x, y)),
        ]
    })
    .boxed()
}

/// Random boolean state functions.
fn arb_bool_expr() -> BoxedStrategy<Expr> {
    let int = arb_int_expr();
    let leaf = prop_oneof![
        Just(Expr::bool(true)),
        Just(Expr::bool(false)),
        (int.clone(), int.clone()).prop_map(|(x, y)| x.eq(y)),
        (int.clone(), int.clone()).prop_map(|(x, y)| x.lt(y)),
        (int.clone(), int.clone()).prop_map(|(x, y)| x.le(y)),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Expr::not),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.and(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.or(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.implies(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.equiv(y)),
        ]
    })
    .boxed()
}

fn arb_state() -> impl Strategy<Value = State> {
    (0..4i64, 0..4i64).prop_map(|(x, y)| State::new(vec![Value::Int(x), Value::Int(y)]))
}

proptest! {
    /// Evaluation is deterministic and total on in-domain states.
    #[test]
    fn eval_deterministic(e in arb_bool_expr(), s in arb_state()) {
        let v1 = e.holds_state(&s).unwrap();
        let v2 = e.holds_state(&s).unwrap();
        prop_assert_eq!(v1, v2);
    }

    /// A swap renaming is an involution.
    #[test]
    fn swap_renaming_involutive(e in arb_bool_expr()) {
        let (_, a, b) = world();
        let swap = Renaming::new([(a, b), (b, a)]);
        let twice = swap.expr(&swap.expr(&e));
        prop_assert_eq!(twice, e);
    }

    /// Renaming commutes with evaluation under the swapped state.
    #[test]
    fn renaming_respects_semantics(e in arb_bool_expr(), s in arb_state()) {
        let (_, a, b) = world();
        let swap = Renaming::new([(a, b), (b, a)]);
        let swapped_state =
            State::new(vec![s.get(b).clone(), s.get(a).clone()]);
        let direct = e.holds_state(&swapped_state).unwrap();
        let renamed = swap.expr(&e).holds_state(&s).unwrap();
        prop_assert_eq!(direct, renamed);
    }

    /// The empty substitution is the identity.
    #[test]
    fn empty_substitution_is_identity(e in arb_bool_expr()) {
        let sub = Substitution::default();
        prop_assert_eq!(sub.expr(&e).unwrap(), e);
    }

    /// Substitution respects semantics: evaluating `e[x ↦ f]` on `s`
    /// equals evaluating `e` on `s` with `x` reassigned to `f(s)`.
    #[test]
    fn substitution_respects_semantics(
        e in arb_bool_expr(),
        f in arb_int_expr(),
        s in arb_state(),
    ) {
        let (_, a, _) = world();
        let sub = Substitution::new([(a, f.clone())]);
        let mapped = sub.expr(&e).unwrap();
        let fa = f.eval_state(&s).unwrap();
        let adjusted = s.with(&[(a, fa)]);
        prop_assert_eq!(
            mapped.holds_state(&s).unwrap(),
            e.holds_state(&adjusted).unwrap()
        );
    }

    /// Priming shifts evaluation to the second state:
    /// `e'⟨s,t⟩ = e(t)`.
    #[test]
    fn prime_evaluates_on_next_state(
        e in arb_int_expr(),
        s in arb_state(),
        t in arb_state(),
    ) {
        let primed = prime_expr(&e).unwrap();
        prop_assert_eq!(
            primed.eval_action(StatePair::new(&s, &t)).unwrap(),
            e.eval_state(&t).unwrap()
        );
    }

    /// State functions evaluate identically as actions on a stutter.
    #[test]
    fn state_fn_ignores_next_state(e in arb_bool_expr(), s in arb_state(), t in arb_state()) {
        prop_assert_eq!(
            e.holds_state(&s).unwrap(),
            e.holds_action(StatePair::new(&s, &t)).unwrap()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Sequence laws: `Head(⟨v⟩ ∘ ρ) = v`, `Tail(⟨v⟩ ∘ ρ) = ρ`,
    /// `|ρ ∘ τ| = |ρ| + |τ|`, and concat associativity.
    #[test]
    fn sequence_laws(
        xs in proptest::collection::vec(0..5i64, 0..4),
        ys in proptest::collection::vec(0..5i64, 0..4),
        zs in proptest::collection::vec(0..5i64, 0..4),
        v in 0..5i64,
    ) {
        let seq = |items: &[i64]| Value::seq(items.iter().map(|i| Value::Int(*i)));
        let rho = seq(&xs);
        let tau = seq(&ys);
        let ups = seq(&zs);
        let single = seq(&[v]);

        let cons = single.concat(&rho).unwrap();
        prop_assert_eq!(cons.head().unwrap(), Value::Int(v));
        prop_assert_eq!(cons.tail().unwrap(), rho.clone());
        prop_assert_eq!(
            rho.concat(&tau).unwrap().len().unwrap(),
            xs.len() + ys.len()
        );
        let left = rho.concat(&tau).unwrap().concat(&ups).unwrap();
        let right = rho.concat(&tau.concat(&ups).unwrap()).unwrap();
        prop_assert_eq!(left, right);
    }
}
