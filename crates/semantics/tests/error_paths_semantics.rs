//! Error paths of the semantics engine: universe requirements and
//! search budgets surface as typed errors, never panics.

use opentla_kernel::{Domain, Expr, Formula, State, Value, Vars};
use opentla_semantics::{eval, EvalCtx, Lasso, SemanticsError, Universe};

fn bit_world() -> (Vars, opentla_kernel::VarId) {
    let mut vars = Vars::new();
    let x = vars.declare("x", Domain::bits());
    (vars, x)
}

fn stutter0() -> Lasso {
    Lasso::stutter(State::new(vec![Value::Int(0)]))
}

#[test]
fn fairness_needs_a_universe() {
    let (_, x) = bit_world();
    let wf = Formula::wf(Expr::prime(x).ne(Expr::var(x)), vec![x]);
    let err = eval(&wf, &stutter0(), &EvalCtx::default()).unwrap_err();
    assert!(matches!(err, SemanticsError::NeedsUniverse { construct: "WF" }));
    let sf = Formula::sf(Expr::prime(x).ne(Expr::var(x)), vec![x]);
    let err = eval(&sf, &stutter0(), &EvalCtx::default()).unwrap_err();
    assert!(matches!(err, SemanticsError::NeedsUniverse { construct: "SF" }));
}

#[test]
fn exists_needs_a_universe() {
    let (_, x) = bit_world();
    let f = Formula::exists(vec![x], Formula::pred(Expr::var(x).eq(Expr::int(1))));
    let err = eval(&f, &stutter0(), &EvalCtx::default()).unwrap_err();
    assert!(matches!(err, SemanticsError::NeedsUniverse { construct: "∃" }));
}

#[test]
fn exists_budget_is_typed() {
    let (vars, x) = bit_world();
    let mut ctx = EvalCtx::with_universe(Universe::new(vars));
    ctx.search_budget = 0;
    let f = Formula::exists(vec![x], Formula::pred(Expr::var(x).eq(Expr::int(1))));
    let err = eval(&f, &stutter0(), &ctx).unwrap_err();
    assert!(matches!(
        err,
        SemanticsError::SearchBudgetExceeded { construct: "∃", .. }
    ));
}

#[test]
fn closure_of_liveness_needs_universe() {
    let (_, x) = bit_world();
    // C(◇(x = 1)) requires extension search.
    let f = Formula::pred(Expr::var(x).eq(Expr::int(1)))
        .eventually()
        .closure();
    let err = eval(&f, &stutter0(), &EvalCtx::default()).unwrap_err();
    assert!(matches!(err, SemanticsError::NeedsUniverse { .. }));
}

#[test]
fn type_errors_propagate_through_temporal_operators() {
    let (_, x) = bit_world();
    // Head of an integer is a type error, buried under □◇.
    let bad = Formula::pred(Expr::var(x).head().eq(Expr::int(0)))
        .eventually()
        .always();
    let err = eval(&bad, &stutter0(), &EvalCtx::default()).unwrap_err();
    assert!(matches!(err, SemanticsError::Eval(_)));
    // And the error's Display names the operator.
    assert!(err.to_string().contains("Head"), "{err}");
}

#[test]
fn out_of_domain_states_still_evaluate() {
    // The evaluator itself is domain-agnostic (domains matter for
    // enabledness and enumeration): a state outside the declared
    // domain evaluates fine.
    let (_, x) = bit_world();
    let sigma = Lasso::stutter(State::new(vec![Value::Int(7)]));
    let f = Formula::pred(Expr::var(x).eq(Expr::int(7)));
    assert!(eval(&f, &sigma, &EvalCtx::default()).unwrap());
}

#[test]
fn while_plus_with_unsupported_env_is_typed() {
    let (_, x) = bit_world();
    // ⊳ with a non-canonical assumption and no universe: the prefix
    // machinery reports the missing universe rather than guessing.
    let env = Formula::pred(Expr::var(x).eq(Expr::int(1))).eventually();
    let sys = Formula::pred(Expr::var(x).eq(Expr::int(0)));
    let f = env.while_plus(sys);
    let err = eval(&f, &stutter0(), &EvalCtx::default()).unwrap_err();
    assert!(matches!(err, SemanticsError::NeedsUniverse { .. }));
}
