//! Property-based tests for the trace semantics: suffix algebra,
//! boolean homomorphism, prefix monotonicity, and closure coherence.

use opentla_kernel::{Domain, Expr, Formula, VarId, Vars};
use opentla_semantics::{
    eval, first_failing_prefix, prefix_sat, random_lasso, EvalCtx, Universe,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn world() -> (Universe, VarId, VarId) {
    let mut vars = Vars::new();
    let x = vars.declare("x", Domain::bits());
    let y = vars.declare("y", Domain::int_range(0, 2));
    (Universe::new(vars), x, y)
}

fn canonical(x: VarId, y: VarId) -> Formula {
    // x starts 0 and every step copies y's parity into x (or stutters).
    Formula::pred(Expr::var(x).eq(Expr::int(0))).and(Formula::act_box(
        Expr::all([
            Expr::prime(x).eq(Expr::var(y).eq(Expr::int(1)).ite(
                Expr::int(1),
                Expr::int(0),
            )),
            Expr::prime(y).eq(Expr::var(y)),
        ]),
        vec![x],
    ))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Suffix composition: `σ.suffix(i).suffix(j)` and `σ.suffix(i+j)`
    /// denote the same behavior (state-by-state).
    #[test]
    fn suffix_composition(seed in any::<u64>(), i in 0usize..6, j in 0usize..6) {
        let (universe, _, _) = world();
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma = random_lasso(&universe, 5, &mut rng);
        let composed = sigma.suffix(i).suffix(j);
        let direct = sigma.suffix(i + j);
        for k in 0..sigma.len() + 4 {
            prop_assert_eq!(composed.state(k), direct.state(k), "position {}", k);
        }
    }

    /// Boolean homomorphism: evaluation commutes with ∧, ∨, ¬, ⇒, ≡.
    #[test]
    fn boolean_homomorphism(seed in any::<u64>()) {
        let (universe, x, y) = world();
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma = random_lasso(&universe, 5, &mut rng);
        let ctx = EvalCtx::default();
        let p = Formula::pred(Expr::var(x).eq(Expr::int(0))).always();
        let q = Formula::pred(Expr::var(y).eq(Expr::int(1))).eventually();
        let pv = eval(&p, &sigma, &ctx).unwrap();
        let qv = eval(&q, &sigma, &ctx).unwrap();
        prop_assert_eq!(eval(&p.clone().and(q.clone()), &sigma, &ctx).unwrap(), pv && qv);
        prop_assert_eq!(eval(&p.clone().or(q.clone()), &sigma, &ctx).unwrap(), pv || qv);
        prop_assert_eq!(eval(&p.clone().not(), &sigma, &ctx).unwrap(), !pv);
        prop_assert_eq!(
            eval(&p.clone().implies(q.clone()), &sigma, &ctx).unwrap(),
            !pv || qv
        );
        prop_assert_eq!(eval(&p.equiv(q), &sigma, &ctx).unwrap(), pv == qv);
    }

    /// Prefix satisfaction is antitone: a satisfiable longer prefix
    /// means every shorter prefix is satisfiable too.
    #[test]
    fn prefix_antitone(seed in any::<u64>(), n in 1usize..8) {
        let (universe, x, y) = world();
        let f = canonical(x, y);
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma = random_lasso(&universe, 6, &mut rng);
        let ctx = EvalCtx::default();
        let longer = prefix_sat(&f, &sigma.prefix(n + 1), &ctx).unwrap();
        let shorter = prefix_sat(&f, &sigma.prefix(n), &ctx).unwrap();
        prop_assert!(!longer || shorter);
    }

    /// Closure coherence: `σ ⊨ C(F)` iff the first failing prefix is
    /// `None`, iff every individual prefix up to the lasso bound
    /// satisfies `F`.
    #[test]
    fn closure_coherence(seed in any::<u64>()) {
        let (universe, x, y) = world();
        let f = canonical(x, y);
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma = random_lasso(&universe, 6, &mut rng);
        let ctx = EvalCtx::default();
        let closure = eval(&f.clone().closure(), &sigma, &ctx).unwrap();
        let ffp = first_failing_prefix(&f, &sigma, &ctx).unwrap();
        prop_assert_eq!(closure, ffp.is_none());
        let manual = (1..=sigma.len() + 1)
            .all(|n| prefix_sat(&f, &sigma.prefix(n), &ctx).unwrap());
        prop_assert_eq!(closure, manual);
    }

    /// For a canonical safety formula, lasso satisfaction equals
    /// closure satisfaction (safety = its own closure), evaluated two
    /// independent ways.
    #[test]
    fn safety_lasso_vs_closure(seed in any::<u64>()) {
        let (universe, x, y) = world();
        let f = canonical(x, y);
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma = random_lasso(&universe, 6, &mut rng);
        let ctx = EvalCtx::default();
        prop_assert_eq!(
            eval(&f, &sigma, &ctx).unwrap(),
            eval(&f.clone().closure(), &sigma, &ctx).unwrap()
        );
    }

    /// `□` distributes over `∧` and `◇` over `∨`.
    #[test]
    fn temporal_distribution(seed in any::<u64>()) {
        let (universe, x, y) = world();
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma = random_lasso(&universe, 5, &mut rng);
        let ctx = EvalCtx::default();
        let p = Formula::pred(Expr::var(x).eq(Expr::int(0)));
        let q = Formula::pred(Expr::var(y).ne(Expr::int(2)));
        prop_assert_eq!(
            eval(&p.clone().and(q.clone()).always(), &sigma, &ctx).unwrap(),
            eval(&p.clone().always().and(q.clone().always()), &sigma, &ctx).unwrap()
        );
        prop_assert_eq!(
            eval(&p.clone().or(q.clone()).eventually(), &sigma, &ctx).unwrap(),
            eval(
                &p.clone().eventually().or(q.clone().eventually()),
                &sigma,
                &ctx
            )
            .unwrap()
        );
    }

    /// The `∃` search is sound: whenever it claims a witness for
    /// `∃y : □(y = x)`, direct substitution of the witness idea (copy
    /// x) confirms it; and the unsatisfiable `∃y : y = 0 ∧ y = 1`
    /// always fails.
    #[test]
    fn exists_soundness(seed in any::<u64>()) {
        let (universe, x, y) = world();
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma = random_lasso(&universe, 4, &mut rng);
        let ctx = EvalCtx::with_universe(universe.clone());
        let copy = Formula::exists(
            vec![y],
            Formula::pred(Expr::var(y).eq(Expr::var(x))).always(),
        );
        prop_assert!(eval(&copy, &sigma, &ctx).unwrap(), "copy witness always exists");
        let absurd = Formula::exists(
            vec![y],
            Formula::pred(Expr::all([
                Expr::var(y).eq(Expr::int(0)),
                Expr::var(y).eq(Expr::int(1)),
            ])),
        );
        prop_assert!(!eval(&absurd, &sigma, &ctx).unwrap());
    }
}
