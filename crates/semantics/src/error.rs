//! Error type for the semantics engine.

use opentla_kernel::EvalError;
use std::fmt;

/// An error raised while evaluating formulas over behaviors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SemanticsError {
    /// A behavior must contain at least one state.
    EmptyBehavior,
    /// The loop start of a lasso must index a stored state.
    BadLoopStart {
        /// Offending loop start.
        loop_start: usize,
        /// Number of stored states.
        len: usize,
    },
    /// Expression evaluation failed.
    Eval(EvalError),
    /// The construct needs a [`crate::Universe`] (to decide `Enabled`,
    /// search `∃` witnesses, or search prefix extensions) but the
    /// evaluation context has none.
    NeedsUniverse {
        /// The construct that needed it, e.g. `"WF"` or `"∃"`.
        construct: &'static str,
    },
    /// A bounded search was requested with an exhausted budget, so the
    /// result would not be trustworthy.
    SearchBudgetExceeded {
        /// The construct whose search overflowed.
        construct: &'static str,
        /// The configured budget that was exceeded.
        budget: usize,
    },
}

impl fmt::Display for SemanticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SemanticsError::EmptyBehavior => write!(f, "behavior must be nonempty"),
            SemanticsError::BadLoopStart { loop_start, len } => write!(
                f,
                "loop start {loop_start} out of range for {len} stored states"
            ),
            SemanticsError::Eval(e) => write!(f, "{e}"),
            SemanticsError::NeedsUniverse { construct } => write!(
                f,
                "evaluating {construct} requires a finite universe in the context"
            ),
            SemanticsError::SearchBudgetExceeded { construct, budget } => write!(
                f,
                "bounded search for {construct} exceeded its budget of {budget}"
            ),
        }
    }
}

impl std::error::Error for SemanticsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SemanticsError::Eval(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EvalError> for SemanticsError {
    fn from(e: EvalError) -> Self {
        SemanticsError::Eval(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays() {
        assert!(SemanticsError::EmptyBehavior.to_string().contains("nonempty"));
        let e = SemanticsError::NeedsUniverse { construct: "WF" };
        assert!(e.to_string().contains("WF"));
        let e = SemanticsError::SearchBudgetExceeded {
            construct: "∃",
            budget: 10,
        };
        assert!(e.to_string().contains("10"));
    }
}
