//! Prefix satisfaction.
//!
//! For a formula `F` and a finite behavior `ρ`, the paper defines
//! (Section 2.4): *`ρ` satisfies `F` iff `ρ` can be extended to an
//! infinite behavior that satisfies `F`*. The operators `C`, `⊳`, `+v`,
//! and `⊥` all quantify over prefix satisfaction, so making it
//! executable makes them executable.
//!
//! Two procedures are provided:
//!
//! * For **safety-canonical** formulas (`Init ∧ □P ∧ □[A]_v`
//!   conjunctions), prefix satisfaction is decided *exactly* by direct
//!   inspection: stuttering forever on the last state is a satisfying
//!   extension iff the prefix itself violates nothing.
//! * For arbitrary formulas, a **bounded extension search** over a
//!   finite [`Universe`](crate::Universe) enumerates lasso extensions
//!   of the prefix (up to a configurable number of appended states) and
//!   evaluates the formula on each. This is sound when it finds a
//!   witness and *bounded-complete* otherwise: a `false` answer means
//!   no lasso extension within the budget satisfies the formula. The
//!   production proof rules in the `opentla` crate never rely on the
//!   bounded path — the paper's Propositions 1–4 exist precisely to
//!   confine reasoning to the canonical case — but the property-based
//!   test suites use it as an oracle on small universes.
//!
//! **Convention.** The empty prefix satisfies every formula. The
//! paper's quantification "for every `n`, if `E` holds for the first
//! `n` states…" then starts meaningfully at `n = 0` with a trivially
//! true antecedent, which forces `M` to hold for the first state — the
//! system must establish its initial condition unconditionally.

use crate::eval::{eval, EvalCtx};
use crate::{safety_canonical, Lasso, SemanticsError};
use opentla_kernel::{Formula, State};

/// Decides whether the finite behavior `prefix` satisfies `f` (can be
/// extended to an infinite behavior satisfying `f`).
///
/// # Errors
///
/// * Expression evaluation errors;
/// * [`SemanticsError::NeedsUniverse`] if `f` is not safety-canonical
///   and the context has no universe;
/// * [`SemanticsError::SearchBudgetExceeded`] if the bounded search
///   would have to give an untrustworthy answer.
pub fn prefix_sat(
    f: &Formula,
    prefix: &[State],
    ctx: &EvalCtx,
) -> Result<bool, SemanticsError> {
    if prefix.is_empty() {
        return Ok(true);
    }
    if let Some(sc) = safety_canonical(f) {
        return sc.check_prefix(prefix);
    }
    search_extension(f, prefix, ctx)
}

/// Bounded lasso-extension search for non-canonical formulas.
fn search_extension(
    f: &Formula,
    prefix: &[State],
    ctx: &EvalCtx,
) -> Result<bool, SemanticsError> {
    let universe = ctx
        .universe
        .as_ref()
        .ok_or(SemanticsError::NeedsUniverse {
            construct: "prefix satisfaction",
        })?;
    let all_states: Vec<State> = universe.states().collect();
    let mut budget = ctx.search_budget;

    // Appended suffixes of length 0..=extension_budget, in length
    // order; for each, try every loop start.
    let mut suffixes: Vec<Vec<State>> = vec![vec![]];
    for _ in 0..=ctx.extension_budget {
        let mut next = Vec::new();
        for suffix in &suffixes {
            let mut states: Vec<State> = prefix.to_vec();
            states.extend(suffix.iter().cloned());
            for loop_start in 0..states.len() {
                if budget == 0 {
                    return Err(SemanticsError::SearchBudgetExceeded {
                        construct: "prefix satisfaction",
                        budget: ctx.search_budget,
                    });
                }
                budget -= 1;
                let sigma = Lasso::new(states.clone(), loop_start)
                    .expect("nonempty by construction");
                if eval(f, &sigma, ctx)? {
                    return Ok(true);
                }
            }
            for s in &all_states {
                let mut longer = suffix.clone();
                longer.push(s.clone());
                next.push(longer);
            }
        }
        suffixes = next;
    }
    Ok(false)
}

/// The smallest `n ≥ 1` such that the first `n` states of `sigma` do
/// **not** satisfy `f`, or `None` if every prefix satisfies `f`
/// (equivalently, `sigma ⊨ C(f)`).
///
/// Prefix satisfaction is antitone in `n` (an extension of a longer
/// prefix also extends the shorter one), so the scan stops at the first
/// failure. For safety-canonical formulas the answer is exact and the
/// scan is over the lasso's distinct steps only. For other formulas the
/// scan covers prefix lengths `1..=k+1` where `k` is the number of
/// stored states — beyond that every step of the behavior repeats an
/// already-checked one, which makes the bound exact for
/// structure-insensitive formulas and a documented heuristic otherwise.
///
/// # Errors
///
/// Same conditions as [`prefix_sat`].
pub fn first_failing_prefix(
    f: &Formula,
    sigma: &Lasso,
    ctx: &EvalCtx,
) -> Result<Option<usize>, SemanticsError> {
    if let Some(sc) = safety_canonical(f) {
        return sc.first_failing_prefix(sigma);
    }
    for n in 1..=sigma.len() + 1 {
        if !prefix_sat(f, &sigma.prefix(n), ctx)? {
            return Ok(Some(n));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Universe;
    use opentla_kernel::{Domain, Expr, Value, VarId, Vars};

    fn setup() -> (Vars, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        (vars, x)
    }

    fn st(i: i64) -> State {
        State::new(vec![Value::Int(i)])
    }

    #[test]
    fn canonical_fast_path() {
        let (_, x) = setup();
        let f = Formula::pred(Expr::var(x).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![x]));
        let ctx = EvalCtx::default();
        assert!(prefix_sat(&f, &[st(0), st(0)], &ctx).unwrap());
        assert!(!prefix_sat(&f, &[st(0), st(1)], &ctx).unwrap());
        assert!(prefix_sat(&f, &[], &ctx).unwrap());
    }

    #[test]
    fn non_canonical_needs_universe() {
        let (_, x) = setup();
        let f = Formula::pred(Expr::var(x).eq(Expr::int(1))).eventually();
        let ctx = EvalCtx::default();
        assert!(matches!(
            prefix_sat(&f, &[st(0)], &ctx),
            Err(SemanticsError::NeedsUniverse { .. })
        ));
    }

    #[test]
    fn bounded_search_finds_liveness_witness() {
        let (vars, x) = setup();
        let ctx = EvalCtx::with_universe(Universe::new(vars));
        // ◇(x = 1): any prefix can be extended to reach 1.
        let f = Formula::pred(Expr::var(x).eq(Expr::int(1))).eventually();
        assert!(prefix_sat(&f, &[st(0), st(0)], &ctx).unwrap());
        // □(x = 0): the prefix 0,1 already violates it.
        let g = Formula::pred(Expr::var(x).eq(Expr::int(0))).always();
        assert!(!prefix_sat(&g, &[st(0), st(1)], &ctx).unwrap());
        assert!(prefix_sat(&g, &[st(0), st(0)], &ctx).unwrap());
    }

    #[test]
    fn first_failing_prefix_general() {
        let (vars, x) = setup();
        let ctx = EvalCtx::with_universe(Universe::new(vars));
        let g = Formula::pred(Expr::var(x).eq(Expr::int(0))).always();
        // 0 0 (1)^ω: □(x=0) first fails at prefix length 3.
        let sigma = Lasso::new(vec![st(0), st(0), st(1)], 2).unwrap();
        assert_eq!(first_failing_prefix(&g, &sigma, &ctx).unwrap(), Some(3));
        // (0)^ω: never fails.
        let zeros = Lasso::stutter(st(0));
        assert_eq!(first_failing_prefix(&g, &zeros, &ctx).unwrap(), None);
        // ◇(x=1) is never prefix-refuted: every prefix extends.
        let f = Formula::pred(Expr::var(x).eq(Expr::int(1))).eventually();
        assert_eq!(first_failing_prefix(&f, &zeros, &ctx).unwrap(), None);
    }

    #[test]
    fn budget_is_enforced() {
        let (vars, x) = setup();
        let mut ctx = EvalCtx::with_universe(Universe::new(vars));
        ctx.search_budget = 1;
        let f = Formula::pred(Expr::var(x).eq(Expr::int(1))).eventually();
        // The single-candidate budget cannot cover the search space.
        let r = prefix_sat(&f, &[st(0), st(0)], &ctx);
        assert!(
            matches!(
                r,
                Ok(true) | Err(SemanticsError::SearchBudgetExceeded { .. })
            ),
            "{r:?}"
        );
    }
}
