//! Lasso (ultimately periodic) behaviors.

use crate::SemanticsError;
use opentla_kernel::{State, Vars};
use std::fmt;

/// An ultimately periodic behavior
/// `s₀ … s_{l-1} (s_l … s_{k-1})^ω`.
///
/// A lasso consists of `k` stored states and a `loop_start` index
/// `l < k`; positions `≥ k` fold back into the cycle. Lassos are the
/// behaviors that finite-state counterexamples take, and the class over
/// which this crate evaluates formulas.
///
/// The behavior with a single state repeated forever (stuttering) is
/// `Lasso::new(vec![s], 0)`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Lasso {
    states: Vec<State>,
    loop_start: usize,
}

impl Lasso {
    /// Builds a lasso from its distinct positions and the loop start.
    ///
    /// # Errors
    ///
    /// Fails if `states` is empty or `loop_start >= states.len()`.
    pub fn new(states: Vec<State>, loop_start: usize) -> Result<Self, SemanticsError> {
        if states.is_empty() {
            return Err(SemanticsError::EmptyBehavior);
        }
        if loop_start >= states.len() {
            return Err(SemanticsError::BadLoopStart {
                loop_start,
                len: states.len(),
            });
        }
        Ok(Lasso { states, loop_start })
    }

    /// The behavior that stutters forever on `s`.
    pub fn stutter(s: State) -> Self {
        Lasso {
            states: vec![s],
            loop_start: 0,
        }
    }

    /// A finite behavior extended by stuttering on its last state
    /// forever — the canonical extension used to decide prefix
    /// satisfaction of safety properties.
    ///
    /// # Errors
    ///
    /// Fails if `prefix` is empty.
    pub fn stutter_extend(prefix: Vec<State>) -> Result<Self, SemanticsError> {
        let loop_start = prefix.len().saturating_sub(1);
        Lasso::new(prefix, loop_start)
    }

    /// Number of stored (distinct-position) states, `k`.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Always `false`; lassos are nonempty by construction.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The loop start index `l`.
    pub fn loop_start(&self) -> usize {
        self.loop_start
    }

    /// The cycle length `k - l`.
    pub fn period(&self) -> usize {
        self.states.len() - self.loop_start
    }

    /// The stored states `s₀ … s_{k-1}`.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// The state at an arbitrary position `i ≥ 0`, folding positions
    /// beyond the stored states into the cycle.
    pub fn state(&self, i: usize) -> &State {
        if i < self.states.len() {
            &self.states[i]
        } else {
            let p = self.period();
            &self.states[self.loop_start + (i - self.loop_start) % p]
        }
    }

    /// Folds a position into the canonical range `0..k`.
    pub fn normalize(&self, i: usize) -> usize {
        if i < self.states.len() {
            i
        } else {
            self.loop_start + (i - self.loop_start) % self.period()
        }
    }

    /// The suffix behavior `σ_{+i} = σ(i), σ(i+1), …` as a lasso.
    ///
    /// Distinct suffixes exist only for `i < k`; larger `i` are folded
    /// into the cycle first.
    pub fn suffix(&self, i: usize) -> Lasso {
        let i = self.normalize(i);
        if i <= self.loop_start {
            Lasso {
                states: self.states[i..].to_vec(),
                loop_start: self.loop_start - i,
            }
        } else {
            // Rotate the cycle so it starts at position i.
            let mut states = self.states[i..].to_vec();
            states.extend(self.states[self.loop_start..i].iter().cloned());
            Lasso {
                states,
                loop_start: 0,
            }
        }
    }

    /// The first `n` states as an owned prefix.
    pub fn prefix(&self, n: usize) -> Vec<State> {
        (0..n).map(|i| self.state(i).clone()).collect()
    }

    /// Iterates over the distinct steps of the behavior as index pairs
    /// `(i, j)` meaning the step from `σ(i)` to `σ(j)`. These are
    /// `(0,1), …, (k-2, k-1)` and the wrap step `(k-1, l)`; every step
    /// at a later position repeats one of these.
    pub fn steps(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let k = self.states.len();
        (0..k).map(move |i| if i + 1 < k { (i, i + 1) } else { (i, self.loop_start) })
    }

    /// Renders the lasso with variable names.
    pub fn display<'a>(&'a self, vars: &'a Vars) -> LassoDisplay<'a> {
        LassoDisplay { lasso: self, vars }
    }
}

/// Helper returned by [`Lasso::display`].
#[derive(Clone, Copy)]
pub struct LassoDisplay<'a> {
    lasso: &'a Lasso,
    vars: &'a Vars,
}

impl fmt::Display for LassoDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, s) in self.lasso.states.iter().enumerate() {
            if i == self.lasso.loop_start {
                writeln!(f, "  ┌─ loop")?;
            }
            writeln!(f, "  {} {}", i, s.display(self.vars))?;
        }
        writeln!(f, "  └─ back to {}", self.lasso.loop_start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_kernel::Value;

    fn s(i: i64) -> State {
        State::new(vec![Value::Int(i)])
    }

    #[test]
    fn construction_errors() {
        assert!(matches!(
            Lasso::new(vec![], 0),
            Err(SemanticsError::EmptyBehavior)
        ));
        assert!(matches!(
            Lasso::new(vec![s(0)], 1),
            Err(SemanticsError::BadLoopStart { .. })
        ));
    }

    #[test]
    fn position_folding() {
        // 0 1 (2 3)^ω
        let l = Lasso::new(vec![s(0), s(1), s(2), s(3)], 2).unwrap();
        assert_eq!(l.period(), 2);
        assert_eq!(l.state(0), &s(0));
        assert_eq!(l.state(3), &s(3));
        assert_eq!(l.state(4), &s(2));
        assert_eq!(l.state(5), &s(3));
        assert_eq!(l.state(100), &s(2));
        assert_eq!(l.normalize(100), 2);
    }

    #[test]
    fn suffix_before_loop() {
        let l = Lasso::new(vec![s(0), s(1), s(2), s(3)], 2).unwrap();
        let suf = l.suffix(1);
        assert_eq!(suf.states(), &[s(1), s(2), s(3)]);
        assert_eq!(suf.loop_start(), 1);
        // Suffix semantics: positions agree.
        for i in 0..10 {
            assert_eq!(suf.state(i), l.state(i + 1));
        }
    }

    #[test]
    fn suffix_inside_loop_rotates() {
        let l = Lasso::new(vec![s(0), s(1), s(2), s(3)], 1).unwrap();
        let suf = l.suffix(2);
        assert_eq!(suf.loop_start(), 0);
        for i in 0..10 {
            assert_eq!(suf.state(i), l.state(i + 2), "position {i}");
        }
        // A suffix beyond the stored states folds into the cycle first.
        let far = l.suffix(5); // normalize(5) = 1 + (5-1) % 3 = 2
        assert_eq!(far, suf);
    }

    #[test]
    fn steps_cover_wrap() {
        let l = Lasso::new(vec![s(0), s(1), s(2)], 1).unwrap();
        let steps: Vec<_> = l.steps().collect();
        assert_eq!(steps, vec![(0, 1), (1, 2), (2, 1)]);
    }

    #[test]
    fn display_marks_the_loop() {
        let mut vars = opentla_kernel::Vars::new();
        vars.declare("v", opentla_kernel::Domain::int_range(0, 9));
        let l = Lasso::new(vec![s(0), s(1), s(2)], 1).unwrap();
        let text = l.display(&vars).to_string();
        assert!(text.contains("┌─ loop"), "{text}");
        assert!(text.contains("v=1"), "{text}");
        assert!(text.contains("back to 1"), "{text}");
    }

    #[test]
    fn stutter_and_prefix() {
        let l = Lasso::stutter(s(7));
        assert_eq!(l.state(42), &s(7));
        assert_eq!(l.prefix(3), vec![s(7), s(7), s(7)]);
        let ext = Lasso::stutter_extend(vec![s(1), s(2)]).unwrap();
        assert_eq!(ext.state(0), &s(1));
        assert_eq!(ext.state(5), &s(2));
    }
}
