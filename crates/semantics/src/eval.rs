//! Exact evaluation of formulas on lasso behaviors.

use crate::prefix::first_failing_prefix;
use crate::{Lasso, SemanticsError, Universe};
use opentla_kernel::{
    box_action, Fairness, FairnessKind, Formula, State, StatePair, VarId,
};

/// The context for evaluating formulas over behaviors.
///
/// A context without a universe evaluates the universe-free fragment
/// (no `WF`/`SF`, no `∃`, prefix operators only on safety-canonical
/// arguments); [`EvalCtx::with_universe`] unlocks the rest.
#[derive(Clone, Debug)]
pub struct EvalCtx {
    /// The finite universe used to decide `Enabled`, search `∃`
    /// witnesses, and search prefix extensions. `None` restricts the
    /// evaluable fragment.
    pub universe: Option<Universe>,
    /// How many states a prefix-extension search may append (see
    /// [`crate::prefix_sat`]). Default 2.
    pub extension_budget: usize,
    /// Upper bound on candidate behaviors examined by any single
    /// bounded search. Default 200 000.
    pub search_budget: usize,
    /// How many times the cycle may be unrolled when searching for `∃`
    /// witnesses. Default 2.
    pub exists_unroll: usize,
}

impl Default for EvalCtx {
    fn default() -> Self {
        EvalCtx {
            universe: None,
            extension_budget: 2,
            search_budget: 200_000,
            exists_unroll: 2,
        }
    }
}

impl EvalCtx {
    /// A context over the given finite universe.
    pub fn with_universe(universe: Universe) -> Self {
        EvalCtx {
            universe: Some(universe),
            ..EvalCtx::default()
        }
    }

    fn universe(&self, construct: &'static str) -> Result<&Universe, SemanticsError> {
        self.universe
            .as_ref()
            .ok_or(SemanticsError::NeedsUniverse { construct })
    }
}

/// Evaluates a formula on a lasso behavior.
///
/// Every operator of the mechanized fragment is supported; the paper's
/// prefix-quantifying operators (`⊳`, `+v`, `⊥`, `C`) are computed from
/// the *first failing prefix* of their arguments, which is exact for
/// safety-canonical arguments and uses the documented bounded search
/// otherwise.
///
/// # Errors
///
/// * Expression evaluation errors;
/// * [`SemanticsError::NeedsUniverse`] for `WF`/`SF`/`∃`/non-canonical
///   prefix operators without a universe;
/// * [`SemanticsError::SearchBudgetExceeded`] when a bounded search
///   cannot answer within its budget.
pub fn eval(f: &Formula, sigma: &Lasso, ctx: &EvalCtx) -> Result<bool, SemanticsError> {
    match f {
        Formula::Pred(e) => Ok(e.holds_state(sigma.state(0))?),
        Formula::ActBox { action, sub } => {
            let boxed = box_action(action.clone(), sub);
            for (i, j) in sigma.steps() {
                if !boxed.holds_action(StatePair::new(sigma.state(i), sigma.state(j)))? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Not(g) => Ok(!eval(g, sigma, ctx)?),
        Formula::And(fs) => {
            for g in fs {
                if !eval(g, sigma, ctx)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Or(fs) => {
            for g in fs {
                if eval(g, sigma, ctx)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Implies(a, b) => Ok(!eval(a, sigma, ctx)? || eval(b, sigma, ctx)?),
        Formula::Equiv(a, b) => Ok(eval(a, sigma, ctx)? == eval(b, sigma, ctx)?),
        Formula::Always(g) => {
            // Suffixes at positions ≥ k repeat suffixes in l..k.
            for i in 0..sigma.len() {
                if !eval(g, &sigma.suffix(i), ctx)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Formula::Eventually(g) => {
            for i in 0..sigma.len() {
                if eval(g, &sigma.suffix(i), ctx)? {
                    return Ok(true);
                }
            }
            Ok(false)
        }
        Formula::Fair(fair) => fairness_holds(fair, sigma, ctx),
        Formula::Exists { vars, body } => exists_witness(vars, body, sigma, ctx),
        Formula::WhilePlus { env, sys } => {
            let n0 = first_failing_prefix(env, sigma, ctx)?;
            let m0 = first_failing_prefix(sys, sigma, ctx)?;
            // ∀ n ≥ 0: (ρ_n ⊨ E) ⇒ (ρ_{n+1} ⊨ M), i.e. m0 > n0 with
            // None meaning ∞.
            let stepwise = match (n0, m0) {
                (_, None) => true,
                (None, Some(_)) => false,
                (Some(n0), Some(m0)) => m0 > n0,
            };
            Ok(stepwise && (!eval(env, sigma, ctx)? || eval(sys, sigma, ctx)?))
        }
        Formula::While { env, sys } => {
            let n0 = first_failing_prefix(env, sigma, ctx)?;
            let m0 = first_failing_prefix(sys, sigma, ctx)?;
            // ∀ n: (ρ_n ⊨ E) ⇒ (ρ_n ⊨ M): m0 ≥ n0 with None = ∞.
            let stepwise = match (n0, m0) {
                (_, None) => true,
                (None, Some(_)) => false,
                (Some(n0), Some(m0)) => m0 >= n0,
            };
            Ok(stepwise && (!eval(env, sigma, ctx)? || eval(sys, sigma, ctx)?))
        }
        Formula::Plus { body, sub } => {
            if eval(body, sigma, ctx)? {
                return Ok(true);
            }
            let Some(p) = stabilization_point(sigma, sub)? else {
                return Ok(false);
            };
            // Need some n ≥ p whose prefix satisfies the body.
            Ok(match first_failing_prefix(body, sigma, ctx)? {
                None => true,
                Some(n0) => p < n0,
            })
        }
        Formula::Ortho(a, b) => {
            let n0 = first_failing_prefix(a, sigma, ctx)?;
            let m0 = first_failing_prefix(b, sigma, ctx)?;
            // A violation is an n where both hold for the first n
            // states and both fail for the first n+1 — possible iff the
            // two first-failure points coincide (and are finite).
            Ok(!(n0.is_some() && n0 == m0))
        }
        Formula::Closure(g) => Ok(first_failing_prefix(g, sigma, ctx)?.is_none()),
    }
}

/// The first position from which the tuple `sub` never changes again,
/// or `None` if it changes infinitely often (i.e. within the cycle).
fn stabilization_point(
    sigma: &Lasso,
    sub: &[VarId],
) -> Result<Option<usize>, SemanticsError> {
    let mut last_change: Option<usize> = None;
    for (i, j) in sigma.steps() {
        if !sigma.state(i).agrees_with(sigma.state(j), sub) {
            if i >= sigma.loop_start() {
                return Ok(None); // Changes recur forever.
            }
            last_change = Some(last_change.map_or(i, |m: usize| m.max(i)));
        }
    }
    Ok(Some(last_change.map_or(0, |i| i + 1)))
}

fn fairness_holds(
    fair: &Fairness,
    sigma: &Lasso,
    ctx: &EvalCtx,
) -> Result<bool, SemanticsError> {
    let universe = ctx.universe(match fair.kind {
        FairnessKind::Weak => "WF",
        FairnessKind::Strong => "SF",
    })?;
    let angle = fair.angle_action();
    // Steps and states within the cycle occur infinitely often; nothing
    // else does.
    let mut has_angle_step = false;
    for (i, j) in sigma.steps() {
        if i >= sigma.loop_start()
            && angle.holds_action(StatePair::new(sigma.state(i), sigma.state(j)))?
        {
            has_angle_step = true;
            break;
        }
    }
    if has_angle_step {
        return Ok(true);
    }
    let mut any_disabled = false;
    let mut any_enabled = false;
    for i in sigma.loop_start()..sigma.len() {
        if universe.enabled(&angle, sigma.state(i))? {
            any_enabled = true;
        } else {
            any_disabled = true;
        }
    }
    Ok(match fair.kind {
        // Infinitely many states with ⟨A⟩_v not enabled.
        FairnessKind::Weak => any_disabled,
        // Only finitely many states with ⟨A⟩_v enabled.
        FairnessKind::Strong => !any_enabled,
    })
}

/// Bounded witness search for `∃ vars : body`.
///
/// Searches assignment sequences for the hidden variables over lassos
/// whose visible projection is `sigma`, unrolling the cycle up to
/// `ctx.exists_unroll` times. Sound when a witness is found; a `false`
/// answer is bounded-complete (no witness of the searched shape).
fn exists_witness(
    hidden: &[VarId],
    body: &Formula,
    sigma: &Lasso,
    ctx: &EvalCtx,
) -> Result<bool, SemanticsError> {
    let universe = ctx.universe("∃")?;
    let mut budget = ctx.search_budget;
    for unroll in 1..=ctx.exists_unroll.max(1) {
        let l = sigma.loop_start();
        let positions = l + sigma.period() * unroll;
        // Base states: the visible projection, unrolled.
        let base: Vec<State> = (0..positions).map(|i| sigma.state(i).clone()).collect();
        if search_hidden(
            universe,
            hidden,
            body,
            &base,
            l,
            0,
            &mut Vec::new(),
            ctx,
            &mut budget,
        )? {
            return Ok(true);
        }
    }
    Ok(false)
}

#[allow(clippy::too_many_arguments)]
fn search_hidden(
    universe: &Universe,
    hidden: &[VarId],
    body: &Formula,
    base: &[State],
    loop_start: usize,
    pos: usize,
    acc: &mut Vec<State>,
    ctx: &EvalCtx,
    budget: &mut usize,
) -> Result<bool, SemanticsError> {
    if pos == base.len() {
        if *budget == 0 {
            return Err(SemanticsError::SearchBudgetExceeded {
                construct: "∃",
                budget: ctx.search_budget,
            });
        }
        *budget -= 1;
        let sigma = Lasso::new(acc.clone(), loop_start).expect("nonempty");
        return eval(body, &sigma, ctx);
    }
    // Enumerate hidden-variable values for this position.
    let mut stack: Vec<Vec<(VarId, opentla_kernel::Value)>> = vec![vec![]];
    for h in hidden {
        let mut next = Vec::new();
        for partial in &stack {
            for v in universe.vars().domain(*h).iter() {
                let mut p = partial.clone();
                p.push((*h, v.clone()));
                next.push(p);
            }
        }
        stack = next;
    }
    for assignment in &stack {
        acc.push(base[pos].with(assignment));
        let found = search_hidden(
            universe, hidden, body, base, loop_start, pos + 1, acc, ctx, budget,
        )?;
        acc.pop();
        if found {
            return Ok(true);
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_kernel::{Domain, Expr, Value, Vars};

    fn setup() -> (Vars, VarId, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let y = vars.declare("y", Domain::bits());
        (vars, x, y)
    }

    fn st(x: i64, y: i64) -> State {
        State::new(vec![Value::Int(x), Value::Int(y)])
    }

    #[test]
    fn temporal_basics() {
        let (_, x, _) = setup();
        let ctx = EvalCtx::default();
        // 00 10 (11)^ω
        let sigma = Lasso::new(vec![st(0, 0), st(1, 0), st(1, 1)], 2).unwrap();
        let x1 = Formula::pred(Expr::var(x).eq(Expr::int(1)));
        assert!(!eval(&x1, &sigma, &ctx).unwrap());
        assert!(eval(&x1.clone().eventually(), &sigma, &ctx).unwrap());
        assert!(!eval(&x1.clone().always(), &sigma, &ctx).unwrap());
        // ◇□(x = 1) holds; □◇(x = 0) fails.
        assert!(eval(&x1.clone().always().eventually(), &sigma, &ctx).unwrap());
        let x0 = Formula::pred(Expr::var(x).eq(Expr::int(0)));
        assert!(!eval(&x0.clone().eventually().always(), &sigma, &ctx).unwrap());
        // Boolean structure.
        assert!(eval(&x0.clone().or(x1.clone()), &sigma, &ctx).unwrap());
        assert!(!eval(&x0.clone().and(x1.clone()), &sigma, &ctx).unwrap());
        assert!(eval(&x1.clone().implies(x0.clone()), &sigma, &ctx).unwrap());
        assert!(!eval(&x0.clone().not(), &sigma, &ctx).unwrap());
        assert!(eval(&x0.equiv(x1.not()), &sigma, &ctx).unwrap());
    }

    #[test]
    fn act_box_checks_wrap() {
        let (_, x, _) = setup();
        let ctx = EvalCtx::default();
        // □[x' = 1 - x]_x on 00 (10 00)^ω: steps toggle x — fine.
        let toggle = Expr::prime(x).eq(Expr::int(1).sub(Expr::var(x)));
        let f = Formula::act_box(toggle, vec![x]);
        let good = Lasso::new(vec![st(0, 0), st(1, 0)], 0).unwrap();
        assert!(eval(&f, &good, &ctx).unwrap());
        // 00 (10)^ω: wrap step 10 → 10 stutters x — allowed by [·]_x.
        let stutter = Lasso::new(vec![st(0, 0), st(1, 0)], 1).unwrap();
        assert!(eval(&f, &stutter, &ctx).unwrap());
    }

    #[test]
    fn weak_fairness_on_lassos() {
        let (vars, x, _) = setup();
        let ctx = EvalCtx::with_universe(Universe::new(vars));
        // Action: set x to 1 (enabled whenever x = 0 — and also changes
        // nothing when x = 1, so ⟨A⟩_x is disabled there).
        let a = Expr::prime(x).eq(Expr::int(1));
        let wf = Formula::wf(a, vec![x]);
        // (00)^ω: ⟨A⟩_x stays enabled forever but never taken: WF fails.
        let idle = Lasso::stutter(st(0, 0));
        assert!(!eval(&wf, &idle, &ctx).unwrap());
        // 00 (11)^ω: after taking the step, ⟨A⟩_x is disabled: WF holds.
        let taken = Lasso::new(vec![st(0, 0), st(1, 1)], 1).unwrap();
        assert!(eval(&wf, &taken, &ctx).unwrap());
    }

    #[test]
    fn strong_vs_weak_fairness() {
        let (vars, x, y) = setup();
        let ctx = EvalCtx::with_universe(Universe::new(vars));
        // Action A: when y = 0, set x to 1.
        let a = Expr::all([
            Expr::var(y).eq(Expr::int(0)),
            Expr::prime(x).eq(Expr::int(1)),
            Expr::prime(y).eq(Expr::var(y)),
        ]);
        // Behavior alternating y: 00 (01 00)^ω with x stuck at 0:
        // ⟨A⟩_x is enabled at infinitely many states (y=0) and disabled
        // at infinitely many (y=1); never taken.
        let sigma = Lasso::new(vec![st(0, 0), st(0, 1)], 0).unwrap();
        let wf = Formula::wf(a.clone(), vec![x]);
        let sf = Formula::sf(a, vec![x]);
        assert!(eval(&wf, &sigma, &ctx).unwrap(), "WF satisfied by recurring disabledness");
        assert!(!eval(&sf, &sigma, &ctx).unwrap(), "SF violated: enabled infinitely often, never taken");
    }

    #[test]
    fn closure_semantics() {
        let (_, x, _) = setup();
        let ctx = EvalCtx::default();
        // F = (x = 0) ∧ □[FALSE]_x ("x stays 0").
        let f = Formula::pred(Expr::var(x).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![x]));
        // A behavior where x stays 0 satisfies C(F).
        let zeros = Lasso::stutter(st(0, 0));
        assert!(eval(&f.clone().closure(), &zeros, &ctx).unwrap());
        // 00 (10)^ω violates F at prefix length 2, hence violates C(F).
        let bad = Lasso::new(vec![st(0, 0), st(1, 0)], 1).unwrap();
        assert!(!eval(&f.clone().closure(), &bad, &ctx).unwrap());
    }

    #[test]
    fn while_plus_matches_paper_reading() {
        let (_, x, y) = setup();
        let ctx = EvalCtx::default();
        // E: y stays 0 (canonical); M: x stays 0 (canonical).
        let e = Formula::pred(Expr::var(y).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![y]));
        let m = Formula::pred(Expr::var(x).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![x]));
        let ag = e.clone().while_plus(m.clone());

        // Both hold forever: E ⊳ M holds.
        assert!(eval(&ag, &Lasso::stutter(st(0, 0)), &ctx).unwrap());
        // Env breaks first (y changes at step 0), system follows suit:
        // allowed.
        let env_first =
            Lasso::new(vec![st(0, 0), st(0, 1), st(1, 1)], 2).unwrap();
        assert!(eval(&ag, &env_first, &ctx).unwrap());
        // System breaks while env is still fine: violation.
        let sys_first = Lasso::new(vec![st(0, 0), st(1, 0)], 1).unwrap();
        assert!(!eval(&ag, &sys_first, &ctx).unwrap());
        // Both break on the same step: ⊳ forbids it (unlike -▷).
        let same_step = Lasso::new(vec![st(0, 0), st(1, 1)], 1).unwrap();
        assert!(!eval(&ag, &same_step, &ctx).unwrap());
        // System must satisfy its initial condition unconditionally.
        let bad_init = Lasso::stutter(st(1, 1));
        assert!(!eval(&ag, &bad_init, &ctx).unwrap());
    }

    #[test]
    fn while_vs_while_plus() {
        let (_, x, y) = setup();
        let ctx = EvalCtx::default();
        let e = Formula::pred(Expr::var(y).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![y]));
        let m = Formula::pred(Expr::var(x).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![x]));
        // Simultaneous violation: allowed by -▷, forbidden by ⊳.
        let same_step = Lasso::new(vec![st(0, 0), st(1, 1)], 1).unwrap();
        assert!(eval(&e.clone().while_op(m.clone()), &same_step, &ctx).unwrap());
        assert!(!eval(&e.clone().while_plus(m.clone()), &same_step, &ctx).unwrap());
        // System breaking strictly first: forbidden by both.
        let sys_first = Lasso::new(vec![st(0, 0), st(1, 0)], 1).unwrap();
        assert!(!eval(&e.clone().while_op(m.clone()), &sys_first, &ctx).unwrap());
        // Environment breaking strictly first: allowed by both.
        let env_first = Lasso::new(vec![st(0, 0), st(0, 1), st(1, 1)], 2).unwrap();
        assert!(eval(&e.clone().while_op(m.clone()), &env_first, &ctx).unwrap());
        assert!(eval(&e.clone().while_plus(m.clone()), &env_first, &ctx).unwrap());
    }

    #[test]
    fn plus_operator() {
        let (_, x, y) = setup();
        let ctx = EvalCtx::default();
        // F: y stays 0.
        let f = Formula::pred(Expr::var(y).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![y]));
        let plus = f.clone().plus(vec![x]);
        // F holds outright.
        assert!(eval(&plus, &Lasso::stutter(st(0, 0)), &ctx).unwrap());
        // F fails at step 0 (y flips) and x never changes after: +
        // holds.
        let env_breaks_x_frozen =
            Lasso::new(vec![st(0, 0), st(0, 1)], 1).unwrap();
        assert!(eval(&plus, &env_breaks_x_frozen, &ctx).unwrap());
        // F fails at step 0 and x changes afterwards: + fails.
        let x_moves_after =
            Lasso::new(vec![st(0, 0), st(0, 1), st(1, 1)], 2).unwrap();
        assert!(!eval(&plus, &x_moves_after, &ctx).unwrap());
        // x changes exactly while F still holds, then freezes: fine.
        let x_moves_before =
            Lasso::new(vec![st(0, 0), st(1, 0), st(1, 1)], 2).unwrap();
        assert!(eval(&plus, &x_moves_before, &ctx).unwrap());
    }

    #[test]
    fn ortho_operator() {
        let (_, x, y) = setup();
        let ctx = EvalCtx::default();
        let e = Formula::pred(Expr::var(y).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![y]));
        let m = Formula::pred(Expr::var(x).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![x]));
        // Simultaneous violation: x and y flip on the same step.
        let same = Lasso::new(vec![st(0, 0), st(1, 1)], 1).unwrap();
        assert!(!eval(&e.clone().ortho(m.clone()), &same, &ctx).unwrap());
        // Separate violations: orthogonal.
        let separate =
            Lasso::new(vec![st(0, 0), st(0, 1), st(1, 1)], 2).unwrap();
        assert!(eval(&e.clone().ortho(m.clone()), &separate, &ctx).unwrap());
        // No violations at all: orthogonal.
        assert!(eval(&e.ortho(m), &Lasso::stutter(st(0, 0)), &ctx).unwrap());
    }

    #[test]
    fn ortho_relates_while_plus_and_while() {
        // Validity noted in Section 4.2:
        // (E ⊳ M) = (E -▷ M) ∧ (E ⊥ M); we check the ⇒ direction on a
        // few behaviors: whenever E ⊳ M holds, E ⊥ M holds.
        let (_, x, y) = setup();
        let ctx = EvalCtx::default();
        let e = Formula::pred(Expr::var(y).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![y]));
        let m = Formula::pred(Expr::var(x).eq(Expr::int(0)))
            .and(Formula::act_box(Expr::bool(false), vec![x]));
        let behaviors = [
            Lasso::stutter(st(0, 0)),
            Lasso::new(vec![st(0, 0), st(1, 1)], 1).unwrap(),
            Lasso::new(vec![st(0, 0), st(0, 1), st(1, 1)], 2).unwrap(),
            Lasso::new(vec![st(0, 0), st(1, 0)], 1).unwrap(),
        ];
        for sigma in &behaviors {
            let wp = eval(&e.clone().while_plus(m.clone()), sigma, &ctx).unwrap();
            let orth = eval(&e.clone().ortho(m.clone()), sigma, &ctx).unwrap();
            assert!(!wp || orth, "E ⊳ M must imply E ⊥ M on {sigma:?}");
        }
    }

    #[test]
    fn exists_witness_search() {
        let (vars, x, y) = setup();
        let ctx = EvalCtx::with_universe(Universe::new(vars));
        // Hide y. Claim: ∃ y : □(y = x). The witness simply copies x.
        let body = Formula::pred(Expr::var(y).eq(Expr::var(x))).always();
        let f = Formula::exists(vec![y], body);
        let sigma = Lasso::new(vec![st(0, 1), st(1, 0)], 0).unwrap();
        assert!(eval(&f, &sigma, &ctx).unwrap());
        // ∃ y : □(y = 0 ∧ y = 1) is unsatisfiable.
        let contradiction = Formula::pred(Expr::all([
            Expr::var(y).eq(Expr::int(0)),
            Expr::var(y).eq(Expr::int(1)),
        ]))
        .always();
        let g = Formula::exists(vec![y], contradiction);
        assert!(!eval(&g, &sigma, &ctx).unwrap());
    }

    #[test]
    fn exists_requiring_unroll() {
        // A witness that needs a longer period than the visible lasso:
        // hide y and require y to toggle while x stutters: (x=0)^ω with
        // body □[y' = 1 - y ∧ x' = x]_⟨x,y⟩ ∧ ◇(y=1) ∧ ◇(y=0).
        let (vars, _x, y) = setup();
        let ctx = EvalCtx::with_universe(Universe::new(vars));
        let body = Formula::all([
            Formula::pred(Expr::var(y).eq(Expr::int(0)).or(Expr::var(y).eq(Expr::int(1)))),
            Formula::pred(Expr::var(y).eq(Expr::int(1))).eventually(),
            Formula::pred(Expr::var(y).eq(Expr::int(0))).eventually(),
        ]);
        let f = Formula::exists(vec![y], body);
        let sigma = Lasso::stutter(st(0, 0));
        // Needs the cycle unrolled twice: y alternates 0 1 within it.
        assert!(eval(&f, &sigma, &ctx).unwrap());
    }

    #[test]
    fn stabilization_point_logic() {
        let (_, x, _) = setup();
        // 00 10 (11)^ω: x changes at step 0 only → stabilizes at 1.
        let sigma = Lasso::new(vec![st(0, 0), st(1, 0), st(1, 1)], 2).unwrap();
        assert_eq!(stabilization_point(&sigma, &[x]).unwrap(), Some(1));
        // x constant throughout → 0.
        let flat = Lasso::stutter(st(0, 0));
        assert_eq!(stabilization_point(&flat, &[x]).unwrap(), Some(0));
        // x toggles in the cycle → None.
        let toggling = Lasso::new(vec![st(0, 0), st(1, 0)], 0).unwrap();
        assert_eq!(stabilization_point(&toggling, &[x]).unwrap(), None);
    }
}
