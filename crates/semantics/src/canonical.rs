//! Recognition of safety-canonical formulas.
//!
//! A formula is *safety-canonical* when it is a conjunction of
//! initial predicates, invariants `□P`, and step boxes `□[A]_v` — the
//! shape `Init ∧ □[N]_v` of the paper's canonical specifications with
//! the fairness conjunct removed (Section 2.2, Proposition 1).
//!
//! For such formulas, satisfaction by a *finite* behavior is decidable
//! by direct inspection: a finite behavior satisfies the formula iff
//! its first state satisfies the initial predicates, every state
//! satisfies the invariants, and every step satisfies every box —
//! because stuttering forever on the last state is then always a
//! satisfying infinite extension. This is the exact prefix semantics
//! the operators `⊳`, `+v`, `⊥`, and `C` quantify over.

use crate::{Lasso, SemanticsError};
use opentla_kernel::{box_action, Expr, Formula, State, StatePair, VarId};

/// The decomposed parts of a safety-canonical formula.
#[derive(Clone, Debug, Default)]
pub struct SafetyCanonical {
    /// Predicates that must hold in the first state.
    pub init: Vec<Expr>,
    /// Predicates that must hold in every state (`□P`).
    pub invariants: Vec<Expr>,
    /// Step boxes `□[A]_v` that every step must satisfy.
    pub boxes: Vec<(Expr, Vec<VarId>)>,
}

impl SafetyCanonical {
    /// Whether a nonempty finite behavior satisfies the formula, i.e.
    /// can be extended to an infinite behavior satisfying it.
    ///
    /// The empty prefix satisfies everything by convention (see the
    /// crate docs of [`crate::prefix_sat`]).
    ///
    /// # Errors
    ///
    /// Propagates expression evaluation errors.
    pub fn check_prefix(&self, prefix: &[State]) -> Result<bool, SemanticsError> {
        let Some(first) = prefix.first() else {
            return Ok(true);
        };
        for p in &self.init {
            if !p.holds_state(first)? {
                return Ok(false);
            }
        }
        for s in prefix {
            for p in &self.invariants {
                if !p.holds_state(s)? {
                    return Ok(false);
                }
            }
        }
        for w in prefix.windows(2) {
            let pair = StatePair::new(&w[0], &w[1]);
            for (a, sub) in &self.boxes {
                if !box_action(a.clone(), sub).holds_action(pair)? {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// Whether an infinite (lasso) behavior satisfies the formula.
    ///
    /// # Errors
    ///
    /// Propagates expression evaluation errors.
    pub fn holds_lasso(&self, sigma: &Lasso) -> Result<bool, SemanticsError> {
        for p in &self.init {
            if !p.holds_state(sigma.state(0))? {
                return Ok(false);
            }
        }
        for s in sigma.states() {
            for p in &self.invariants {
                if !p.holds_state(s)? {
                    return Ok(false);
                }
            }
        }
        for (i, j) in sigma.steps() {
            let pair = StatePair::new(sigma.state(i), sigma.state(j));
            for (a, sub) in &self.boxes {
                if !box_action(a.clone(), sub).holds_action(pair)? {
                    return Ok(false);
                }
            }
        }
        Ok(true)
    }

    /// The smallest prefix length at which the formula fails on
    /// `sigma`, or `None` if every prefix satisfies it (equivalently:
    /// `sigma ⊨ C(formula)`).
    ///
    /// # Errors
    ///
    /// Propagates expression evaluation errors.
    pub fn first_failing_prefix(
        &self,
        sigma: &Lasso,
    ) -> Result<Option<usize>, SemanticsError> {
        // Initial predicates and the first state's invariants fail at
        // prefix length 1.
        let first = sigma.state(0);
        for p in &self.init {
            if !p.holds_state(first)? {
                return Ok(Some(1));
            }
        }
        // Invariants: fail at the first offending position i, i.e. at
        // prefix length i + 1. Positions beyond the stored states
        // repeat earlier ones.
        let mut inv_fail: Option<usize> = None;
        'outer: for i in 0..sigma.len() {
            for p in &self.invariants {
                if !p.holds_state(sigma.state(i))? {
                    inv_fail = Some(i + 1);
                    break 'outer;
                }
            }
        }
        // Boxes: the step at position i (from σ(i) to σ(i+1)) fails at
        // prefix length i + 2. Distinct steps are at positions 0..k.
        let mut box_fail: Option<usize> = None;
        'steps: for (i, j) in sigma.steps() {
            let pair = StatePair::new(sigma.state(i), sigma.state(j));
            for (a, sub) in &self.boxes {
                if !box_action(a.clone(), sub).holds_action(pair)? {
                    box_fail = Some(i + 2);
                    break 'steps;
                }
            }
        }
        Ok(match (inv_fail, box_fail) {
            (None, None) => None,
            (Some(a), None) => Some(a),
            (None, Some(b)) => Some(b),
            (Some(a), Some(b)) => Some(a.min(b)),
        })
    }
}

/// Recognizes a safety-canonical formula, returning its parts.
///
/// Returns `None` if the formula contains any construct outside the
/// conjunctive `Init ∧ □P ∧ □[A]_v` fragment.
pub fn safety_canonical(f: &Formula) -> Option<SafetyCanonical> {
    let mut out = SafetyCanonical::default();
    collect(f, &mut out).then_some(out)
}

fn collect(f: &Formula, out: &mut SafetyCanonical) -> bool {
    match f {
        Formula::Pred(e) => {
            out.init.push(e.clone());
            true
        }
        Formula::Always(inner) => match inner.as_ref() {
            Formula::Pred(e) => {
                out.invariants.push(e.clone());
                true
            }
            Formula::And(fs) if fs.iter().all(|g| matches!(g, Formula::Pred(_))) => {
                for g in fs {
                    if let Formula::Pred(e) = g {
                        out.invariants.push(e.clone());
                    }
                }
                true
            }
            _ => false,
        },
        Formula::ActBox { action, sub } => {
            out.boxes.push((action.clone(), sub.clone()));
            true
        }
        Formula::And(fs) => fs.iter().all(|g| collect(g, out)),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_kernel::{Domain, Value, Vars};

    fn setup() -> (Vars, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, 3));
        (vars, x)
    }

    fn st(i: i64) -> State {
        State::new(vec![Value::Int(i)])
    }

    fn counter_spec(x: VarId) -> Formula {
        // x = 0 ∧ □[x' = x + 1]_x
        Formula::pred(Expr::var(x).eq(Expr::int(0))).and(Formula::act_box(
            Expr::prime(x).eq(Expr::var(x).add(Expr::int(1))),
            vec![x],
        ))
    }

    #[test]
    fn recognizes_canonical_shape() {
        let (_, x) = setup();
        let f = counter_spec(x).and(Formula::pred(Expr::var(x).le(Expr::int(3))).always());
        let sc = safety_canonical(&f).expect("canonical");
        assert_eq!(sc.init.len(), 1);
        assert_eq!(sc.invariants.len(), 1);
        assert_eq!(sc.boxes.len(), 1);
    }

    #[test]
    fn rejects_liveness() {
        let (_, x) = setup();
        let f = Formula::pred(Expr::var(x).eq(Expr::int(0))).eventually();
        assert!(safety_canonical(&f).is_none());
        let f = Formula::wf(Expr::bool(true), vec![x]);
        assert!(safety_canonical(&f).is_none());
        let f = counter_spec(x).and(Formula::tt().closure());
        assert!(safety_canonical(&f).is_none());
    }

    #[test]
    fn prefix_checking() {
        let (_, x) = setup();
        let sc = safety_canonical(&counter_spec(x)).unwrap();
        assert!(sc.check_prefix(&[]).unwrap());
        assert!(sc.check_prefix(&[st(0)]).unwrap());
        assert!(sc.check_prefix(&[st(0), st(1), st(1), st(2)]).unwrap());
        // Wrong init.
        assert!(!sc.check_prefix(&[st(1)]).unwrap());
        // Bad step (decrement).
        assert!(!sc.check_prefix(&[st(0), st(1), st(0)]).unwrap());
    }

    #[test]
    fn first_failing_prefix_on_lasso() {
        let (_, x) = setup();
        let sc = safety_canonical(&counter_spec(x)).unwrap();
        // 0 1 (2)^ω — all steps legal or stuttering: never fails.
        let good = Lasso::new(vec![st(0), st(1), st(2)], 2).unwrap();
        assert_eq!(sc.first_failing_prefix(&good).unwrap(), None);
        assert!(sc.holds_lasso(&good).unwrap());
        // 0 1 (0)^ω — the step 1→0 is illegal; it is step index 1, so
        // the prefix of length 3 is the first failing one.
        let bad = Lasso::new(vec![st(0), st(1), st(0)], 2).unwrap();
        assert_eq!(sc.first_failing_prefix(&bad).unwrap(), Some(3));
        assert!(!sc.holds_lasso(&bad).unwrap());
        // Wrong init fails at prefix length 1.
        let wrong = Lasso::stutter(st(2));
        assert_eq!(sc.first_failing_prefix(&wrong).unwrap(), Some(1));
    }

    #[test]
    fn invariant_violation_position() {
        let (_, x) = setup();
        let f = Formula::pred(Expr::var(x).le(Expr::int(1))).always();
        let sc = safety_canonical(&f).unwrap();
        // 0 1 (2)^ω: invariant fails at position 2 → prefix length 3.
        let sigma = Lasso::new(vec![st(0), st(1), st(2)], 2).unwrap();
        assert_eq!(sc.first_failing_prefix(&sigma).unwrap(), Some(3));
    }

    #[test]
    fn wrap_step_is_checked() {
        let (_, x) = setup();
        // □[x' = x + 1]_x with lasso 0 (1 2)^ω: the wrap step 2→1 is
        // illegal; it is step index 2, prefix length 4.
        let f = Formula::act_box(
            Expr::prime(x).eq(Expr::var(x).add(Expr::int(1))),
            vec![x],
        );
        let sc = safety_canonical(&f).unwrap();
        let sigma = Lasso::new(vec![st(0), st(1), st(2)], 1).unwrap();
        assert_eq!(sc.first_failing_prefix(&sigma).unwrap(), Some(4));
        assert!(!sc.holds_lasso(&sigma).unwrap());
    }
}
