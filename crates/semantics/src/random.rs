//! Random behavior generation.
//!
//! Used by the property-based test suites (and benchmark workload
//! generators) to sample behaviors from a finite universe uniformly
//! enough to exercise the semantic operators.

use crate::{Lasso, Universe};
use opentla_kernel::{State, Value};
use rand::Rng;

/// Samples a uniformly random state of the universe.
pub fn random_state<R: Rng + ?Sized>(universe: &Universe, rng: &mut R) -> State {
    let vars = universe.vars();
    let values: Vec<Value> = vars
        .iter()
        .map(|v| {
            let d = vars.domain(v);
            d.values()[rng.gen_range(0..d.len())].clone()
        })
        .collect();
    State::new(values)
}

/// Samples a random lasso with up to `max_len` stored states and a
/// random loop start.
///
/// # Panics
///
/// Panics if `max_len` is zero.
pub fn random_lasso<R: Rng + ?Sized>(
    universe: &Universe,
    max_len: usize,
    rng: &mut R,
) -> Lasso {
    assert!(max_len > 0, "max_len must be positive");
    let len = rng.gen_range(1..=max_len);
    let states: Vec<State> = (0..len).map(|_| random_state(universe, rng)).collect();
    let loop_start = rng.gen_range(0..len);
    Lasso::new(states, loop_start).expect("nonempty by construction")
}

/// Enumerates **every** lasso over the universe with at most `max_len`
/// stored states (all state sequences × all loop starts).
///
/// The count is `Σ_{k=1..max_len} |U|^k · k`, so this is only for small
/// universes — it is the exhaustive oracle used to check *validity*
/// (`⊨ F`) claims in tests: for finite-state behaviors, a formula of
/// the mechanized fragment is valid iff it holds on every lasso.
pub fn all_lassos(universe: &Universe, max_len: usize) -> Vec<Lasso> {
    let states: Vec<State> = universe.states().collect();
    let mut out = Vec::new();
    let mut seqs: Vec<Vec<State>> = vec![vec![]];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for seq in &seqs {
            for s in &states {
                let mut longer = seq.clone();
                longer.push(s.clone());
                for loop_start in 0..longer.len() {
                    out.push(
                        Lasso::new(longer.clone(), loop_start).expect("nonempty"),
                    );
                }
                next.push(longer);
            }
        }
        seqs = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_kernel::{Domain, Vars};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn universe() -> Universe {
        let mut vars = Vars::new();
        vars.declare("x", Domain::bits());
        vars.declare("y", Domain::int_range(0, 2));
        Universe::new(vars)
    }

    #[test]
    fn random_states_are_in_domain() {
        let u = universe();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let s = random_state(&u, &mut rng);
            assert!(u.contains(&s));
        }
    }

    #[test]
    fn random_lassos_are_well_formed() {
        let u = universe();
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let l = random_lasso(&u, 5, &mut rng);
            assert!(l.len() <= 5);
            assert!(l.loop_start() < l.len());
            for s in l.states() {
                assert!(u.contains(s));
            }
        }
    }

    #[test]
    fn all_lassos_counts() {
        let mut vars = Vars::new();
        vars.declare("b", Domain::bits());
        let u = Universe::new(vars);
        // |U| = 2: k=1 → 2·1, k=2 → 4·2: total 10.
        let ls = all_lassos(&u, 2);
        assert_eq!(ls.len(), 10);
        // All distinct and well-formed.
        for (i, l) in ls.iter().enumerate() {
            assert!(l.loop_start() < l.len());
            assert!(!ls[..i].contains(l));
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let u = universe();
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        assert_eq!(random_lasso(&u, 4, &mut a), random_lasso(&u, 4, &mut b));
    }
}
