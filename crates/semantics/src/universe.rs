//! Finite universes of states.

use crate::SemanticsError;
use opentla_kernel::{Expr, State, StatePair, Value, VarId, Vars};

/// A finite universe: every declared variable ranges over its finite
/// domain, and a state is any element of the domain product.
///
/// Universes make the non-local constructs of the logic decidable:
/// `Enabled A` (needed by `WF`/`SF`), witness search for `∃`, and
/// extension search for prefix satisfaction.
#[derive(Clone, Debug)]
pub struct Universe {
    vars: Vars,
}

impl Universe {
    /// Builds a universe over a variable registry.
    pub fn new(vars: Vars) -> Self {
        Universe { vars }
    }

    /// The underlying registry.
    pub fn vars(&self) -> &Vars {
        &self.vars
    }

    /// Total number of states, if it fits a `u128`.
    pub fn state_count(&self) -> Option<u128> {
        self.vars.state_space_size()
    }

    /// Whether every variable of the state is within its domain.
    pub fn contains(&self, s: &State) -> bool {
        self.vars.iter().all(|v| {
            s.try_get(v)
                .is_some_and(|val| self.vars.domain(v).contains(val))
        })
    }

    /// Enumerates all states of the universe, in lexicographic domain
    /// order.
    pub fn states(&self) -> StatesIter<'_> {
        StatesIter {
            universe: self,
            indices: vec![0; self.vars.len()],
            done: false,
        }
    }

    /// Enumerates the states that agree with `base` outside of `vary`,
    /// while the listed variables range over their domains.
    pub fn variants<'a>(
        &'a self,
        base: &State,
        vary: &'a [VarId],
    ) -> impl Iterator<Item = State> + 'a {
        VariantsIter {
            universe: self,
            base: base.clone(),
            vary,
            indices: vec![0; vary.len()],
            done: vary.iter().any(|v| v.index() >= base.len()),
        }
    }

    /// Decides `Enabled A` in state `s`: whether some universe state
    /// `t` makes `⟨s, t⟩` an `A` step.
    ///
    /// The witness search varies only the variables primed in `A` —
    /// sound because `A` cannot observe the others in the next state —
    /// and within those, skips variables a top-level `v' = v` conjunct
    /// pins to their current value (see
    /// [`opentla_kernel::determined_primes`]). Actions with frame
    /// conditions prime every variable, so the search would otherwise
    /// enumerate (nearly) the whole universe per query. `Enabled` also
    /// distributes over disjunction, which keeps the pruning effective
    /// for joint actions `A₁ ∨ … ∨ Aₖ` whose frame conditions differ
    /// per disjunct.
    ///
    /// # Errors
    ///
    /// Propagates expression evaluation errors.
    pub fn enabled(&self, action: &Expr, s: &State) -> Result<bool, SemanticsError> {
        // Enabled (A ∨ B) ≡ Enabled A ∨ Enabled B.
        if let Expr::Or(disjuncts) = action {
            for d in disjuncts {
                if self.enabled(d, s)? {
                    return Ok(true);
                }
            }
            return Ok(false);
        }
        // Enabled ((A ∨ B) ∧ R) ≡ Enabled (A ∧ R) ∨ Enabled (B ∧ R):
        // pull a disjunctive conjunct out so each branch exposes its own
        // frame conditions at the top level.
        if let Expr::And(conjuncts) = action {
            if let Some(pos) = conjuncts.iter().position(|c| matches!(c, Expr::Or(_))) {
                let Expr::Or(disjuncts) = &conjuncts[pos] else {
                    unreachable!("position matched an Or");
                };
                for d in disjuncts {
                    let mut branch = conjuncts.clone();
                    branch[pos] = d.clone();
                    if self.enabled(&Expr::all(branch), s)? {
                        return Ok(true);
                    }
                }
                return Ok(false);
            }
        }
        let determined = opentla_kernel::determined_primes(action);
        let vary: Vec<VarId> = action
            .primed_vars()
            .iter()
            .filter(|v| !determined.contains(*v))
            .collect();
        for t in self.variants(s, &vary) {
            if action.holds_action(StatePair::new(s, &t))? {
                return Ok(true);
            }
        }
        Ok(false)
    }
}

/// Iterator over all states of a universe.
pub struct StatesIter<'a> {
    universe: &'a Universe,
    indices: Vec<usize>,
    done: bool,
}

impl Iterator for StatesIter<'_> {
    type Item = State;

    fn next(&mut self) -> Option<State> {
        if self.done {
            return None;
        }
        let vars = &self.universe.vars;
        let values: Vec<Value> = vars
            .iter()
            .zip(&self.indices)
            .map(|(v, i)| vars.domain(v).values()[*i].clone())
            .collect();
        // Advance odometer.
        let mut carried = true;
        for (v, i) in vars.iter().zip(self.indices.iter_mut()) {
            if !carried {
                break;
            }
            *i += 1;
            if *i < vars.domain(v).len() {
                carried = false;
            } else {
                *i = 0;
            }
        }
        if carried {
            self.done = true;
        }
        Some(State::new(values))
    }
}

struct VariantsIter<'a> {
    universe: &'a Universe,
    base: State,
    vary: &'a [VarId],
    indices: Vec<usize>,
    done: bool,
}

impl Iterator for VariantsIter<'_> {
    type Item = State;

    fn next(&mut self) -> Option<State> {
        if self.done {
            return None;
        }
        let vars = &self.universe.vars;
        let updates: Vec<(VarId, Value)> = self
            .vary
            .iter()
            .zip(&self.indices)
            .map(|(v, i)| (*v, vars.domain(*v).values()[*i].clone()))
            .collect();
        let state = self.base.with(&updates);
        let mut carried = true;
        for (v, i) in self.vary.iter().zip(self.indices.iter_mut()) {
            if !carried {
                break;
            }
            *i += 1;
            if *i < vars.domain(*v).len() {
                carried = false;
            } else {
                *i = 0;
            }
        }
        if carried {
            self.done = true;
        }
        Some(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_kernel::Domain;

    fn setup() -> (Universe, VarId, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let y = vars.declare("y", Domain::int_range(0, 2));
        (Universe::new(vars), x, y)
    }

    #[test]
    fn enumerates_full_product() {
        let (u, _, _) = setup();
        let states: Vec<State> = u.states().collect();
        assert_eq!(states.len(), 6);
        assert_eq!(u.state_count(), Some(6));
        // All distinct.
        for (i, s) in states.iter().enumerate() {
            assert!(!states[..i].contains(s));
            assert!(u.contains(s));
        }
    }

    #[test]
    fn variants_fix_the_rest() {
        let (u, x, y) = setup();
        let base = State::new(vec![Value::Int(0), Value::Int(2)]);
        let vs: Vec<State> = u.variants(&base, &[x]).collect();
        assert_eq!(vs.len(), 2);
        for s in &vs {
            assert_eq!(s.get(y), &Value::Int(2));
        }
        // Varying nothing yields just the base.
        let vs: Vec<State> = u.variants(&base, &[]).collect();
        assert_eq!(vs, vec![base]);
    }

    #[test]
    fn enabledness() {
        let (u, x, y) = setup();
        // A = x' = 1 ∧ x = 0: enabled iff x = 0.
        let a = Expr::all([
            Expr::prime(x).eq(Expr::int(1)),
            Expr::var(x).eq(Expr::int(0)),
        ]);
        let s0 = State::new(vec![Value::Int(0), Value::Int(0)]);
        let s1 = State::new(vec![Value::Int(1), Value::Int(0)]);
        assert!(u.enabled(&a, &s0).unwrap());
        assert!(!u.enabled(&a, &s1).unwrap());
        // An action with an unsatisfiable prime constraint is disabled:
        // y' = 5 but 5 is outside y's domain.
        let b = Expr::prime(y).eq(Expr::int(5));
        assert!(!u.enabled(&b, &s0).unwrap());
    }

    #[test]
    fn enabledness_with_frame_conditions_and_disjunction() {
        let (u, x, y) = setup();
        let s0 = State::new(vec![Value::Int(0), Value::Int(0)]);
        let s1 = State::new(vec![Value::Int(1), Value::Int(2)]);
        // A = x = 0 ∧ x' = 1 ∧ UNCHANGED y: the y' = y conjunct is
        // determined, so the witness search varies only x — and the
        // verdict matches the unpruned semantics.
        let a = Expr::all([
            Expr::var(x).eq(Expr::int(0)),
            Expr::prime(x).eq(Expr::int(1)),
            Expr::prime(y).eq(Expr::var(y)),
        ]);
        assert!(u.enabled(&a, &s0).unwrap());
        assert!(!u.enabled(&a, &s1).unwrap());
        // B = y = 2 ∧ y' = 0 ∧ UNCHANGED x. The joint action A ∨ B is
        // enabled wherever either disjunct is, each pruned by its own
        // frame conditions.
        let b = Expr::all([
            Expr::var(y).eq(Expr::int(2)),
            Expr::prime(y).eq(Expr::int(0)),
            Expr::prime(x).eq(Expr::var(x)),
        ]);
        let joint = a.clone().or(b.clone());
        assert!(u.enabled(&joint, &s0).unwrap());
        assert!(u.enabled(&joint, &s1).unwrap());
        let neither = State::new(vec![Value::Int(1), Value::Int(0)]);
        assert!(!u.enabled(&joint, &neither).unwrap());
        // ⟨A ∨ B⟩_{x,y} nests the disjunction under a conjunction — the
        // distribution rule must still find each branch's witnesses.
        let angle = Expr::all([
            joint,
            opentla_kernel::unchanged(&[x, y]).not(),
        ]);
        assert!(u.enabled(&angle, &s0).unwrap());
        assert!(u.enabled(&angle, &s1).unwrap());
        assert!(!u.enabled(&angle, &neither).unwrap());
    }

    #[test]
    fn contains_rejects_out_of_domain() {
        let (u, _, _) = setup();
        let bad = State::new(vec![Value::Int(7), Value::Int(0)]);
        assert!(!u.contains(&bad));
        let short = State::new(vec![Value::Int(0)]);
        assert!(!u.contains(&short));
    }
}
