//! # opentla-semantics
//!
//! Executable trace semantics for the TLA fragment of *Open Systems in
//! TLA* (Abadi & Lamport, PODC 1994).
//!
//! A TLA formula is true or false of an infinite behavior. This crate
//! makes that definition executable for **lasso** (ultimately periodic)
//! behaviors — the class of behaviors that finite-state counterexamples
//! take — and for finite prefixes:
//!
//! * [`Lasso`] — an ultimately periodic behavior `s₀ … s_{l-1} (s_l …
//!   s_{k-1})^ω`;
//! * [`eval`] — exact evaluation of every operator of the fragment on a
//!   lasso, including the paper's `⊳`, `+v`, `⊥`, and `C`;
//! * [`prefix_sat`] — prefix satisfaction ("the finite behavior ρ can
//!   be extended to an infinite behavior satisfying F"), exact for
//!   safety-canonical formulas and via bounded search otherwise;
//! * [`Universe`] — a finite universe of states, needed to decide
//!   `Enabled` (for `WF`/`SF`), `∃` witnesses, and bounded extension
//!   search.
//!
//! The semantic evaluator is the *oracle* of the workspace: the
//! syntactic proof rules in the `opentla` crate are property-tested
//! against it.
//!
//! # Example
//!
//! ```
//! use opentla_kernel::{Vars, Domain, Expr, Formula, State, Value};
//! use opentla_semantics::{Lasso, eval, EvalCtx};
//!
//! let mut vars = Vars::new();
//! let x = vars.declare("x", Domain::bits());
//! let s0 = State::new(vec![Value::Int(0)]);
//! let s1 = State::new(vec![Value::Int(1)]);
//! // The behavior 0, 1, 1, 1, … satisfies ◇(x = 1) but not □(x = 1).
//! let sigma = Lasso::new(vec![s0, s1], 1).unwrap();
//! let even = Formula::pred(Expr::var(x).eq(Expr::int(1)));
//! let ctx = EvalCtx::default();
//! assert!(eval(&even.clone().eventually(), &sigma, &ctx).unwrap());
//! assert!(!eval(&even.always(), &sigma, &ctx).unwrap());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod behavior;
mod canonical;
mod error;
mod eval;
mod prefix;
mod random;
mod universe;

pub use behavior::Lasso;
pub use canonical::{safety_canonical, SafetyCanonical};
pub use error::SemanticsError;
pub use eval::{eval, EvalCtx};
pub use prefix::{first_failing_prefix, prefix_sat};
pub use random::{all_lassos, random_lasso, random_state};
pub use universe::Universe;
