//! Breadth-first state-space exploration.
//!
//! Two engines produce the same [`StateGraph`]:
//!
//! * a **sequential** engine — the reference implementation: plain BFS
//!   over the compiled successor stepper
//!   ([`crate::CompiledSystem`]);
//! * a **parallel** engine ([`explore_parallel`]) — level-synchronous
//!   BFS over a sharded visited set, followed by a deterministic
//!   renumbering pass that replays the discovery order sequentially.
//!   On complete runs the result is **byte-identical** to the
//!   sequential engine: same state indices, same edge lists, same
//!   [`GraphStats`], same counterexample traces.
//!
//! Both engines deduplicate states through a [`VisitedMode`]: either
//! **fingerprinting** (the default — 64-bit hashes in the visited set,
//! full states only in an append-only arena) or an **exact** fallback
//! that keys the visited set by the full state. See [`VisitedMode`]
//! for the soundness trade-off.

use crate::budget::{Budget, ExhaustReason, Governed, Meter, Outcome};
use crate::checkpoint::{self, Checkpointer, ResumeToken, Snapshot};
use crate::compiled::{CompiledSystem, EvalScratch};
use crate::obs::{Event, Phase, PhaseGuard, ProgressSnapshot, RunReport, OBS_SCHEMA_VERSION};
use crate::reduction::{AmpleScratch, Canonicalize, PreparedReduction, Reduction, ReductionStats};
use crate::{CheckError, System};
use fxhash::FxHashMap;
use opentla_kernel::State;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

// Every lock in the parallel engines guards state that is kept
// consistent *within* each critical section (pushes and map inserts
// happen together; see [`ParShared::intern_with`]), so the shared
// poison-recovering [`lock`] is safe here: a panic that poisons a
// lock leaves the protected data structurally sound — the worker's
// in-flight *results* are discarded separately by the panic-isolation
// path. Propagating the poison would instead turn one worker's bug
// into a whole-run abort.
use crate::sync::{lock, Striped, NUM_SHARDS};

mod spill;
mod spill_ws;
mod ws;

/// How the explorer remembers which states it has already seen.
///
/// This is the classic TLC trade-off between speed and certainty:
///
/// * [`VisitedMode::Fingerprint`] (the default) stores only a 64-bit
///   hash of each state in the visited set. Two distinct states with
///   the same fingerprint are conflated, so a collision can only make
///   the explorer **miss** reachable states (an under-approximation) —
///   it never invents unreachable ones, so every state and trace in
///   the graph is still genuine. With `n` distinct states the
///   probability of any collision is about `n² / 2⁶⁵` (birthday
///   bound): ≈ 3 × 10⁻⁸ at a million states. This mirrors TLC, which
///   has run on this design for twenty-five years.
/// * [`VisitedMode::Exact`] keys the visited set by the full state:
///   no collisions possible, at the cost of hashing and storing whole
///   states. Use it when a run must be collision-free by construction
///   (e.g. when a check's verdict feeds a proof).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum VisitedMode {
    /// 64-bit fingerprints in the visited set (fast; collisions
    /// under-approximate with probability ≈ n²/2⁶⁵).
    #[default]
    Fingerprint,
    /// Full states in the visited set (slower; exact).
    Exact,
}

/// Options controlling exploration.
#[derive(Clone, Debug)]
pub struct ExploreOptions {
    /// Abort with [`CheckError::TooManyStates`] beyond this many
    /// reachable states. Default 1 000 000.
    pub max_states: usize,
    /// Visited-set representation. Default
    /// [`VisitedMode::Fingerprint`].
    pub mode: VisitedMode,
    /// Worker threads. `None` (the default) consults the
    /// `OPENTLA_EXPLORE_THREADS` environment variable, falling back to
    /// 1 (sequential). Any resolved value above 1 routes [`explore`] /
    /// [`explore_governed`] through the parallel engine.
    pub threads: Option<usize>,
    /// Fingerprint width in bits, 1..=64 (default 64). Values below 64
    /// mask the fingerprint, deliberately *forcing* collisions — a test
    /// knob for exercising the under-approximation and the
    /// [`VisitedMode::Exact`] fallback; production runs should leave
    /// this at 64.
    pub fp_bits: u32,
    /// State-space reduction (ample-set partial-order and/or symmetry
    /// reduction; see [`Reduction`]). Defaults to [`Reduction::none`]:
    /// the engines then take exactly their unreduced code paths and
    /// produce bit-for-bit the same graphs as before the reduction
    /// subsystem existed. Reduced graphs answer state-invariant
    /// queries only — liveness and step-invariant checks refuse them.
    pub reduction: Reduction,
    /// Fault-injection knob for the parallel engine's panic isolation:
    /// when set, exactly one worker deliberately panics mid-expansion
    /// (see [`WorkerPanic`]). The run must survive degraded — this
    /// exists so tests can prove it does. `None` (the default) injects
    /// nothing; the sequential engines ignore it.
    pub worker_panic: Option<WorkerPanic>,
    /// Which parallel engine runs when the resolved thread count calls
    /// for one. Default [`Engine::LevelSync`] — bit-for-bit the
    /// pre-existing behavior. [`Engine::WorkStealing`] selects the
    /// barrier-free packed-state engine (see [`explore_parallel_ws`]);
    /// reduced runs and [`WorkerPanic`] injection always fall back to
    /// the level-synchronous path, which remains the reduced/proviso
    /// engine.
    pub engine: Engine,
    /// Graphs that stay below this many states are explored
    /// sequentially even when a parallel engine was requested: worker
    /// setup costs orders of magnitude more than the whole exploration
    /// on dozen-state graphs. The parallel engine probes sequentially
    /// up to the cutoff and only pays for workers once the graph
    /// outgrows it. `None` (the default) uses
    /// [`PAR_SMALL_GRAPH_CUTOFF`]; `Some(0)` disables the routing
    /// (tests that must exercise parallel machinery on tiny graphs
    /// do). Checkpointed, resumed, and panic-injection runs never
    /// probe — their semantics are pinned to the parallel engine.
    pub small_graph_cutoff: Option<usize>,
    /// Approximate RAM ceiling, in bytes, for the exploration's state
    /// arena, edge lists, and visited set. Setting it (or exporting
    /// `OPENTLA_MEM_BUDGET`) routes unreduced runs to a bounded-memory
    /// engine — single-threaded runs to [`Engine::SpillBfs`], parallel
    /// runs to [`Engine::SpillWs`] — which spills sealed arena
    /// segments and sorted fingerprint runs to disk and keeps only a
    /// budget-sized working set in RAM. `None` (the default) keeps
    /// everything in RAM; an explicit spill engine with `None` uses a
    /// generous default budget. Configurations that *cannot* honor a
    /// budget (reduction-active or panic-injection runs, which are
    /// pinned to the in-RAM level-synchronous engine) refuse an
    /// explicit budget with [`CheckError::Precondition`] and report an
    /// environment-derived one as ignored via
    /// [`Event::BudgetIgnored`](crate::Event) rather than silently
    /// exploring unbounded.
    pub mem_budget_bytes: Option<usize>,
}

/// Selects the parallel exploration engine; see
/// [`ExploreOptions::engine`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// The PR2 level-synchronous engine: BFS levels end in a barrier
    /// plus canonical renumbering. The only engine that runs reduced
    /// (ample-set / symmetry) explorations.
    #[default]
    LevelSync,
    /// The barrier-free work-stealing engine over packed state
    /// buffers: per-worker deques, quiescence-based termination, one
    /// canonical renumbering post-pass. Produces graphs byte-identical
    /// to the sequential engine. Falls back to the `Value`-tree state
    /// representation when the system's domains do not compile to a
    /// [`opentla_kernel::PackedLayout`].
    WorkStealing,
    /// The bounded-memory sequential engine: same BFS order and charge
    /// discipline as the in-RAM sequential engine, but the state arena
    /// and edge lists live in an append-only disk-backed segment store
    /// (read back through an LRU cache) and the visited set spills
    /// sorted fingerprint runs once its hot tier fills. Completed
    /// graphs are byte-identical to the sequential engine's in both
    /// [`VisitedMode`]s. Selecting it explicitly forces the spill path
    /// even without a [`ExploreOptions::mem_budget_bytes`] budget;
    /// reduced and panic-injection runs fall back to level-sync.
    SpillBfs,
    /// The parallel bounded-memory engine: the work-stealing scheduler
    /// of [`Engine::WorkStealing`] running over the disk-backed tiers
    /// of [`Engine::SpillBfs`]. The hot fingerprint tier is sharded
    /// across the same 64 lock stripes as the in-RAM parallel visited
    /// sets, each shard draining to shared sorted fingerprint runs at
    /// a deterministic byte threshold; arena and edge records funnel
    /// through shared sealed-segment writers. Completed graphs are
    /// byte-identical to [`Engine::SpillBfs`] and to the sequential
    /// engine in both [`VisitedMode`]s. Selecting it explicitly forces
    /// the parallel spill path even without a budget; reduced and
    /// panic-injection runs fall back to level-sync.
    SpillWs,
}

/// Instructs one parallel worker to panic mid-expansion — test
/// instrumentation for the engine's panic isolation (see
/// [`ExploreOptions::worker_panic`]). The victim is whichever worker
/// makes the first frontier claim past `after_claims`, counted
/// globally across all workers and levels (a fire-once flag guarantees
/// exactly one panic per run). The panic fires inside the successor
/// callback, *after* at least one edge of the current parent was
/// recorded, so it exercises the coordinator's truncate-and-requeue
/// recovery rather than a clean boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerPanic {
    /// The panic arms once this many frontier entries have been
    /// claimed run-wide (0 = panic during the first claimed parent).
    pub after_claims: u64,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_states: 1_000_000,
            mode: VisitedMode::Fingerprint,
            threads: None,
            fp_bits: 64,
            reduction: Reduction::none(),
            worker_panic: None,
            engine: Engine::LevelSync,
            small_graph_cutoff: None,
            mem_budget_bytes: None,
        }
    }
}

impl ExploreOptions {
    fn mask(&self) -> u64 {
        fp_mask(self.fp_bits)
    }

    /// Whether this configuration routes to the work-stealing engine:
    /// reduction and panic-injection runs stay on the level-sync path
    /// (the former by design — the proviso needs level boundaries —
    /// the latter because the injection hook instruments that
    /// engine's claim counter).
    fn ws_routed(&self) -> bool {
        self.engine == Engine::WorkStealing
            && !self.reduction.is_active()
            && self.worker_panic.is_none()
    }

    /// The memory budget in force: the explicit option wins, the
    /// `OPENTLA_MEM_BUDGET` environment override fills in otherwise.
    pub(crate) fn resolved_mem_budget(&self) -> Option<usize> {
        self.mem_budget_bytes.or_else(env_mem_budget)
    }

    /// Whether this configuration routes to the bounded-memory spill
    /// engine. Reduction and panic-injection runs never do (they stay
    /// on level-sync, like [`ws_routed`](Self::ws_routed)); an explicit
    /// [`Engine::SpillBfs`] always does; otherwise a memory budget
    /// routes the default engine's single-threaded runs there.
    fn spill_routed(&self, threads: usize) -> bool {
        if self.reduction.is_active() || self.worker_panic.is_some() {
            return false;
        }
        match self.engine {
            Engine::SpillBfs => true,
            Engine::LevelSync => threads == 1 && self.resolved_mem_budget().is_some(),
            Engine::WorkStealing | Engine::SpillWs => false,
        }
    }

    /// Whether this configuration routes to the parallel bounded-memory
    /// engine. Reduction and panic-injection runs never do; an explicit
    /// [`Engine::SpillWs`] always does; otherwise a memory budget
    /// routes the configurations the sequential spill engine does not
    /// cover — multi-threaded default-engine runs and work-stealing
    /// runs — so a budget is honored at *every* thread count instead of
    /// silently disabling parallelism (or being ignored).
    fn spill_ws_routed(&self, threads: usize) -> bool {
        if self.reduction.is_active() || self.worker_panic.is_some() {
            return false;
        }
        match self.engine {
            Engine::SpillWs => true,
            Engine::LevelSync => threads > 1 && self.resolved_mem_budget().is_some(),
            Engine::WorkStealing => self.resolved_mem_budget().is_some(),
            Engine::SpillBfs => false,
        }
    }
}

fn fp_mask(fp_bits: u32) -> u64 {
    if fp_bits >= 64 {
        u64::MAX
    } else {
        (1u64 << fp_bits.max(1)) - 1
    }
}

/// Default state-count cutoff below which a requested parallel
/// exploration runs sequentially instead (see
/// [`ExploreOptions::small_graph_cutoff`]).
pub const PAR_SMALL_GRAPH_CUTOFF: usize = 256;

/// The `OPENTLA_EXPLORE_THREADS` override, if set to a positive
/// integer.
pub(crate) fn env_threads() -> Option<usize> {
    std::env::var("OPENTLA_EXPLORE_THREADS")
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&n: &usize| n >= 1)
}

/// The `OPENTLA_MEM_BUDGET` override, if set to a positive byte
/// count. Mirrors [`env_threads`]: an explicit
/// [`ExploreOptions::mem_budget_bytes`] wins over the environment.
pub(crate) fn env_mem_budget() -> Option<usize> {
    std::env::var("OPENTLA_MEM_BUDGET")
        .ok()?
        .trim()
        .parse()
        .ok()
        .filter(|&n: &usize| n >= 1)
}

/// Summary statistics of a reachability graph; see
/// [`StateGraph::stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of reachable states.
    pub states: usize,
    /// Number of (non-stuttering) transitions.
    pub transitions: usize,
    /// Number of states without outgoing transitions.
    pub deadlocks: usize,
    /// Longest shortest path from an initial state (BFS depth).
    pub depth: usize,
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} states, {} transitions, depth {}, {} deadlocks",
            self.states, self.transitions, self.depth, self.deadlocks
        )
    }
}

/// An edge of the reachability graph: which action fired and where it
/// leads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Index of the action in the system's action list.
    pub action: usize,
    /// Index of the target state in the graph.
    pub target: usize,
}

/// The visited set of a [`StateGraph`], in either representation.
#[derive(Clone, Debug)]
enum Visited {
    Exact(HashMap<State, usize>),
    Fingerprint {
        map: FxHashMap<u64, usize>,
        mask: u64,
    },
}

impl Visited {
    fn new(mode: VisitedMode, mask: u64) -> Visited {
        match mode {
            VisitedMode::Exact => Visited::Exact(HashMap::new()),
            VisitedMode::Fingerprint => Visited::Fingerprint {
                map: FxHashMap::default(),
                mask,
            },
        }
    }

    /// Looks up a state, returning its id if (a state with the same
    /// key as) it was seen, plus the fingerprint key for a subsequent
    /// [`Visited::insert`] (0 in exact mode).
    fn lookup(&self, s: &State) -> (Option<usize>, u64) {
        match self {
            Visited::Exact(map) => (map.get(s).copied(), 0),
            Visited::Fingerprint { map, mask } => {
                let fp = s.fingerprint() & mask;
                (map.get(&fp).copied(), fp)
            }
        }
    }

    /// Records a state under the key computed by [`Visited::lookup`].
    fn insert(&mut self, s: &State, fp: u64, id: usize) {
        match self {
            Visited::Exact(map) => {
                map.insert(s.clone(), id);
            }
            Visited::Fingerprint { map, .. } => {
                map.insert(fp, id);
            }
        }
    }

}

/// The reachable state graph of a [`System`], with a BFS tree for
/// shortest-trace reconstruction.
///
/// Exploration order is deterministic (BFS over the system's action
/// order), so state indices — and therefore counterexamples — are
/// reproducible. The parallel engine preserves this: its renumbering
/// pass restores the exact sequential ordering.
#[derive(Clone, Debug)]
pub struct StateGraph {
    states: Vec<State>,
    visited: Visited,
    init: Vec<usize>,
    edges: Vec<Vec<Edge>>,
    parents: Vec<Option<(usize, usize)>>,
    /// Whether any reduction pruned this graph (see
    /// [`StateGraph::is_reduced`]).
    reduced: bool,
    /// The symmetry canonicalizer the exploration ran under, if any —
    /// kept so lookups and counterexample concretization can map
    /// through orbits.
    canon: Option<Arc<dyn Canonicalize>>,
}

impl StateGraph {
    fn new(mode: VisitedMode, mask: u64) -> StateGraph {
        StateGraph {
            states: Vec::new(),
            visited: Visited::new(mode, mask),
            init: Vec::new(),
            edges: Vec::new(),
            parents: Vec::new(),
            reduced: false,
            canon: None,
        }
    }

    /// Number of reachable states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the graph is empty (no initial states).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Total number of (non-stuttering) transitions.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The state with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn state(&self, id: usize) -> &State {
        &self.states[id]
    }

    /// All reachable states in discovery order.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// The index of a state, if recorded.
    ///
    /// In fingerprint mode the candidate found by fingerprint is
    /// verified against the arena, so this never misattributes an
    /// index: a state displaced by a fingerprint collision (not
    /// recorded) answers `None`. On a symmetry-reduced graph the state
    /// is canonicalized first, so any member of a recorded orbit finds
    /// its representative.
    pub fn index_of(&self, s: &State) -> Option<usize> {
        let canonical;
        let s = match &self.canon {
            Some(c) => {
                canonical = c.canonicalize(s);
                &canonical
            }
            None => s,
        };
        let (candidate, _) = self.visited.lookup(s);
        let id = candidate?;
        match &self.visited {
            Visited::Exact(_) => Some(id),
            Visited::Fingerprint { .. } => (&self.states[id] == s).then_some(id),
        }
    }

    /// Whether this graph was built under an active [`Reduction`]. A
    /// reduced graph soundly answers *state-invariant* reachability
    /// (for properties respecting the reduction's observability and
    /// symmetry obligations), but omits interleavings — so
    /// [`crate::check_liveness`] and [`crate::check_step_invariant`]
    /// refuse it and require a full exploration instead (the ignoring
    /// problem; see [`crate::Reduction`]).
    pub fn is_reduced(&self) -> bool {
        self.reduced
    }

    /// The symmetry canonicalizer this graph was explored under.
    pub(crate) fn canonicalizer(&self) -> Option<&dyn Canonicalize> {
        self.canon.as_deref()
    }

    /// Indices of the initial states.
    pub fn init(&self) -> &[usize] {
        &self.init
    }

    /// Outgoing edges of a state.
    pub fn edges(&self, id: usize) -> &[Edge] {
        &self.edges[id]
    }

    /// States with no outgoing transition — "deadlocks" in the TLC
    /// sense. In TLA semantics these states merely stutter forever,
    /// which is often legitimate (a terminated protocol), but an
    /// unexpected deadlock usually signals an over-constrained guard.
    pub fn deadlocks(&self) -> Vec<usize> {
        (0..self.len()).filter(|i| self.edges[*i].is_empty()).collect()
    }

    /// Summary statistics of the graph: states, transitions, deadlock
    /// count, and the BFS depth (longest shortest path from an initial
    /// state).
    pub fn stats(&self) -> GraphStats {
        // BFS depth from all initial states.
        let mut depth = vec![usize::MAX; self.len()];
        let mut queue = std::collections::VecDeque::new();
        for &i in &self.init {
            depth[i] = 0;
            queue.push_back(i);
        }
        let mut max_depth = 0;
        while let Some(s) = queue.pop_front() {
            for e in &self.edges[s] {
                if depth[e.target] == usize::MAX {
                    depth[e.target] = depth[s] + 1;
                    max_depth = max_depth.max(depth[e.target]);
                    queue.push_back(e.target);
                }
            }
        }
        GraphStats {
            states: self.len(),
            transitions: self.edge_count(),
            deadlocks: self.deadlocks().len(),
            depth: max_depth,
        }
    }

    /// The shortest trace from an initial state to `id`, as
    /// `(action index leading into the state, state index)` pairs; the
    /// first entry has no action.
    pub fn trace_to(&self, id: usize) -> Vec<(Option<usize>, usize)> {
        let mut rev = Vec::new();
        let mut cur = id;
        loop {
            match self.parents[cur] {
                Some((pred, action)) => {
                    rev.push((Some(action), cur));
                    cur = pred;
                }
                None => {
                    rev.push((None, cur));
                    break;
                }
            }
        }
        rev.reverse();
        rev
    }

    /// Shortest path (sequence of `(action, state)` hops) from `from`
    /// to `to` inside the subgraph induced by `allowed` (a predicate on
    /// state indices). Returns `None` if unreachable.
    ///
    /// The path starts *after* `from`: an empty path means
    /// `from == to`.
    pub fn path_within(
        &self,
        from: usize,
        to: usize,
        mut allowed: impl FnMut(usize) -> bool,
    ) -> Option<Vec<(usize, usize)>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut prev: HashMap<usize, (usize, usize)> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(s) = queue.pop_front() {
            for e in &self.edges[s] {
                if !allowed(e.target) || prev.contains_key(&e.target) || e.target == from
                {
                    continue;
                }
                prev.insert(e.target, (s, e.action));
                if e.target == to {
                    let mut rev = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let (p, a) = prev[&cur];
                        rev.push((a, cur));
                        cur = p;
                    }
                    rev.reverse();
                    return Some(rev);
                }
                queue.push_back(e.target);
            }
        }
        None
    }
}

/// A (possibly partial) exploration: the graph built so far, how the
/// run ended, and — when the budget ran out — the BFS frontier still
/// waiting to be expanded.
///
/// Dereferences to its [`StateGraph`], so invariant checks and trace
/// reconstruction work on partial explorations unchanged.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// The reachability graph built within budget. On a
    /// [`Outcome::Complete`] run this is the full reachable graph.
    pub graph: StateGraph,
    /// Whether the run covered the whole reachable space.
    pub outcome: Outcome,
    /// State indices discovered but not yet expanded when the run
    /// stopped (empty on complete runs). Edges out of these states are
    /// missing from `graph`. The sequential engine reports them in BFS
    /// queue order; multi-worker parallel runs in ascending index
    /// order.
    pub frontier: Vec<usize>,
    /// What the reduction pruned, when one was active (`None` on
    /// unreduced runs).
    pub reduction: Option<ReductionStats>,
    /// The run's resumable core, when it exhausted its budget at a
    /// resumable point (`None` on complete runs, and on runs cut off
    /// during initial-state enumeration — a partial init enumeration
    /// cannot be resumed soundly). This is the same snapshot an active
    /// [`Budget::with_checkpoint`] writes to disk;
    /// [`explore_escalating`] hands it straight back to the next
    /// attempt, in memory.
    pub snapshot: Option<Box<Snapshot>>,
}

impl std::ops::Deref for Exploration {
    type Target = StateGraph;

    fn deref(&self) -> &StateGraph {
        &self.graph
    }
}

impl Governed for Exploration {
    fn exhaustion(&self) -> Option<&ExhaustReason> {
        self.outcome.exhaustion()
    }
}

/// Explores the reachable states of a system breadth-first under a
/// resource [`Budget`].
///
/// Budget exhaustion is **not** an error: the result carries the
/// partial [`StateGraph`] (every state and edge recorded is genuinely
/// reachable), an [`Outcome::Exhausted`] tag with the reason and
/// statistics, and the unexpanded BFS frontier. Unique states are
/// counted once, at insertion — the initial-state loop and the
/// successor loop charge the same meter, so the limit trips at exactly
/// `max_states` regardless of where the frontier stood.
///
/// Uses default [`ExploreOptions`] (fingerprinted visited set;
/// `OPENTLA_EXPLORE_THREADS` consulted for the engine); see
/// [`explore_governed_with`] for full control.
///
/// # Errors
///
/// * [`CheckError::NoInitialStates`] if the initial specification is
///   empty;
/// * evaluation/domain errors from firing actions.
pub fn explore_governed(system: &System, budget: &Budget) -> Result<Exploration, CheckError> {
    explore_governed_with(system, budget, &ExploreOptions::default())
}

/// [`explore_governed`] with explicit [`ExploreOptions`] (visited-set
/// mode, thread count, fingerprint width). `options.max_states` is
/// ignored here — the budget governs.
///
/// # Errors
///
/// As [`explore_governed`].
pub fn explore_governed_with(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
) -> Result<Exploration, CheckError> {
    let threads = options.threads.or_else(env_threads).unwrap_or(1).max(1);
    explore_observed(system, budget, options, threads, None)
}

/// Crash-tolerant exploration: continues from the snapshot at the
/// budget's [`CheckpointSpec`](crate::CheckpointSpec) path if one
/// exists, and starts a fresh (checkpointed) run otherwise — so the
/// *same call* works before and after an interruption, TLC
/// `-recover`-style.
///
/// The resumed run re-expands only the snapshot's frontier: O(new
/// work), not O(total). Its cumulative state/transition totals (the
/// meter is pre-charged with the snapshot's banked work) and — once
/// complete — its [`StateGraph`] are byte-identical to an
/// uninterrupted run's.
///
/// # Errors
///
/// * [`CheckError::Precondition`] if the budget has no
///   [`Budget::with_checkpoint`] spec;
/// * [`CheckError::Checkpoint`] if the snapshot file exists but is
///   corrupt, truncated, of an unsupported version, or was taken under
///   a different system or configuration;
/// * otherwise as [`explore_governed`].
pub fn explore_resumable(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
) -> Result<Exploration, CheckError> {
    let Some(spec) = &budget.checkpoint else {
        return Err(CheckError::Precondition {
            message: "explore_resumable requires a budget with a checkpoint spec \
                      (Budget::with_checkpoint)"
                .into(),
        });
    };
    if spec.path.exists() {
        let snap = Snapshot::load(&spec.path)?;
        resume_exploration(system, budget, options, &snap)
    } else {
        explore_governed_with(system, budget, options)
    }
}

/// Continues an exploration from an in-memory [`Snapshot`] (use
/// [`explore_resumable`] for the load-from-disk path).
///
/// The snapshot is validated first: resuming under a different system,
/// fingerprint width, [`VisitedMode`], or reduction activity is
/// refused with a typed error rather than silently producing a wrong
/// graph. Any engine may resume any snapshot — thread count is not
/// pinned, because the parallel engine's canonical renumbering makes
/// the result independent of it.
///
/// # Errors
///
/// * [`CheckError::Checkpoint`] with
///   [`CheckpointError::Mismatch`](crate::CheckpointError::Mismatch)
///   if the snapshot does not match `system` / `options`;
/// * otherwise as [`explore_governed`].
pub fn resume_exploration(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
    snapshot: &Snapshot,
) -> Result<Exploration, CheckError> {
    snapshot.validate(system, options)?;
    let threads = options.threads.or_else(env_threads).unwrap_or(1).max(1);
    if snapshot.spill.is_some() {
        // A spill snapshot references on-disk segment files; expand it
        // to the in-RAM form once, here, so every engine resumes from
        // the same materialized arena.
        let materialized = snapshot.clone().materialize(system)?;
        return explore_observed(system, budget, options, threads, Some(&materialized));
    }
    explore_observed(system, budget, options, threads, Some(snapshot))
}

/// [`escalate`](crate::escalate) specialized to exploration, with the
/// retries *resuming* instead of restarting: each exhausted attempt
/// leaves its frontier in [`Exploration::snapshot`], and the next
/// attempt (under a `factor`-times larger budget) continues from
/// exactly there. Total work across all attempts is therefore O(final
/// state space), not O(attempts × state space) — the quadratic
/// throwaway of restart-based escalation is gone.
///
/// Returns the first complete result, or the last partial one if every
/// attempt exhausted. Attempts cut off during initial-state
/// enumeration restart (there is nothing sound to resume).
///
/// # Errors
///
/// As [`explore_governed`].
pub fn explore_escalating(
    system: &System,
    budget: &Budget,
    factor: u32,
    attempts: usize,
    options: &ExploreOptions,
) -> Result<Exploration, CheckError> {
    let threads = options.threads.or_else(env_threads).unwrap_or(1).max(1);
    let mut current = budget.clone();
    let mut result = explore_observed(system, &current, options, threads, None)?;
    for _ in 1..attempts.max(1) {
        if result.outcome.is_complete() {
            break;
        }
        current = current.escalated(factor);
        let snap = result.snapshot.take();
        result = explore_observed(system, &current, options, threads, snap.as_deref())?;
    }
    Ok(result)
}

/// Routes to the engine picked by `threads`, preparing the reduction
/// tables once (a no-op `None` when reduction is off, so the default
/// path is exactly the pre-reduction code).
fn explore_dispatch(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
    threads: usize,
    resume: Option<&Snapshot>,
) -> Result<Exploration, CheckError> {
    if options.spill_routed(threads) {
        return spill::explore_spill(system, budget, options, resume);
    }
    if options.spill_ws_routed(threads) {
        return spill_ws::explore_spill_ws(system, budget, options, threads, resume);
    }
    if let Some(bytes) = options.resolved_mem_budget() {
        // Neither spill engine took the run, so the budget cannot be
        // honored (reduction-active or panic-injection configs, which
        // are pinned to the in-RAM level-sync engine). Never ignore it
        // silently: report it, and refuse outright when the caller
        // asked explicitly rather than via the environment.
        let reason = if options.reduction.is_active() {
            "reduction-active runs are pinned to the in-RAM level-synchronous engine"
        } else {
            "panic-injection runs are pinned to the in-RAM level-synchronous engine"
        };
        budget.recorder.record(&Event::BudgetIgnored {
            budget_bytes: bytes as u64,
            reason,
        });
        if options.mem_budget_bytes.is_some() {
            return Err(CheckError::Precondition {
                message: format!(
                    "mem_budget_bytes = {bytes} cannot be honored: {reason}; drop the \
                     budget or disable the conflicting option"
                ),
            });
        }
    }
    if options.ws_routed() {
        return ws::explore_ws(system, budget, options, threads, resume);
    }
    let prepared = options.reduction.prepare(system);
    if threads > 1 {
        explore_parallel_impl(system, budget, options, threads, prepared.as_ref(), resume)
    } else {
        explore_sequential(system, budget, options, prepared.as_ref(), resume)
    }
}

/// Brackets an engine dispatch in [`Event::RunStart`] /
/// [`Event::RunEnd`] when the budget carries an enabled recorder,
/// emitting a final *exact* progress snapshot (from the finished
/// graph's statistics, so it agrees with the report by construction)
/// and the schema-versioned [`RunReport`]. With the default null
/// recorder this is a single branch.
fn explore_observed(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
    threads: usize,
    resume: Option<&Snapshot>,
) -> Result<Exploration, CheckError> {
    let rec = budget.recorder.clone();
    if !rec.enabled() {
        return explore_dispatch(system, budget, options, threads, resume);
    }
    let engine = if options.spill_routed(threads) {
        "explore_spill"
    } else if options.spill_ws_routed(threads) {
        "explore_spill_ws"
    } else if options.ws_routed() {
        "explore_parallel_ws"
    } else if threads > 1 {
        "explore_parallel"
    } else {
        "explore_sequential"
    };
    let mode = match options.mode {
        VisitedMode::Fingerprint => "fingerprint",
        VisitedMode::Exact => "exact",
    };
    rec.record(&Event::RunStart {
        engine,
        threads,
        mode,
    });
    if let Some(snap) = resume {
        rec.record(&Event::Resume {
            seq: snap.seq,
            states: snap.states_used() as u64,
            transitions: snap.transitions_used() as u64,
            frontier: snap.frontier_len() as u64,
        });
    }
    let start = std::time::Instant::now();
    let result = explore_dispatch(system, budget, options, threads, resume);
    let report = match &result {
        Ok(run) => {
            let stats = run.graph.stats();
            if let Some(red) = &run.reduction {
                rec.record(&Event::Reduction {
                    ample_states: red.ample_states as u64,
                    full_states: red.full_states as u64,
                    skipped_transitions: red.skipped_transitions as u64,
                    canon_hits: red.canon_hits as u64,
                });
            }
            rec.record(&Event::Progress {
                snapshot: ProgressSnapshot {
                    states: stats.states as u64,
                    transitions: stats.transitions as u64,
                    elapsed_nanos: start.elapsed().as_nanos() as u64,
                    frontier: Some(run.frontier.len() as u64),
                    ..ProgressSnapshot::default()
                },
            });
            RunReport {
                schema_version: OBS_SCHEMA_VERSION,
                engine: engine.to_string(),
                threads,
                mode: mode.to_string(),
                states: stats.states,
                transitions: stats.transitions,
                depth: stats.depth,
                deadlocks: stats.deadlocks,
                outcome: run.outcome.to_string(),
                complete: run.outcome.is_complete(),
                duration_nanos: start.elapsed().as_nanos() as u64,
            }
        }
        Err(e) => RunReport {
            schema_version: OBS_SCHEMA_VERSION,
            engine: engine.to_string(),
            threads,
            mode: mode.to_string(),
            states: 0,
            transitions: 0,
            depth: 0,
            deadlocks: 0,
            outcome: format!("error: {e}"),
            complete: false,
            duration_nanos: start.elapsed().as_nanos() as u64,
        },
    };
    rec.record(&Event::RunEnd { report: &report });
    result
}

/// Explores the reachable states of a system breadth-first.
///
/// This is the all-or-nothing interface: exceeding
/// `options.max_states` is reported as an error. Callers who want the
/// partial graph (and finer-grained limits) should use
/// [`explore_governed`].
///
/// # Errors
///
/// * [`CheckError::NoInitialStates`] if the initial specification is
///   empty;
/// * [`CheckError::TooManyStates`] beyond `options.max_states`;
/// * evaluation/domain errors from firing actions.
pub fn explore(system: &System, options: &ExploreOptions) -> Result<StateGraph, CheckError> {
    let run = explore_governed_with(
        system,
        &Budget::default().states(options.max_states),
        options,
    )?;
    match run.outcome {
        Outcome::Complete => Ok(run.graph),
        Outcome::Exhausted { .. } => Err(CheckError::TooManyStates {
            limit: options.max_states,
        }),
    }
}

/// Explores with the parallel engine unconditionally (worker count
/// from `options.threads`, the `OPENTLA_EXPLORE_THREADS` environment
/// variable, or the machine's available parallelism, in that order).
///
/// On complete runs the result is byte-identical to [`explore`]: the
/// level-synchronous workers record edges per parent in action order,
/// and a sequential renumbering pass replays the canonical BFS
/// discovery order over those records. When only one worker is
/// available the engine delegates to the sequential implementation
/// outright — a single-worker level-synchronous BFS *is* sequential
/// BFS, so the coordination machinery would be pure overhead.
///
/// # Errors
///
/// As [`explore`].
pub fn explore_parallel(
    system: &System,
    options: &ExploreOptions,
) -> Result<StateGraph, CheckError> {
    let run = explore_parallel_governed(
        system,
        &Budget::default().states(options.max_states),
        options,
    )?;
    match run.outcome {
        Outcome::Complete => Ok(run.graph),
        Outcome::Exhausted { .. } => Err(CheckError::TooManyStates {
            limit: options.max_states,
        }),
    }
}

/// [`explore_parallel`] under a [`Budget`], returning partial results
/// on exhaustion.
///
/// Exhausted runs yield a valid partial graph (every recorded state
/// and edge is genuinely reachable, the frontier honestly lists every
/// discovered-but-unexpanded state), but — unlike complete runs —
/// *which* states made it under the limit depends on worker
/// scheduling.
///
/// # Errors
///
/// As [`explore_governed`].
pub fn explore_parallel_governed(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
) -> Result<Exploration, CheckError> {
    let threads = options
        .threads
        .or_else(env_threads)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
        .max(1);
    explore_observed(system, budget, options, threads, None)
}

/// Explores with the barrier-free work-stealing engine over packed
/// state buffers (worker count resolved as in [`explore_parallel`]).
///
/// Workers pull parents from per-worker deques, stealing from each
/// other when their own runs dry, and terminate by quiescence
/// detection instead of level barriers; states live as fixed-width
/// packed byte runs (see [`opentla_kernel::PackedLayout`]) in
/// lock-striped arenas, fingerprinted directly over the bytes. A
/// deterministic canonical renumbering post-pass makes the resulting
/// graph **byte-identical** to the sequential engine's, exactly as
/// the level-synchronous engine's is.
///
/// Unlike [`explore_parallel`], a single worker does *not* delegate
/// to the tree-state sequential engine — the packed representation is
/// most of the speedup, so the engine runs its own machinery at any
/// worker count. Reduced (ample-set/symmetry) configurations fall
/// back to the level-synchronous path, which remains the only engine
/// implementing the cycle proviso.
///
/// # Errors
///
/// As [`explore`].
pub fn explore_parallel_ws(
    system: &System,
    options: &ExploreOptions,
) -> Result<StateGraph, CheckError> {
    let run = explore_parallel_ws_governed(
        system,
        &Budget::default().states(options.max_states),
        options,
    )?;
    match run.outcome {
        Outcome::Complete => Ok(run.graph),
        Outcome::Exhausted { .. } => Err(CheckError::TooManyStates {
            limit: options.max_states,
        }),
    }
}

/// [`explore_parallel_ws`] under a [`Budget`], returning partial
/// results on exhaustion. Checkpointing budgets write an `OTLASNAP`
/// snapshot at the exhaustion point (a quiescent point — the
/// barrier-free engine takes no mid-run snapshots), resumable by any
/// engine.
///
/// # Errors
///
/// As [`explore_governed`].
pub fn explore_parallel_ws_governed(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
) -> Result<Exploration, CheckError> {
    let options = ExploreOptions {
        engine: Engine::WorkStealing,
        ..options.clone()
    };
    let threads = options
        .threads
        .or_else(env_threads)
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
        .max(1);
    explore_observed(system, budget, &options, threads, None)
}

// ---------------------------------------------------------------------
// Sequential engine
// ---------------------------------------------------------------------

fn explore_sequential(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
    prepared: Option<&PreparedReduction>,
    resume: Option<&Snapshot>,
) -> Result<Exploration, CheckError> {
    if let Some(red) = prepared {
        return explore_sequential_reduced(system, budget, options, red, resume);
    }
    match options.mode {
        VisitedMode::Fingerprint => explore_sequential_fp(system, budget, options, resume),
        VisitedMode::Exact => explore_sequential_exact(system, budget, options, resume),
    }
}

/// Why sequential resumption needs no renumbering pass: every snapshot
/// — from any engine — stores its arena in canonical (sequential
/// discovery) order with the frontier as the arena's *tail*. For
/// sequential-origin snapshots the BFS queue is always the most
/// recently discovered suffix of the arena; parallel-origin snapshots
/// are captured from the canonical replay rolled back to a level
/// boundary, whose frontier (the last complete level) is likewise the
/// tail. Re-seeding the queue with the frontier in id order therefore
/// continues the *exact* sequential discovery order, and new states
/// extend the arena precisely as an uninterrupted run would.
///
/// Builds the final snapshot of an exhausted sequential run (shared by
/// all three sequential engines): `keep`/`frontier` follow the
/// engine's cut discipline, and the snapshot is written to disk when a
/// checkpoint spec is active.
#[allow(clippy::too_many_arguments)]
fn seq_exhaustion_snapshot(
    ck: &mut Checkpointer,
    budget: &Budget,
    states: &[State],
    init: &[usize],
    edges: &[Vec<Edge>],
    parents: &[Option<(usize, usize)>],
    keep: usize,
    frontier: &[usize],
    options: &ExploreOptions,
    reduced: bool,
    sys_hash: u64,
    reduction: Option<ReductionStats>,
) -> (Option<Box<Snapshot>>, Option<ResumeToken>) {
    let snap = checkpoint::capture(
        states,
        init,
        edges,
        parents,
        keep,
        frontier,
        options.mode,
        reduced,
        sys_hash,
        options.fp_bits.clamp(1, 64),
        0,
        reduction,
    );
    let token = if ck.active() {
        ck.write(snap.clone(), &budget.recorder)
    } else {
        None
    };
    (Some(Box::new(snap)), token)
}

/// The fingerprinted hot path: successor fingerprints are derived
/// incrementally from the parent's
/// ([`State::fingerprint_with`]), so an already-visited successor
/// costs one hash-of-deltas and one `u64` map probe — it is never
/// materialized as a [`State`] at all. Only genuinely new states are
/// constructed and pushed into the arena.
fn explore_sequential_fp(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
    resume: Option<&Snapshot>,
) -> Result<Exploration, CheckError> {
    use std::collections::hash_map::Entry;
    use std::ops::ControlFlow;

    let compiled = CompiledSystem::compile(system);
    let mut scratch = EvalScratch::new();
    let mask = options.mask();
    let sys_hash = checkpoint::system_hash(system);
    let mut ck = Checkpointer::new(budget.checkpoint.clone());
    let mut map: FxHashMap<u64, usize> = FxHashMap::default();
    let mut states: Vec<State> = Vec::new();
    // Unmasked fingerprint per state id, for incremental derivation.
    let mut fps: Vec<u64> = Vec::new();
    let mut edges: Vec<Vec<Edge>> = Vec::new();
    let mut parents: Vec<Option<(usize, usize)>> = Vec::new();
    let mut init: Vec<usize> = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    let mut exhausted: Option<ExhaustReason> = None;
    let mut exhausted_in_init = false;
    let meter;
    if let Some(snap) = resume {
        // Re-seed from the snapshot: arena, edges, and BFS tree come
        // back verbatim; the visited map is rebuilt by
        // re-fingerprinting the arena (deterministic across
        // processes), preserving first-id-wins collision behavior; the
        // frontier becomes the queue; the meter is pre-charged with
        // the banked work so cumulative budgets keep their meaning.
        states = snap.states.clone();
        edges = snap.edges.clone();
        parents = snap.parents.clone();
        init = snap.init.clone();
        for (id, s) in states.iter().enumerate() {
            let fp = s.fingerprint();
            fps.push(fp);
            map.entry(fp & mask).or_insert(id);
        }
        queue.extend(snap.frontier.iter().copied());
        meter = Meter::start_resumed(budget, snap.states_used(), snap.transitions_used());
    } else {
        let init_states = system.init().states(system.universe())?;
        if init_states.is_empty() {
            return Err(CheckError::NoInitialStates);
        }
        meter = Meter::start(budget);
        let _init_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreInit);
        for s in init_states {
            let fp = s.fingerprint();
            match map.entry(fp & mask) {
                Entry::Occupied(_) => {}
                Entry::Vacant(e) => {
                    if let Some(reason) = meter.charge_state() {
                        exhausted = Some(reason);
                        exhausted_in_init = true;
                        break;
                    }
                    let id = states.len();
                    e.insert(id);
                    states.push(s);
                    fps.push(fp);
                    edges.push(Vec::new());
                    parents.push(None);
                    init.push(id);
                    queue.push_back(id);
                }
            }
        }
    }
    let expand_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreExpand);
    'bfs: while exhausted.is_none() {
        if let Some(reason) = meter.checkpoint() {
            exhausted = Some(reason);
            break;
        }
        // Periodic snapshot at the loop head: the queue is a clean cut
        // (everything off-queue is fully expanded).
        if ck.due(1) {
            let snap = checkpoint::capture(
                &states,
                &init,
                &edges,
                &parents,
                states.len(),
                queue.make_contiguous(),
                options.mode,
                false,
                sys_hash,
                options.fp_bits.clamp(1, 64),
                0,
                None,
            );
            ck.write(snap, &budget.recorder);
        }
        let Some(id) = queue.pop_front() else {
            break;
        };
        // An Arc bump, not a copy: releases the arena borrow so the
        // visitor below may push new states into it.
        let parent = states[id].clone();
        let parent_fp = fps[id];
        let cut = compiled.for_each_successor(&parent, &mut scratch, |action, assignments| {
            if let Some(reason) = meter.charge_transition() {
                return ControlFlow::Break(reason);
            }
            let child_fp = parent.fingerprint_with(parent_fp, assignments);
            let target = match map.entry(child_fp & mask) {
                Entry::Occupied(e) => *e.get(),
                Entry::Vacant(e) => {
                    if let Some(reason) = meter.charge_state() {
                        return ControlFlow::Break(reason);
                    }
                    let nid = states.len();
                    e.insert(nid);
                    states.push(parent.with(assignments));
                    fps.push(child_fp);
                    edges.push(Vec::new());
                    parents.push(Some((id, action)));
                    queue.push_back(nid);
                    nid
                }
            };
            edges[id].push(Edge { action, target });
            ControlFlow::Continue(())
        })?;
        if let Some(reason) = cut {
            // Re-queue the half-expanded state so the frontier
            // honestly reports it as uncovered.
            queue.push_front(id);
            exhausted = Some(reason);
            break 'bfs;
        }
    }
    drop(expand_phase);
    let (snapshot, resume_token) = match &exhausted {
        Some(_) if !exhausted_in_init => seq_exhaustion_snapshot(
            &mut ck,
            budget,
            &states,
            &init,
            &edges,
            &parents,
            states.len(),
            queue.make_contiguous(),
            options,
            false,
            sys_hash,
            None,
        ),
        _ => (None, None),
    };
    let graph = StateGraph {
        states,
        visited: Visited::Fingerprint { map, mask },
        init,
        edges,
        parents,
        reduced: false,
        canon: None,
    };
    let outcome = match exhausted {
        None => Outcome::Complete,
        Some(reason) => Outcome::Exhausted {
            reason,
            frontier_size: queue.len(),
            stats: graph.stats(),
            resume: resume_token,
        },
    };
    Ok(Exploration {
        frontier: queue.into_iter().collect(),
        graph,
        outcome,
        reduction: None,
        snapshot,
    })
}

/// The exact fallback: the visited set is keyed by whole states, so
/// every successor is materialized and hashed in full. Collision-free
/// by construction, at a throughput cost.
fn explore_sequential_exact(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
    resume: Option<&Snapshot>,
) -> Result<Exploration, CheckError> {
    let compiled = CompiledSystem::compile(system);
    let mut scratch = EvalScratch::new();
    let mut succ: Vec<(usize, State)> = Vec::new();
    let sys_hash = checkpoint::system_hash(system);
    let mut ck = Checkpointer::new(budget.checkpoint.clone());
    let mut graph = StateGraph::new(options.mode, options.mask());
    let mut queue = std::collections::VecDeque::new();
    let mut exhausted: Option<ExhaustReason> = None;
    let mut exhausted_in_init = false;
    let meter;
    if let Some(snap) = resume {
        graph.states = snap.states.clone();
        graph.edges = snap.edges.clone();
        graph.parents = snap.parents.clone();
        graph.init = snap.init.clone();
        for id in 0..graph.states.len() {
            let (_, fp) = graph.visited.lookup(&graph.states[id]);
            let s = graph.states[id].clone();
            graph.visited.insert(&s, fp, id);
        }
        queue.extend(snap.frontier.iter().copied());
        meter = Meter::start_resumed(budget, snap.states_used(), snap.transitions_used());
    } else {
        let init_states = system.init().states(system.universe())?;
        if init_states.is_empty() {
            return Err(CheckError::NoInitialStates);
        }
        meter = Meter::start(budget);
        let _init_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreInit);
        for s in init_states {
            let (seen, fp) = graph.visited.lookup(&s);
            if seen.is_some() {
                continue;
            }
            if let Some(reason) = meter.charge_state() {
                exhausted = Some(reason);
                exhausted_in_init = true;
                break;
            }
            let id = graph.states.len();
            graph.visited.insert(&s, fp, id);
            graph.states.push(s);
            graph.edges.push(Vec::new());
            graph.parents.push(None);
            graph.init.push(id);
            queue.push_back(id);
        }
    }
    let expand_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreExpand);
    'bfs: while exhausted.is_none() {
        if let Some(reason) = meter.checkpoint() {
            exhausted = Some(reason);
            break;
        }
        if ck.due(1) {
            let snap = checkpoint::capture(
                &graph.states,
                &graph.init,
                &graph.edges,
                &graph.parents,
                graph.states.len(),
                queue.make_contiguous(),
                options.mode,
                false,
                sys_hash,
                options.fp_bits.clamp(1, 64),
                0,
                None,
            );
            ck.write(snap, &budget.recorder);
        }
        let Some(id) = queue.pop_front() else {
            break;
        };
        compiled.successors_into(&graph.states[id], &mut succ, &mut scratch)?;
        for (action, t) in succ.drain(..) {
            if let Some(reason) = meter.charge_transition() {
                // Re-queue the half-expanded state so the frontier
                // honestly reports it as uncovered.
                queue.push_front(id);
                exhausted = Some(reason);
                break 'bfs;
            }
            let (seen, fp) = graph.visited.lookup(&t);
            let target = match seen {
                Some(existing) => existing,
                None => {
                    if let Some(reason) = meter.charge_state() {
                        queue.push_front(id);
                        exhausted = Some(reason);
                        break 'bfs;
                    }
                    let nid = graph.states.len();
                    graph.visited.insert(&t, fp, nid);
                    graph.states.push(t);
                    graph.edges.push(Vec::new());
                    graph.parents.push(Some((id, action)));
                    queue.push_back(nid);
                    nid
                }
            };
            graph.edges[id].push(Edge { action, target });
        }
    }
    drop(expand_phase);
    let (snapshot, resume_token) = match &exhausted {
        Some(_) if !exhausted_in_init => seq_exhaustion_snapshot(
            &mut ck,
            budget,
            &graph.states,
            &graph.init,
            &graph.edges,
            &graph.parents,
            graph.states.len(),
            queue.make_contiguous(),
            options,
            false,
            sys_hash,
            None,
        ),
        _ => (None, None),
    };
    let outcome = match exhausted {
        None => Outcome::Complete,
        Some(reason) => Outcome::Exhausted {
            reason,
            frontier_size: queue.len(),
            stats: graph.stats(),
            resume: resume_token,
        },
    };
    Ok(Exploration {
        frontier: queue.into_iter().collect(),
        graph,
        outcome,
        reduction: None,
        snapshot,
    })
}

/// The reduced sequential engine: level-synchronous BFS (explicit
/// level boundaries feed the cycle proviso) over canonicalized states,
/// expanding each state through its chosen ample cluster — or fully
/// when no eligible proper cluster exists or the proviso fires.
///
/// Used for both [`VisitedMode`]s: symmetry reduction must
/// canonicalize the materialized successor anyway, so the incremental
/// fingerprint shortcut of the unreduced fast path does not apply.
/// Discovery order is plain BFS over kept actions in action order —
/// exactly the order the parallel engine's renumbering pass replays,
/// so both engines produce byte-identical reduced graphs.
fn explore_sequential_reduced(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
    red: &PreparedReduction,
    resume: Option<&Snapshot>,
) -> Result<Exploration, CheckError> {
    use std::ops::ControlFlow;

    let compiled = CompiledSystem::compile(system);
    let mut scratch = EvalScratch::new();
    let sys_hash = checkpoint::system_hash(system);
    let mut ck = Checkpointer::new(budget.checkpoint.clone());
    let mut graph = StateGraph::new(options.mode, options.mask());
    graph.reduced = true;
    graph.canon = red.canon.clone();
    let mut stats = ReductionStats::default();
    let mut queue = std::collections::VecDeque::new();
    let mut exhausted: Option<ExhaustReason> = None;
    let mut exhausted_in_init = false;
    let meter;
    if let Some(snap) = resume {
        // Arena states were stored post-canonicalization, so they seed
        // the visited set directly. The snapshot's frontier is exactly
        // the last complete BFS level (reduced captures roll back to
        // the level boundary), so the proviso bookkeeping restarts
        // cleanly: the whole arena belongs to completed levels.
        graph.states = snap.states.clone();
        graph.edges = snap.edges.clone();
        graph.parents = snap.parents.clone();
        graph.init = snap.init.clone();
        for id in 0..graph.states.len() {
            let (_, fp) = graph.visited.lookup(&graph.states[id]);
            let s = graph.states[id].clone();
            graph.visited.insert(&s, fp, id);
        }
        queue.extend(snap.frontier.iter().copied());
        stats = snap.reduction.unwrap_or_default();
        meter = Meter::start_resumed(budget, snap.states_used(), snap.transitions_used());
    } else {
        let init_states = system.init().states(system.universe())?;
        if init_states.is_empty() {
            return Err(CheckError::NoInitialStates);
        }
        meter = Meter::start(budget);
        let _init_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreInit);
        for s in init_states {
            let s = red.canonical(s);
            let (seen, fp) = graph.visited.lookup(&s);
            if seen.is_some() {
                continue;
            }
            if let Some(reason) = meter.charge_state() {
                exhausted = Some(reason);
                exhausted_in_init = true;
                break;
            }
            let id = graph.states.len();
            graph.visited.insert(&s, fp, id);
            graph.states.push(s);
            graph.edges.push(Vec::new());
            graph.parents.push(None);
            graph.init.push(id);
            queue.push_back(id);
        }
    }
    // Cycle-proviso bookkeeping: states with id < `boundary` belong to
    // BFS levels completed before the current one began. Every cycle
    // of the reduced graph must contain an edge into such a level, so
    // fully expanding each state whose ample set would record one
    // guarantees no enabled action is ignored forever.
    let mut boundary = graph.states.len();
    let mut remaining = queue.len();
    // Checkpoint bookkeeping: the level being expanded consists of ids
    // [level_start, boundary); a snapshot rolls the arena back to
    // `boundary` and re-queues that whole range, so resumption always
    // restarts the level from its beginning (at most one level of work
    // is re-done). The reduction counters snapshotted at the rollover
    // match that cut.
    let mut level_start = boundary - queue.len();
    let mut stats_at_level_start = stats;
    let mut succ: Vec<(usize, State)> = Vec::new();
    let mut ample_scratch = AmpleScratch::default();
    let expand_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreExpand);
    'bfs: while exhausted.is_none() {
        if let Some(reason) = meter.checkpoint() {
            exhausted = Some(reason);
            break;
        }
        if ck.due(1) {
            let frontier: Vec<usize> = (level_start..boundary).collect();
            let snap = checkpoint::capture(
                &graph.states,
                &graph.init,
                &graph.edges,
                &graph.parents,
                boundary,
                &frontier,
                options.mode,
                true,
                sys_hash,
                options.fp_bits.clamp(1, 64),
                0,
                Some(stats_at_level_start),
            );
            ck.write(snap, &budget.recorder);
        }
        let Some(id) = queue.pop_front() else {
            break;
        };
        let parent = graph.states[id].clone();
        succ.clear();
        compiled.for_each_successor(&parent, &mut scratch, |action, assignments| {
            let child = parent.with(assignments);
            let child = match &red.canon {
                Some(c) => {
                    let canonical = c.canonicalize(&child);
                    if canonical != child {
                        stats.canon_hits += 1;
                    }
                    canonical
                }
                None => child,
            };
            succ.push((action, child));
            ControlFlow::<std::convert::Infallible>::Continue(())
        })?;
        let keep_cluster = red.por.as_ref().and_then(|por| {
            let chosen =
                por.choose_ample(succ.iter().map(|(a, _)| *a), &mut ample_scratch)?;
            // The proviso: an ample successor already in a completed
            // level closes a potential cycle — expand fully. Only
            // completed levels are consulted, so the parallel engine
            // (which sees racy partial knowledge of the *current*
            // level) decides identically.
            let closes_level = succ.iter().any(|(a, child)| {
                por.cluster_of(*a) == chosen
                    && graph
                        .visited
                        .lookup(child)
                        .0
                        .is_some_and(|t| t < boundary)
            });
            (!closes_level).then_some(chosen)
        });
        if keep_cluster.is_some() {
            stats.ample_states += 1;
        } else {
            stats.full_states += 1;
        }
        for (action, child) in succ.drain(..) {
            if let Some(c) = keep_cluster {
                if red.por.as_ref().map(|p| p.cluster_of(action)) != Some(c) {
                    stats.skipped_transitions += 1;
                    continue;
                }
            }
            if let Some(reason) = meter.charge_transition() {
                queue.push_front(id);
                exhausted = Some(reason);
                break 'bfs;
            }
            let (seen, fp) = graph.visited.lookup(&child);
            let target = match seen {
                Some(existing) => existing,
                None => {
                    if let Some(reason) = meter.charge_state() {
                        queue.push_front(id);
                        exhausted = Some(reason);
                        break 'bfs;
                    }
                    let nid = graph.states.len();
                    graph.visited.insert(&child, fp, nid);
                    graph.states.push(child);
                    graph.edges.push(Vec::new());
                    graph.parents.push(Some((id, action)));
                    queue.push_back(nid);
                    nid
                }
            };
            graph.edges[id].push(Edge { action, target });
        }
        remaining -= 1;
        if remaining == 0 {
            level_start = boundary;
            boundary = graph.states.len();
            remaining = queue.len();
            stats_at_level_start = stats;
        }
    }
    drop(expand_phase);
    let (snapshot, resume_token) = match &exhausted {
        Some(_) if !exhausted_in_init => seq_exhaustion_snapshot(
            &mut ck,
            budget,
            &graph.states,
            &graph.init,
            &graph.edges,
            &graph.parents,
            boundary,
            &(level_start..boundary).collect::<Vec<_>>(),
            options,
            true,
            sys_hash,
            Some(stats_at_level_start),
        ),
        _ => (None, None),
    };
    let outcome = match exhausted {
        None => Outcome::Complete,
        Some(reason) => Outcome::Exhausted {
            reason,
            frontier_size: queue.len(),
            stats: graph.stats(),
            resume: resume_token,
        },
    };
    Ok(Exploration {
        frontier: queue.into_iter().collect(),
        graph,
        outcome,
        reduction: Some(stats),
        snapshot,
    })
}

// ---------------------------------------------------------------------
// Parallel engine
// ---------------------------------------------------------------------

/// Provisional state id used during parallel exploration:
/// `shard << 32 | index within the shard's arena`. Renumbering maps
/// these to canonical sequential indices afterwards.
type Pid = u64;

fn pid(shard: usize, local: usize) -> Pid {
    ((shard as u64) << 32) | local as u64
}

fn shard_of(p: Pid) -> usize {
    (p >> 32) as usize
}

fn local_of(p: Pid) -> usize {
    (p & 0xffff_ffff) as usize
}

/// One shard of the parallel visited set: a keyed dedup map, the
/// shard's slice of the state arena, and the unmasked fingerprint of
/// each arena entry (kept so workers can derive successor fingerprints
/// incrementally with [`State::fingerprint_with`]).
#[derive(Debug)]
struct Shard {
    keys: ShardKeys,
    arena: Vec<State>,
    fps: Vec<u64>,
}

#[derive(Debug)]
enum ShardKeys {
    Exact(HashMap<State, u32>),
    Fingerprint(FxHashMap<u64, u32>),
}

impl Shard {
    fn new(mode: VisitedMode) -> Shard {
        Shard {
            keys: match mode {
                VisitedMode::Exact => ShardKeys::Exact(HashMap::new()),
                VisitedMode::Fingerprint => ShardKeys::Fingerprint(FxHashMap::default()),
            },
            arena: Vec::new(),
            fps: Vec::new(),
        }
    }
}

/// What each worker accumulated during one level.
#[derive(Debug, Default)]
struct WorkerOut {
    /// `(parent, action, child)` records, contiguous and in action
    /// order per parent — each parent is expanded by exactly one
    /// worker, so these splice into per-parent edge lists losslessly.
    edges: Vec<(Pid, u32, Pid)>,
    /// States inserted by this worker: the next level's frontier.
    next: Vec<Pid>,
    /// Parents whose expansion was cut short by budget exhaustion
    /// (requeued on the reported frontier).
    interrupted: Vec<Pid>,
    /// Frontier entries this worker claimed (for per-worker
    /// throughput reporting).
    claimed: u64,
    /// Reduction counters for the parents this worker expanded
    /// (all-zero when reduction is off).
    stats: ReductionStats,
    /// The parent currently being expanded, with the `edges` length and
    /// `stats` value at the moment it was claimed. `Some` only while an
    /// expansion is in flight — so if the worker panics, the
    /// coordinator can truncate the half-recorded expansion back to
    /// this mark and re-queue the parent.
    current: Option<(Pid, usize, ReductionStats)>,
}

/// Shared coordination state of one parallel run.
struct ParShared<'a> {
    shards: Striped<Shard>,
    mask: u64,
    meter: &'a Meter,
    stop: AtomicBool,
    reason: Mutex<Option<ExhaustReason>>,
    error: Mutex<Option<CheckError>>,
    /// Fault-injection bookkeeping for [`WorkerPanic`]: frontier claims
    /// made run-wide, and whether the injected panic already fired
    /// (fire-once, whichever worker crosses the threshold first).
    fault_claims: AtomicU64,
    fault_fired: AtomicBool,
}

impl ParShared<'_> {
    /// Records the first exhaustion reason and raises the stop flag.
    fn note_exhaustion(&self, r: ExhaustReason) {
        lock(&self.reason).get_or_insert(r);
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Records the first engine error and raises the stop flag.
    fn note_error(&self, e: CheckError) {
        lock(&self.error).get_or_insert(e);
        self.stop.store(true, Ordering::Relaxed);
    }

    /// The state behind a pid, with its unmasked fingerprint.
    fn state_of(&self, p: Pid) -> (State, u64) {
        let shard = self.shards.lock_shard(shard_of(p));
        let local = local_of(p);
        (shard.arena[local].clone(), shard.fps[local])
    }

    /// Looks up / inserts a state by its (unmasked) fingerprint,
    /// charging the meter for genuinely new states. `make` materializes
    /// the state and is only called when it must be: in fingerprint
    /// mode an already-visited successor is recognized — and skipped —
    /// without ever being constructed. Returns the pid and whether it
    /// was new, or the exhaustion reason if the state limit cut the
    /// insertion off.
    fn intern_with(
        &self,
        fp: u64,
        make: impl FnOnce() -> State,
    ) -> Result<(Pid, bool), ExhaustReason> {
        let key = fp & self.mask;
        let (shard_i, mut shard) = self.shards.lock_key(key);
        let Shard { keys, arena, fps } = &mut *shard;
        match keys {
            ShardKeys::Fingerprint(map) => match map.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    Ok((pid(shard_i, *e.get() as usize), false))
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    if let Some(reason) = self.meter.charge_state() {
                        return Err(reason);
                    }
                    let local = arena.len();
                    arena.push(make());
                    fps.push(fp);
                    e.insert(local as u32);
                    Ok((pid(shard_i, local), true))
                }
            },
            ShardKeys::Exact(map) => {
                // Exact mode needs the full state as the dedup key, so
                // it is always materialized. Sharding by (masked)
                // fingerprint stays consistent — equal states have
                // equal fingerprints — and dedup stays exact even when
                // `fp_bits` forces fingerprint collisions.
                let t = make();
                if let Some(&local) = map.get(&t) {
                    return Ok((pid(shard_i, local as usize), false));
                }
                if let Some(reason) = self.meter.charge_state() {
                    return Err(reason);
                }
                let local = arena.len();
                arena.push(t.clone());
                fps.push(fp);
                map.insert(t, local as u32);
                Ok((pid(shard_i, local), true))
            }
        }
    }

    /// Inserts a snapshot state during resume seeding, *without*
    /// charging the meter — the resumed [`Meter`] was pre-charged with
    /// the snapshot's banked totals, so seeding must not count again.
    /// Returns the pid; a masked-fingerprint collision maps to the
    /// first occupant (the same first-id-wins rule the snapshot's
    /// canonical order encodes), so collision behavior survives the
    /// round trip.
    fn seed(&self, s: &State) -> Pid {
        let fp = s.fingerprint();
        let key = fp & self.mask;
        let (shard_i, mut shard) = self.shards.lock_key(key);
        let Shard { keys, arena, fps } = &mut *shard;
        match keys {
            ShardKeys::Fingerprint(map) => match map.entry(key) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    pid(shard_i, *e.get() as usize)
                }
                std::collections::hash_map::Entry::Vacant(e) => {
                    let local = arena.len();
                    arena.push(s.clone());
                    fps.push(fp);
                    e.insert(local as u32);
                    pid(shard_i, local)
                }
            },
            ShardKeys::Exact(map) => {
                if let Some(&local) = map.get(s) {
                    return pid(shard_i, local as usize);
                }
                let local = arena.len();
                arena.push(s.clone());
                fps.push(fp);
                map.insert(s.clone(), local as u32);
                pid(shard_i, local)
            }
        }
    }

    /// Whether `s` was interned before the current level began — the
    /// parallel form of the sequential `id < boundary` cycle-proviso
    /// test. `bounds` holds every shard's arena length snapshotted at
    /// level start, so the answer is frozen for the whole level and
    /// independent of insertions racing within it: both engines decide
    /// the proviso on the identical set of states.
    fn in_completed_level(&self, s: &State, bounds: &[usize]) -> bool {
        let key = s.fingerprint() & self.mask;
        let (shard_i, shard) = self.shards.lock_key(key);
        let local = match &shard.keys {
            ShardKeys::Fingerprint(map) => map.get(&key).copied(),
            ShardKeys::Exact(map) => map.get(s).copied(),
        };
        local.is_some_and(|l| (l as usize) < bounds[shard_i])
    }
}

/// The canonical replay of a parallel run's edge records, shared by
/// the final renumbering pass and mid-run checkpoint captures.
///
/// Replaying the BFS sequentially over the recorded per-parent edge
/// runs reproduces the sequential engine's discovery order exactly:
/// init enumeration order first, then children in (parent BFS order ×
/// action order) — so ids, edges, parents, and traces coincide with a
/// sequential run's. `canon[shard][local]` maps pids to canonical ids
/// (`u32::MAX` = unreachable from the records, e.g. a child whose
/// recording worker died mid-expansion before the make-up pass ran);
/// `depth` is each state's BFS level, non-decreasing in id order.
struct Replay {
    canon: Vec<Vec<u32>>,
    states: Vec<State>,
    edges: Vec<Vec<Edge>>,
    parents: Vec<Option<(usize, usize)>>,
    init: Vec<usize>,
    depth: Vec<u32>,
}

/// Builds the [`Replay`]. Each parent's run is indexed first:
/// `edge_index[shard][local]` is `(which vector, start, length)`,
/// `u32::MAX` marking "no edges". Every interned state has a recorded
/// incoming edge (interning and edge-recording are adjacent in the
/// worker, and a panic's truncated records are re-recorded by the
/// make-up pass) or is initial, so the replay reaches every interned
/// state of every *closed* level.
fn replay_records(
    arena_lens: &[usize],
    state_of: impl Fn(Pid) -> State,
    all_edges: &[Vec<(Pid, u32, Pid)>],
    init_pids: &[Pid],
) -> Replay {
    let (mut r, order) = replay_records_order(arena_lens, all_edges, init_pids);
    r.states = order.iter().map(|&p| state_of(p)).collect();
    r
}

/// The structural core of [`replay_records`]: everything except state
/// materialization. Returns the [`Replay`] with `states` empty plus
/// the pids in canonical id order, so callers choose how to
/// materialize — sequentially ([`replay_records`]) or fanned out
/// across workers (the work-stealing engine, where each state is an
/// independent unpack once the order is fixed).
fn replay_records_order(
    arena_lens: &[usize],
    all_edges: &[Vec<(Pid, u32, Pid)>],
    init_pids: &[Pid],
) -> (Replay, Vec<Pid>) {
    const NO_RUN: (u32, u32, u32) = (u32::MAX, 0, 0);
    let mut edge_index: Vec<Vec<(u32, u32, u32)>> =
        arena_lens.iter().map(|&n| vec![NO_RUN; n]).collect();
    for (vi, recs) in all_edges.iter().enumerate() {
        let mut i = 0;
        while i < recs.len() {
            let parent = recs[i].0;
            let mut j = i + 1;
            while j < recs.len() && recs[j].0 == parent {
                j += 1;
            }
            edge_index[shard_of(parent)][local_of(parent)] =
                (vi as u32, i as u32, (j - i) as u32);
            i = j;
        }
    }

    let mut r = Replay {
        canon: arena_lens.iter().map(|&n| vec![u32::MAX; n]).collect(),
        states: Vec::new(),
        edges: Vec::new(),
        parents: Vec::new(),
        init: Vec::new(),
        depth: Vec::new(),
    };
    let mut order: Vec<Pid> = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for &p in init_pids {
        let id = order.len();
        r.canon[shard_of(p)][local_of(p)] = id as u32;
        order.push(p);
        r.edges.push(Vec::new());
        r.parents.push(None);
        r.depth.push(0);
        r.init.push(id);
        queue.push_back(p);
    }
    while let Some(p) = queue.pop_front() {
        let id = r.canon[shard_of(p)][local_of(p)] as usize;
        let (vi, start, len) = edge_index[shard_of(p)][local_of(p)];
        if vi == u32::MAX {
            continue;
        }
        let run = &all_edges[vi as usize][start as usize..(start + len) as usize];
        for &(_, action, child) in run {
            let slot = &mut r.canon[shard_of(child)][local_of(child)];
            let target = if *slot == u32::MAX {
                let nid = order.len();
                *slot = nid as u32;
                order.push(child);
                r.edges.push(Vec::new());
                r.parents.push(Some((id, action as usize)));
                r.depth.push(r.depth[id] + 1);
                queue.push_back(child);
                nid
            } else {
                *slot as usize
            };
            r.edges[id].push(Edge {
                action: action as usize,
                target,
            });
        }
    }
    (r, order)
}

/// The deepest consistent level-boundary rollback of an exhausted
/// parallel run, shared by both parallel engines: given the canonical
/// replay's pid→id map and per-id BFS depths, plus the
/// discovered-but-unexpanded pids, returns `(keep, frontier_ids)` for
/// [`checkpoint::capture`]. The cut level L is the shallowest pending
/// state's depth — everything above L is fully expanded, and the
/// frontier is *all* of level L (replay depth is non-decreasing in
/// canonical id order, so that is an id range landing on the arena's
/// tail, exactly the cut the resume paths expect). Pending pids
/// unreachable in the replay are ignored; with no reachable pending
/// state at all, the whole graph is kept with an empty frontier.
fn rollback_cut(
    canon: &[Vec<u32>],
    depth: &[u32],
    states_len: usize,
    pending: &[Pid],
) -> (usize, Vec<usize>) {
    let cut = pending
        .iter()
        .filter_map(|&p| {
            let c = canon[shard_of(p)][local_of(p)];
            (c != u32::MAX).then(|| depth[c as usize])
        })
        .min();
    match cut {
        None => (states_len, Vec::new()),
        Some(l) => {
            let keep = depth.partition_point(|&d| d <= l);
            let first = depth.partition_point(|&d| d < l);
            (keep, (first..keep).collect())
        }
    }
}

/// Level-synchronous parallel BFS: scoped workers drain the current
/// frontier through an atomic cursor, interning successors into the
/// sharded visited set; when a level is exhausted the workers'
/// newly-inserted states become the next frontier. A final sequential
/// renumbering pass replays the BFS over the recorded per-parent edge
/// lists, producing canonical (sequential-identical) state indices.
///
/// Workers are panic-isolated: a panicking worker loses only its
/// in-flight expansion (truncated back to the claim mark and made up
/// by the coordinator before the level closes), the run degrades to
/// the surviving workers, and every shared lock is poison-tolerant —
/// the critical sections keep the shards internally consistent, so a
/// poisoned mutex carries no torn data.
fn explore_parallel_impl(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
    threads: usize,
    prepared: Option<&PreparedReduction>,
    resume: Option<&Snapshot>,
) -> Result<Exploration, CheckError> {
    if threads <= 1 {
        // With a single worker, level-synchronous BFS degenerates to
        // plain sequential BFS — same discovery order, same graph — so
        // the sharding and renumbering machinery would be pure
        // overhead. Delegate.
        return explore_sequential(system, budget, options, prepared, resume);
    }
    // Small-graph routing: probe sequentially up to the cutoff; only a
    // graph that outgrows it (sequential exhaustion exactly at the
    // probe's state cap, with headroom left in the real budget) pays
    // for worker setup. The graphs are byte-identical either way, so
    // the only observable difference is the absence of worker-level
    // events. Checkpointed, resumed, and panic-injection runs skip the
    // probe: their on-disk and fault-isolation semantics belong to the
    // parallel engine.
    let cutoff = options.small_graph_cutoff.unwrap_or(PAR_SMALL_GRAPH_CUTOFF);
    if cutoff > 0
        && resume.is_none()
        && options.worker_panic.is_none()
        && budget.checkpoint.is_none()
    {
        let cap = budget.max_states.min(cutoff);
        let probe_budget = Budget {
            max_states: cap,
            ..budget.clone()
        };
        let probed = explore_sequential(system, &probe_budget, options, prepared, None)?;
        let outgrew = cap < budget.max_states
            && matches!(
                probed.outcome.exhaustion(),
                Some(ExhaustReason::StateLimit { .. })
            );
        if !outgrew {
            return Ok(probed);
        }
    }
    let compiled = CompiledSystem::compile(system);
    let sys_hash = checkpoint::system_hash(system);
    let mut ck = Checkpointer::new(budget.checkpoint.clone());
    let meter = match resume {
        Some(snap) => Meter::start_resumed(budget, snap.states_used(), snap.transitions_used()),
        None => Meter::start(budget),
    };
    let shared = ParShared {
        shards: Striped::new(|| Shard::new(options.mode)),
        mask: options.mask(),
        meter: &meter,
        stop: AtomicBool::new(false),
        reason: Mutex::new(None),
        error: Mutex::new(None),
        fault_claims: AtomicU64::new(0),
        fault_fired: AtomicBool::new(false),
    };

    let mut init_pids: Vec<Pid> = Vec::new();
    // Every worker's edge vector, kept whole: each parent is expanded
    // by exactly one worker, so its edges form one contiguous run (in
    // action order) inside exactly one of these vectors.
    let mut all_edges: Vec<Vec<(Pid, u32, Pid)>> = Vec::new();
    let mut total_stats = ReductionStats::default();
    let mut exhausted_in_init = false;
    let frontier_seed: Vec<Pid>;
    if let Some(snap) = resume {
        // Resume: seed the shards with the snapshot arena (canonical
        // order, so fingerprint first-id-wins dedup is reproduced) and
        // turn the snapshot's edges into one pre-recorded run vector —
        // the canonical replay then cannot tell banked work from new
        // work. The meter was pre-charged above, so seeding is free.
        let pid_of: Vec<Pid> = snap.states.iter().map(|s| shared.seed(s)).collect();
        init_pids = snap.init.iter().map(|&i| pid_of[i]).collect();
        let mut records: Vec<(Pid, u32, Pid)> = Vec::new();
        for (id, run) in snap.edges.iter().enumerate() {
            for e in run {
                records.push((pid_of[id], e.action as u32, pid_of[e.target]));
            }
        }
        if !records.is_empty() {
            all_edges.push(records);
        }
        total_stats = snap.reduction.unwrap_or_default();
        frontier_seed = snap.frontier.iter().map(|&i| pid_of[i]).collect();
    } else {
        let init_states = system.init().states(system.universe())?;
        if init_states.is_empty() {
            return Err(CheckError::NoInitialStates);
        }
        // Initial states: interned sequentially so their canonical
        // order is the enumeration order, exactly as in the sequential
        // engine.
        let _init_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreInit);
        for s in init_states {
            let s = match prepared {
                Some(r) => r.canonical(s),
                None => s,
            };
            let fp = s.fingerprint();
            match shared.intern_with(fp, move || s) {
                Ok((p, true)) => init_pids.push(p),
                Ok((_, false)) => {}
                Err(reason) => {
                    shared.note_exhaustion(reason);
                    exhausted_in_init = true;
                    break;
                }
            }
        }
        frontier_seed = init_pids.clone();
    }

    let mut frontier: Vec<Pid> = frontier_seed;
    // Discovered-but-unexpanded pids once the run stops early.
    let mut pending: Vec<Pid> = Vec::new();
    let observe = meter.observed();
    let mut level: u64 = 0;
    // Live worker count: shrinks when workers die, never below one.
    let mut alive = threads;
    let mut fault = options.worker_panic;
    // For the exhaustion snapshot's reduction counters: the totals as
    // of the last level boundary, and whether the final level lost
    // work (was cut mid-level), which decides which boundary the
    // rollback lands on.
    let mut stats_before_level = total_stats;
    let mut level_lost_work = false;
    let expand_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreExpand);
    while !frontier.is_empty() && !shared.stop.load(Ordering::Relaxed) {
        let cursor = AtomicUsize::new(0);
        stats_before_level = total_stats;
        let pending_before = pending.len();
        // With POR on, snapshot each shard's arena length before the
        // level runs: the cycle proviso asks "was this successor
        // interned before the current level began?", and the snapshot
        // freezes that answer for the whole level.
        let bounds: Option<Vec<usize>> =
            prepared.filter(|r| r.por.is_some()).map(|_| {
                shared.shards.iter_locked().map(|s| s.arena.len()).collect()
            });
        // Each worker owns its output and reports whether it panicked;
        // a panic destroys neither the output accumulated so far nor
        // the run. `AssertUnwindSafe` is justified because the repair
        // below rolls the output back to the claim mark and the shard
        // critical sections never expose partial insertions.
        let outs: Vec<(WorkerOut, bool)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..alive)
                .map(|_| {
                    let shared = &shared;
                    let compiled = &compiled;
                    let frontier = &frontier;
                    let cursor = &cursor;
                    let bounds = bounds.as_deref();
                    scope.spawn(move || {
                        let mut out = WorkerOut::default();
                        let body = std::panic::AssertUnwindSafe(|| match prepared {
                            Some(red) => run_worker_reduced(
                                shared, compiled, frontier, cursor, red, bounds,
                                &mut out, fault,
                            ),
                            None => run_worker(
                                shared, compiled, frontier, cursor, &mut out, fault,
                            ),
                        });
                        let panicked = std::panic::catch_unwind(body).is_err();
                        (out, panicked)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|_| (WorkerOut::default(), true)))
                .collect()
        });
        let mut next: Vec<Pid> = Vec::new();
        let mut makeup: Vec<Pid> = Vec::new();
        let mut failures = 0usize;
        for (worker, (mut out, panicked)) in outs.into_iter().enumerate() {
            if panicked {
                failures += 1;
                // Repair: the half-recorded expansion rolls back to
                // the claim mark (edges truncated, reduction counters
                // restored) and the parent is re-queued. Children it
                // already interned stay in the shards — the make-up
                // expansion re-records their edges, and `is_new` is
                // false the second time, so nothing double-counts.
                let mut requeued = 0u64;
                if let Some((parent, edges_mark, stats_mark)) = out.current.take() {
                    out.edges.truncate(edges_mark);
                    out.stats = stats_mark;
                    makeup.push(parent);
                    requeued = 1;
                }
                if observe {
                    budget.recorder.record(&Event::WorkerFailure {
                        worker,
                        level,
                        requeued,
                    });
                }
            }
            if observe {
                budget.recorder.record(&Event::WorkerLevel {
                    worker,
                    level,
                    claimed: out.claimed,
                    inserted: out.next.len() as u64,
                });
            }
            total_stats.absorb(&out.stats);
            if !out.edges.is_empty() {
                all_edges.push(out.edges);
            }
            next.extend(out.next);
            pending.extend(out.interrupted);
        }
        // Frontier entries never claimed before the level ended: on a
        // budget stop they are honestly-pending frontier, but when a
        // worker died *without* the stop flag they are work the dead
        // worker would have claimed — they must be made up now, or the
        // run would report Complete while silently dropping states.
        let claimed = cursor.load(Ordering::Relaxed).min(frontier.len());
        if shared.stop.load(Ordering::Relaxed) {
            pending.extend(&frontier[claimed..]);
            pending.append(&mut makeup);
        } else if failures > 0 {
            makeup.extend_from_slice(&frontier[claimed..]);
        }
        if !makeup.is_empty() {
            // Make-up pass: the coordinator re-expands the dead
            // workers' lost claims itself (same level, same proviso
            // bounds, no fault injection), so the level still closes
            // complete.
            let mk_cursor = AtomicUsize::new(0);
            let mut out = WorkerOut::default();
            match prepared {
                Some(red) => run_worker_reduced(
                    &shared, &compiled, &makeup, &mk_cursor, red, bounds.as_deref(),
                    &mut out, None,
                ),
                None => run_worker(&shared, &compiled, &makeup, &mk_cursor, &mut out, None),
            }
            let done = mk_cursor.load(Ordering::Relaxed).min(makeup.len());
            pending.extend(&makeup[done..]);
            total_stats.absorb(&out.stats);
            if !out.edges.is_empty() {
                all_edges.push(out.edges);
            }
            next.extend(out.next);
            pending.extend(out.interrupted);
        }
        if failures > 0 {
            alive = alive.saturating_sub(failures).max(1);
            fault = None;
        }
        level_lost_work = pending.len() > pending_before;
        frontier = next;
        if observe {
            meter.emit_progress(Some(frontier.len() as u64), Some(level), None);
        }
        level += 1;
        if ck.due(claimed as u64) && !shared.stop.load(Ordering::Relaxed) {
            // Periodic checkpoint at the level boundary: replay the
            // records into canonical form — the just-formed next
            // frontier is the canonical arena's tail there, which is
            // exactly the cut the resume paths expect.
            let arena_lens: Vec<usize> =
                shared.shards.iter_locked().map(|s| s.arena.len()).collect();
            let replay =
                replay_records(&arena_lens, |p| shared.state_of(p).0, &all_edges, &init_pids);
            let frontier_ids: Vec<usize> = frontier
                .iter()
                .filter_map(|&p| {
                    let c = replay.canon[shard_of(p)][local_of(p)];
                    (c != u32::MAX).then_some(c as usize)
                })
                .collect();
            let snap = checkpoint::capture(
                &replay.states,
                &replay.init,
                &replay.edges,
                &replay.parents,
                replay.states.len(),
                &frontier_ids,
                options.mode,
                prepared.is_some(),
                sys_hash,
                options.fp_bits.clamp(1, 64),
                0,
                prepared.map(|_| total_stats),
            );
            ck.write(snap, &budget.recorder);
        }
    }
    drop(expand_phase);
    if let Some(e) = lock(&shared.error).take() {
        return Err(e);
    }
    // A level discovered but never entered (stop rose between levels).
    pending.extend(frontier);

    // Workers are done: take the shards (and the exhaustion record)
    // out of their locks.
    let ParShared { shards, reason, .. } = shared;
    let shards: Vec<Shard> = shards.into_shards();
    let reason = reason.into_inner().unwrap_or_else(PoisonError::into_inner);

    let renumber_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreRenumber);
    let arena_lens: Vec<usize> = shards.iter().map(|sh| sh.arena.len()).collect();
    let replay = replay_records(
        &arena_lens,
        |p| shards[shard_of(p)].arena[local_of(p)].clone(),
        &all_edges,
        &init_pids,
    );
    let Replay {
        canon,
        states,
        edges,
        parents,
        init,
        depth,
    } = replay;

    // On a resumable exhaustion, roll the canonical graph back to the
    // deepest consistent level boundary and snapshot it. The cut level
    // L is the shallowest pending state's BFS depth: everything above
    // L is fully expanded, everything below L is partial work redone
    // on resume (bounded by one level), and the frontier is *all* of
    // level L — replay depth is non-decreasing in canonical id order,
    // so the frontier is an id range and lands on the arena's tail.
    let (snapshot, resume_token) = match reason {
        Some(_) if !exhausted_in_init => {
            let (keep, frontier_ids) = rollback_cut(&canon, &depth, states.len(), &pending);
            // If the final level was cut mid-way, the rollback lands
            // on the boundary *before* it — whose reduction counters
            // are the pre-level totals; otherwise the totals stand.
            let red_stats = prepared.map(|_| {
                if level_lost_work {
                    stats_before_level
                } else {
                    total_stats
                }
            });
            seq_exhaustion_snapshot(
                &mut ck,
                budget,
                &states,
                &init,
                &edges,
                &parents,
                keep,
                &frontier_ids,
                options,
                prepared.is_some(),
                sys_hash,
                red_stats,
            )
        }
        _ => (None, None),
    };

    // The final visited set comes straight from the shard key maps,
    // remapped through `canon` — no state is rehashed.
    let visited = match options.mode {
        VisitedMode::Fingerprint => {
            let mut map: FxHashMap<u64, usize> = FxHashMap::default();
            map.reserve(states.len());
            for (si, shard) in shards.iter().enumerate() {
                if let ShardKeys::Fingerprint(m) = &shard.keys {
                    for (&fp, &local) in m {
                        let id = canon[si][local as usize];
                        if id != u32::MAX {
                            map.insert(fp, id as usize);
                        }
                    }
                }
            }
            Visited::Fingerprint {
                map,
                mask: options.mask(),
            }
        }
        VisitedMode::Exact => {
            let mut map: HashMap<State, usize> = HashMap::with_capacity(states.len());
            for (si, shard) in shards.iter().enumerate() {
                if let ShardKeys::Exact(m) = &shard.keys {
                    for (s, &local) in m {
                        let id = canon[si][local as usize];
                        if id != u32::MAX {
                            map.insert(s.clone(), id as usize);
                        }
                    }
                }
            }
            Visited::Exact(map)
        }
    };
    let graph = StateGraph {
        states,
        visited,
        init,
        edges,
        parents,
        reduced: prepared.is_some(),
        canon: prepared.and_then(|r| r.canon.clone()),
    };
    drop(renumber_phase);

    let outcome = match reason {
        None => Outcome::Complete,
        Some(reason) => Outcome::Exhausted {
            reason,
            frontier_size: {
                pending.sort_unstable();
                pending.dedup();
                pending.len()
            },
            stats: graph.stats(),
            resume: resume_token,
        },
    };
    // A pending pid can be unreachable in the replay (its recording
    // worker died mid-expansion and the run then stopped before the
    // make-up re-recorded it); such orphans are simply not part of the
    // canonical graph, so they cannot be listed on its frontier.
    let mut frontier: Vec<usize> = pending
        .iter()
        .filter_map(|&p| {
            let c = canon[shard_of(p)][local_of(p)];
            (c != u32::MAX).then_some(c as usize)
        })
        .collect();
    frontier.sort_unstable();
    frontier.dedup();
    Ok(Exploration {
        graph,
        outcome,
        frontier,
        reduction: prepared.map(|_| total_stats),
        snapshot,
    })
}

/// One worker's share of a level: claim parents through the cursor,
/// expand them with the compiled stepper, intern the children.
///
/// Children's fingerprints are derived incrementally from the parent's
/// ([`State::fingerprint_with`]), so in fingerprint mode an
/// already-visited child is recognized without ever being constructed.
/// Interning a child and recording its edge are adjacent — nothing can
/// interrupt between them — which is what guarantees the renumbering
/// pass reaches every interned state.
///
/// Output accumulates into `out`, which the *caller* owns: if this
/// worker panics (`fault` injects one deterministically for testing),
/// the coordinator repairs `out` from its `current` claim mark instead
/// of losing the level.
fn run_worker(
    shared: &ParShared<'_>,
    compiled: &CompiledSystem<'_>,
    frontier: &[Pid],
    cursor: &AtomicUsize,
    out: &mut WorkerOut,
    fault: Option<WorkerPanic>,
) {
    use std::ops::ControlFlow;

    let mut scratch = EvalScratch::new();
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(reason) = shared.meter.checkpoint() {
            shared.note_exhaustion(reason);
            break;
        }
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(&parent) = frontier.get(i) else {
            break;
        };
        out.claimed += 1;
        out.current = Some((parent, out.edges.len(), out.stats));
        let armed = fault.is_some_and(|f| {
            shared.fault_claims.fetch_add(1, Ordering::Relaxed) >= f.after_claims
        });
        let (s, s_fp) = shared.state_of(parent);
        let result = compiled.for_each_successor(&s, &mut scratch, |action, assignments| {
            if let Some(reason) = shared.meter.charge_transition() {
                shared.note_exhaustion(reason);
                out.interrupted.push(parent);
                return ControlFlow::Break(());
            }
            let child_fp = s.fingerprint_with(s_fp, assignments);
            match shared.intern_with(child_fp, || s.with(assignments)) {
                Ok((child, is_new)) => {
                    if is_new {
                        out.next.push(child);
                    }
                    out.edges.push((parent, action as u32, child));
                    if armed && !shared.fault_fired.swap(true, Ordering::Relaxed) {
                        panic!("injected worker panic");
                    }
                    ControlFlow::Continue(())
                }
                Err(reason) => {
                    shared.note_exhaustion(reason);
                    out.interrupted.push(parent);
                    ControlFlow::Break(())
                }
            }
        });
        out.current = None;
        match result {
            Ok(None) => {}
            Ok(Some(())) => break,
            Err(e) => {
                shared.note_error(e);
                break;
            }
        }
    }
}

/// The reduced worker: like [`run_worker`], but every successor is
/// materialized and canonicalized before interning (so the incremental
/// fingerprint shortcut does not apply), and — when partial-order
/// reduction is on — each parent expands only its chosen ample cluster
/// unless the cycle proviso forces full expansion. Successors are
/// buffered per parent because the ample choice needs the full enabled
/// set before any edge is committed.
#[allow(clippy::too_many_arguments)]
fn run_worker_reduced(
    shared: &ParShared<'_>,
    compiled: &CompiledSystem<'_>,
    frontier: &[Pid],
    cursor: &AtomicUsize,
    red: &PreparedReduction,
    bounds: Option<&[usize]>,
    out: &mut WorkerOut,
    fault: Option<WorkerPanic>,
) {
    use std::ops::ControlFlow;

    let mut scratch = EvalScratch::new();
    let mut succ: Vec<(usize, State)> = Vec::new();
    let mut ample_scratch = AmpleScratch::default();
    'level: loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(reason) = shared.meter.checkpoint() {
            shared.note_exhaustion(reason);
            break;
        }
        let i = cursor.fetch_add(1, Ordering::Relaxed);
        let Some(&parent) = frontier.get(i) else {
            break;
        };
        out.claimed += 1;
        out.current = Some((parent, out.edges.len(), out.stats));
        let armed = fault.is_some_and(|f| {
            shared.fault_claims.fetch_add(1, Ordering::Relaxed) >= f.after_claims
        });
        let (s, _) = shared.state_of(parent);
        succ.clear();
        let result = compiled.for_each_successor(&s, &mut scratch, |action, assignments| {
            let child = s.with(assignments);
            let child = match &red.canon {
                Some(c) => {
                    let canonical = c.canonicalize(&child);
                    if canonical != child {
                        out.stats.canon_hits += 1;
                    }
                    canonical
                }
                None => child,
            };
            succ.push((action, child));
            ControlFlow::<std::convert::Infallible>::Continue(())
        });
        if let Err(e) = result {
            out.current = None;
            shared.note_error(e);
            break;
        }
        let keep_cluster = red.por.as_ref().and_then(|por| {
            let chosen =
                por.choose_ample(succ.iter().map(|(a, _)| *a), &mut ample_scratch)?;
            let bounds = bounds.expect("bounds snapshot exists whenever POR is on");
            let closes_level = succ.iter().any(|(a, child)| {
                por.cluster_of(*a) == chosen && shared.in_completed_level(child, bounds)
            });
            (!closes_level).then_some(chosen)
        });
        if keep_cluster.is_some() {
            out.stats.ample_states += 1;
        } else {
            out.stats.full_states += 1;
        }
        for (action, child) in succ.drain(..) {
            if let Some(c) = keep_cluster {
                if red.por.as_ref().map(|p| p.cluster_of(action)) != Some(c) {
                    out.stats.skipped_transitions += 1;
                    continue;
                }
            }
            if let Some(reason) = shared.meter.charge_transition() {
                shared.note_exhaustion(reason);
                out.interrupted.push(parent);
                out.current = None;
                break 'level;
            }
            let child_fp = child.fingerprint();
            match shared.intern_with(child_fp, move || child) {
                Ok((cp, is_new)) => {
                    if is_new {
                        out.next.push(cp);
                    }
                    out.edges.push((parent, action as u32, cp));
                    if armed && !shared.fault_fired.swap(true, Ordering::Relaxed) {
                        panic!("injected worker panic");
                    }
                }
                Err(reason) => {
                    shared.note_exhaustion(reason);
                    out.interrupted.push(parent);
                    out.current = None;
                    break 'level;
                }
            }
        }
        out.current = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GuardedAction, Init};
    use opentla_kernel::{Domain, Expr, Value, Vars};

    fn counter(max: i64) -> System {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, max));
        let incr = GuardedAction::new(
            "incr",
            Expr::var(x).lt(Expr::int(max)),
            vec![(x, Expr::var(x).add(Expr::int(1)))],
        );
        System::new(vars, Init::new([(x, Value::Int(0))]), vec![incr])
    }

    /// A branching system: two counters stepped independently — enough
    /// breadth for the parallel engine to actually fan out.
    fn grid(max: i64) -> System {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, max));
        let y = vars.declare("y", Domain::int_range(0, max));
        let step_x = GuardedAction::new(
            "step_x",
            Expr::var(x).lt(Expr::int(max)),
            vec![(x, Expr::var(x).add(Expr::int(1)))],
        );
        let step_y = GuardedAction::new(
            "step_y",
            Expr::var(y).lt(Expr::int(max)),
            vec![(y, Expr::var(y).add(Expr::int(1)))],
        );
        System::new(
            vars,
            Init::new([(x, Value::Int(0)), (y, Value::Int(0))]),
            vec![step_x, step_y],
        )
    }

    #[test]
    fn explores_chain() {
        let graph = explore(&counter(5), &ExploreOptions::default()).unwrap();
        assert_eq!(graph.len(), 6);
        assert_eq!(graph.edge_count(), 5);
        assert_eq!(graph.init(), &[0]);
        assert!(!graph.is_empty());
    }

    #[test]
    fn trace_reconstruction() {
        let graph = explore(&counter(5), &ExploreOptions::default()).unwrap();
        let last = graph.len() - 1;
        let trace = graph.trace_to(last);
        assert_eq!(trace.len(), 6);
        assert_eq!(trace[0].0, None);
        assert!(trace[1..].iter().all(|(a, _)| a.is_some()));
    }

    #[test]
    fn state_limit_enforced() {
        let opts = ExploreOptions {
            max_states: 3,
            ..ExploreOptions::default()
        };
        assert!(matches!(
            explore(&counter(10), &opts),
            Err(CheckError::TooManyStates { limit: 3 })
        ));
    }

    #[test]
    fn no_initial_states() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let sys = System::new(
            vars,
            Init::new([]).with_constraint(Expr::var(x).eq(Expr::int(7))),
            vec![],
        );
        assert!(matches!(
            explore(&sys, &ExploreOptions::default()),
            Err(CheckError::NoInitialStates)
        ));
        assert!(matches!(
            explore_parallel(&sys, &ExploreOptions::default()),
            Err(CheckError::NoInitialStates)
        ));
    }

    #[test]
    fn toggle_graph_and_paths() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let toggle = GuardedAction::new(
            "toggle",
            Expr::bool(true),
            vec![(x, Expr::int(1).sub(Expr::var(x)))],
        );
        let sys = System::new(vars, Init::new([(x, Value::Int(0))]), vec![toggle]);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert_eq!(graph.len(), 2);
        // Path 0 → 1 within the full graph.
        let p = graph.path_within(0, 1, |_| true).unwrap();
        assert_eq!(p.len(), 1);
        // Path 0 → 0: empty.
        assert_eq!(graph.path_within(0, 0, |_| true).unwrap().len(), 0);
        // With state 1 forbidden, 0 → 1 is unreachable.
        assert!(graph.path_within(0, 1, |s| s != 1).is_none());
    }

    #[test]
    fn deadlocks_and_stats() {
        let graph = explore(&counter(5), &ExploreOptions::default()).unwrap();
        // Only x = 5 is terminal.
        assert_eq!(graph.deadlocks().len(), 1);
        let stats = graph.stats();
        assert_eq!(stats.states, 6);
        assert_eq!(stats.transitions, 5);
        assert_eq!(stats.deadlocks, 1);
        assert_eq!(stats.depth, 5);
        let text = stats.to_string();
        assert!(text.contains("6 states") && text.contains("depth 5"), "{text}");
    }

    #[test]
    fn governed_exploration_returns_partial_graph() {
        // Acceptance: max_states = 3 still yields a usable partial
        // graph with readable stats, instead of an all-or-nothing Err.
        let run = explore_governed(&counter(10), &Budget::default().states(3)).unwrap();
        assert_eq!(run.graph.len(), 3);
        let stats = run.stats(); // through Deref
        assert_eq!(stats.states, 3);
        assert_eq!(stats.transitions, 2);
        match &run.outcome {
            Outcome::Exhausted {
                reason,
                frontier_size,
                stats,
                ..
            } => {
                assert_eq!(*reason, ExhaustReason::StateLimit { limit: 3 });
                assert_eq!(*frontier_size, run.frontier.len());
                assert_eq!(stats.states, 3);
            }
            Outcome::Complete => panic!("3 states cannot cover counter(10)"),
        }
        // Every recorded state is genuinely reachable and traceable.
        for id in 0..run.graph.len() {
            assert!(!run.trace_to(id).is_empty());
        }
        // The half-expanded state is on the frontier, not silently lost.
        assert!(!run.frontier.is_empty());
    }

    #[test]
    fn both_charge_sites_agree_on_unique_state_counting() {
        // A system whose *initial* enumeration already exceeds the
        // limit: the init loop and the successor loop must trip at the
        // same effective limit (unique insertions, not enumerations).
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, 7));
        let sys = System::new(vars, Init::new([]), vec![]);
        let run = explore_governed(&sys, &Budget::default().states(5)).unwrap();
        assert_eq!(run.graph.len(), 5);
        assert_eq!(
            run.outcome.exhaustion(),
            Some(&ExhaustReason::StateLimit { limit: 5 })
        );
        let _ = x;

        // Exactly at the limit: complete, not exhausted.
        let run = explore_governed(&counter(4), &Budget::default().states(5)).unwrap();
        assert!(run.outcome.is_complete());
        assert_eq!(run.graph.len(), 5);
        assert!(run.frontier.is_empty());
    }

    #[test]
    fn transition_budget_requeues_interrupted_state() {
        let run =
            explore_governed(&counter(10), &Budget::default().transitions(2)).unwrap();
        assert_eq!(run.graph.edge_count(), 2);
        assert!(matches!(
            run.outcome.exhaustion(),
            Some(ExhaustReason::TransitionLimit { limit: 2 })
        ));
        // The state whose expansion was cut short is on the frontier.
        assert!(!run.frontier.is_empty());
    }

    #[test]
    fn cancelled_budget_stops_immediately() {
        let budget = Budget::default();
        budget.request_cancel();
        let run = explore_governed(&counter(10), &budget).unwrap();
        assert!(matches!(
            run.outcome.exhaustion(),
            Some(ExhaustReason::Cancelled)
        ));
    }

    #[test]
    fn escalate_reaches_completion() {
        let run = crate::escalate(&Budget::default().states(2), 4, 3, |b| {
            explore_governed(&counter(9), b)
        })
        .unwrap();
        assert!(run.outcome.is_complete());
        assert_eq!(run.graph.len(), 10);
    }

    #[test]
    fn duplicate_init_states_deduplicated() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        // Free variable x, no constraint: two initial states; plus a
        // second enumeration of the same pinned one must not duplicate.
        let sys = System::new(vars, Init::new([]), vec![]);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert_eq!(graph.len(), 2);
        assert_eq!(graph.init().len(), 2);
        assert!(graph.index_of(graph.state(0)).is_some());
        let _ = x;
    }

    #[test]
    fn exact_mode_matches_fingerprint_mode() {
        let fp = explore(&grid(4), &ExploreOptions::default()).unwrap();
        let exact = explore(
            &grid(4),
            &ExploreOptions {
                mode: VisitedMode::Exact,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(fp.stats(), exact.stats());
        assert_eq!(fp.states(), exact.states());
        for id in 0..fp.len() {
            assert_eq!(fp.edges(id), exact.edges(id));
            assert_eq!(fp.trace_to(id), exact.trace_to(id));
        }
    }

    #[test]
    fn parallel_matches_sequential_byte_for_byte() {
        for threads in [1, 2, 4] {
            let seq = explore(&grid(4), &ExploreOptions::default()).unwrap();
            let par = explore_parallel(
                &grid(4),
                &ExploreOptions {
                    threads: Some(threads),
                    ..ExploreOptions::default()
                },
            )
            .unwrap();
            assert_eq!(seq.stats(), par.stats(), "threads = {threads}");
            assert_eq!(seq.states(), par.states(), "threads = {threads}");
            assert_eq!(seq.init(), par.init(), "threads = {threads}");
            for id in 0..seq.len() {
                assert_eq!(seq.edges(id), par.edges(id), "threads = {threads}");
                assert_eq!(seq.trace_to(id), par.trace_to(id), "threads = {threads}");
            }
        }
    }

    #[test]
    fn parallel_governed_exhaustion_is_honest() {
        let run = explore_parallel_governed(
            &grid(6),
            &Budget::default().states(10),
            &ExploreOptions {
                threads: Some(3),
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(run.graph.len(), 10);
        assert!(matches!(
            run.outcome.exhaustion(),
            Some(ExhaustReason::StateLimit { limit: 10 })
        ));
        // Every recorded state is reachable and traceable; the
        // frontier holds real, in-graph indices.
        for id in 0..run.graph.len() {
            assert!(!run.trace_to(id).is_empty());
        }
        for &f in &run.frontier {
            assert!(f < run.graph.len());
        }
        assert!(!run.frontier.is_empty());
    }

    #[test]
    fn forced_collisions_underapproximate_and_exact_mode_recovers() {
        // 1-bit fingerprints conflate almost everything: the explorer
        // must *under*-approximate (strictly fewer states, no invented
        // ones), and exact mode must restore the full count.
        let full = explore(&grid(4), &ExploreOptions::default()).unwrap();
        let collided = explore(
            &grid(4),
            &ExploreOptions {
                fp_bits: 1,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert!(collided.len() < full.len());
        assert!(collided.len() <= 2);
        // Every state the collided run kept is genuinely reachable.
        for s in collided.states() {
            assert!(full.index_of(s).is_some());
        }
        let exact = explore(
            &grid(4),
            &ExploreOptions {
                fp_bits: 1,
                mode: VisitedMode::Exact,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        assert_eq!(exact.len(), full.len());
    }

    #[test]
    fn index_of_verifies_under_collisions() {
        // With forced collisions, index_of must refuse to misattribute
        // a displaced state to its collision partner's index.
        let collided = explore(
            &grid(4),
            &ExploreOptions {
                fp_bits: 1,
                ..ExploreOptions::default()
            },
        )
        .unwrap();
        let full = explore(&grid(4), &ExploreOptions::default()).unwrap();
        for s in full.states() {
            // A state displaced by a collision is honestly absent
            // (None); a found index must point at the exact state.
            if let Some(id) = collided.index_of(s) {
                assert_eq!(collided.state(id), s);
            }
        }
    }

    /// Small graphs requested under a parallel engine route to the
    /// sequential path (no worker events); graphs that outgrow the
    /// cutoff — or runs that opt out with `Some(0)` — still fan out.
    #[test]
    fn small_graphs_skip_worker_machinery() {
        use crate::obs::{CountingRecorder, RecorderHandle};
        use std::sync::Arc;

        let run_counting = |sys: &System, cutoff: Option<usize>| {
            let counting = Arc::new(CountingRecorder::new());
            let handle = RecorderHandle::new(counting.clone());
            let budget = Budget::default().with_recorder(handle);
            let opts = ExploreOptions {
                threads: Some(4),
                small_graph_cutoff: cutoff,
                ..ExploreOptions::default()
            };
            let run = explore_parallel_governed(sys, &budget, &opts).unwrap();
            assert!(run.outcome.is_complete());
            (run.graph, counting.worker_levels())
        };

        // 9 states: probe completes under the default 256 cutoff, so
        // no worker levels are ever recorded.
        let small = grid(2);
        let (routed, levels) = run_counting(&small, None);
        assert_eq!(levels, 0, "small graph should route sequentially");
        // Opting out with Some(0) restores the parallel machinery.
        let (forced, forced_levels) = run_counting(&small, Some(0));
        assert!(forced_levels > 0, "cutoff 0 must force the parallel engine");
        assert_eq!(routed.len(), forced.len());
        assert_eq!(routed.edge_count(), forced.edge_count());
        for id in 0..routed.len() {
            assert_eq!(routed.state(id), forced.state(id));
        }

        // 441 states: the probe outgrows the cutoff, the parallel
        // engine takes over, and worker levels appear.
        let (big, big_levels) = run_counting(&grid(20), None);
        assert_eq!(big.len(), 441);
        assert!(big_levels > 0, "large graph must still fan out");
    }
}
