//! Breadth-first state-space exploration.

use crate::{CheckError, System};
use opentla_kernel::State;
use std::collections::HashMap;

/// Options controlling exploration.
#[derive(Clone, Debug)]
pub struct ExploreOptions {
    /// Abort with [`CheckError::TooManyStates`] beyond this many
    /// reachable states. Default 1 000 000.
    pub max_states: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_states: 1_000_000,
        }
    }
}

/// Summary statistics of a reachability graph; see
/// [`StateGraph::stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of reachable states.
    pub states: usize,
    /// Number of (non-stuttering) transitions.
    pub transitions: usize,
    /// Number of states without outgoing transitions.
    pub deadlocks: usize,
    /// Longest shortest path from an initial state (BFS depth).
    pub depth: usize,
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} states, {} transitions, depth {}, {} deadlocks",
            self.states, self.transitions, self.depth, self.deadlocks
        )
    }
}

/// An edge of the reachability graph: which action fired and where it
/// leads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Index of the action in the system's action list.
    pub action: usize,
    /// Index of the target state in the graph.
    pub target: usize,
}

/// The reachable state graph of a [`System`], with a BFS tree for
/// shortest-trace reconstruction.
///
/// Exploration order is deterministic (BFS over the system's action
/// order), so state indices — and therefore counterexamples — are
/// reproducible.
#[derive(Clone, Debug)]
pub struct StateGraph {
    states: Vec<State>,
    index: HashMap<State, usize>,
    init: Vec<usize>,
    edges: Vec<Vec<Edge>>,
    parents: Vec<Option<(usize, usize)>>,
}

impl StateGraph {
    /// Number of reachable states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the graph is empty (no initial states).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Total number of (non-stuttering) transitions.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The state with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn state(&self, id: usize) -> &State {
        &self.states[id]
    }

    /// All reachable states in discovery order.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// The index of a state, if reachable.
    pub fn index_of(&self, s: &State) -> Option<usize> {
        self.index.get(s).copied()
    }

    /// Indices of the initial states.
    pub fn init(&self) -> &[usize] {
        &self.init
    }

    /// Outgoing edges of a state.
    pub fn edges(&self, id: usize) -> &[Edge] {
        &self.edges[id]
    }

    /// States with no outgoing transition — "deadlocks" in the TLC
    /// sense. In TLA semantics these states merely stutter forever,
    /// which is often legitimate (a terminated protocol), but an
    /// unexpected deadlock usually signals an over-constrained guard.
    pub fn deadlocks(&self) -> Vec<usize> {
        (0..self.len()).filter(|i| self.edges[*i].is_empty()).collect()
    }

    /// Summary statistics of the graph: states, transitions, deadlock
    /// count, and the BFS depth (longest shortest path from an initial
    /// state).
    pub fn stats(&self) -> GraphStats {
        // BFS depth from all initial states.
        let mut depth = vec![usize::MAX; self.len()];
        let mut queue = std::collections::VecDeque::new();
        for &i in &self.init {
            depth[i] = 0;
            queue.push_back(i);
        }
        let mut max_depth = 0;
        while let Some(s) = queue.pop_front() {
            for e in &self.edges[s] {
                if depth[e.target] == usize::MAX {
                    depth[e.target] = depth[s] + 1;
                    max_depth = max_depth.max(depth[e.target]);
                    queue.push_back(e.target);
                }
            }
        }
        GraphStats {
            states: self.len(),
            transitions: self.edge_count(),
            deadlocks: self.deadlocks().len(),
            depth: max_depth,
        }
    }

    /// The shortest trace from an initial state to `id`, as
    /// `(action index leading into the state, state index)` pairs; the
    /// first entry has no action.
    pub fn trace_to(&self, id: usize) -> Vec<(Option<usize>, usize)> {
        let mut rev = Vec::new();
        let mut cur = id;
        loop {
            match self.parents[cur] {
                Some((pred, action)) => {
                    rev.push((Some(action), cur));
                    cur = pred;
                }
                None => {
                    rev.push((None, cur));
                    break;
                }
            }
        }
        rev.reverse();
        rev
    }

    /// Shortest path (sequence of `(action, state)` hops) from `from`
    /// to `to` inside the subgraph induced by `allowed` (a predicate on
    /// state indices). Returns `None` if unreachable.
    ///
    /// The path starts *after* `from`: an empty path means
    /// `from == to`.
    pub fn path_within(
        &self,
        from: usize,
        to: usize,
        mut allowed: impl FnMut(usize) -> bool,
    ) -> Option<Vec<(usize, usize)>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut prev: HashMap<usize, (usize, usize)> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(s) = queue.pop_front() {
            for e in &self.edges[s] {
                if !allowed(e.target) || prev.contains_key(&e.target) || e.target == from
                {
                    continue;
                }
                prev.insert(e.target, (s, e.action));
                if e.target == to {
                    let mut rev = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let (p, a) = prev[&cur];
                        rev.push((a, cur));
                        cur = p;
                    }
                    rev.reverse();
                    return Some(rev);
                }
                queue.push_back(e.target);
            }
        }
        None
    }
}

/// Explores the reachable states of a system breadth-first.
///
/// # Errors
///
/// * [`CheckError::NoInitialStates`] if the initial specification is
///   empty;
/// * [`CheckError::TooManyStates`] beyond `options.max_states`;
/// * evaluation/domain errors from firing actions.
pub fn explore(system: &System, options: &ExploreOptions) -> Result<StateGraph, CheckError> {
    let init_states = system.init().states(system.universe())?;
    if init_states.is_empty() {
        return Err(CheckError::NoInitialStates);
    }
    let mut graph = StateGraph {
        states: Vec::new(),
        index: HashMap::new(),
        init: Vec::new(),
        edges: Vec::new(),
        parents: Vec::new(),
    };
    let mut queue = std::collections::VecDeque::new();
    for s in init_states {
        if graph.index.contains_key(&s) {
            continue;
        }
        if graph.states.len() >= options.max_states {
            return Err(CheckError::TooManyStates {
                limit: options.max_states,
            });
        }
        let id = graph.states.len();
        graph.index.insert(s.clone(), id);
        graph.states.push(s);
        graph.edges.push(Vec::new());
        graph.parents.push(None);
        graph.init.push(id);
        queue.push_back(id);
    }
    while let Some(id) = queue.pop_front() {
        let succ = system.successors(&graph.states[id].clone())?;
        for (action, t) in succ {
            let target = match graph.index.get(&t) {
                Some(existing) => *existing,
                None => {
                    if graph.states.len() >= options.max_states {
                        return Err(CheckError::TooManyStates {
                            limit: options.max_states,
                        });
                    }
                    let nid = graph.states.len();
                    graph.index.insert(t.clone(), nid);
                    graph.states.push(t);
                    graph.edges.push(Vec::new());
                    graph.parents.push(Some((id, action)));
                    queue.push_back(nid);
                    nid
                }
            };
            graph.edges[id].push(Edge { action, target });
        }
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GuardedAction, Init};
    use opentla_kernel::{Domain, Expr, Value, Vars};

    fn counter(max: i64) -> System {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, max));
        let incr = GuardedAction::new(
            "incr",
            Expr::var(x).lt(Expr::int(max)),
            vec![(x, Expr::var(x).add(Expr::int(1)))],
        );
        System::new(vars, Init::new([(x, Value::Int(0))]), vec![incr])
    }

    #[test]
    fn explores_chain() {
        let graph = explore(&counter(5), &ExploreOptions::default()).unwrap();
        assert_eq!(graph.len(), 6);
        assert_eq!(graph.edge_count(), 5);
        assert_eq!(graph.init(), &[0]);
        assert!(!graph.is_empty());
    }

    #[test]
    fn trace_reconstruction() {
        let graph = explore(&counter(5), &ExploreOptions::default()).unwrap();
        let last = graph.len() - 1;
        let trace = graph.trace_to(last);
        assert_eq!(trace.len(), 6);
        assert_eq!(trace[0].0, None);
        assert!(trace[1..].iter().all(|(a, _)| a.is_some()));
    }

    #[test]
    fn state_limit_enforced() {
        let opts = ExploreOptions { max_states: 3 };
        assert!(matches!(
            explore(&counter(10), &opts),
            Err(CheckError::TooManyStates { limit: 3 })
        ));
    }

    #[test]
    fn no_initial_states() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let sys = System::new(
            vars,
            Init::new([]).with_constraint(Expr::var(x).eq(Expr::int(7))),
            vec![],
        );
        assert!(matches!(
            explore(&sys, &ExploreOptions::default()),
            Err(CheckError::NoInitialStates)
        ));
    }

    #[test]
    fn toggle_graph_and_paths() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let toggle = GuardedAction::new(
            "toggle",
            Expr::bool(true),
            vec![(x, Expr::int(1).sub(Expr::var(x)))],
        );
        let sys = System::new(vars, Init::new([(x, Value::Int(0))]), vec![toggle]);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert_eq!(graph.len(), 2);
        // Path 0 → 1 within the full graph.
        let p = graph.path_within(0, 1, |_| true).unwrap();
        assert_eq!(p.len(), 1);
        // Path 0 → 0: empty.
        assert_eq!(graph.path_within(0, 0, |_| true).unwrap().len(), 0);
        // With state 1 forbidden, 0 → 1 is unreachable.
        assert!(graph.path_within(0, 1, |s| s != 1).is_none());
    }

    #[test]
    fn deadlocks_and_stats() {
        let graph = explore(&counter(5), &ExploreOptions::default()).unwrap();
        // Only x = 5 is terminal.
        assert_eq!(graph.deadlocks().len(), 1);
        let stats = graph.stats();
        assert_eq!(stats.states, 6);
        assert_eq!(stats.transitions, 5);
        assert_eq!(stats.deadlocks, 1);
        assert_eq!(stats.depth, 5);
        let text = stats.to_string();
        assert!(text.contains("6 states") && text.contains("depth 5"), "{text}");
    }

    #[test]
    fn duplicate_init_states_deduplicated() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        // Free variable x, no constraint: two initial states; plus a
        // second enumeration of the same pinned one must not duplicate.
        let sys = System::new(vars, Init::new([]), vec![]);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert_eq!(graph.len(), 2);
        assert_eq!(graph.init().len(), 2);
        assert!(graph.index_of(graph.state(0)).is_some());
        let _ = x;
    }
}
