//! Breadth-first state-space exploration.

use crate::budget::{Budget, ExhaustReason, Governed, Meter, Outcome};
use crate::{CheckError, System};
use opentla_kernel::State;
use std::collections::HashMap;

/// Options controlling exploration.
#[derive(Clone, Debug)]
pub struct ExploreOptions {
    /// Abort with [`CheckError::TooManyStates`] beyond this many
    /// reachable states. Default 1 000 000.
    pub max_states: usize,
}

impl Default for ExploreOptions {
    fn default() -> Self {
        ExploreOptions {
            max_states: 1_000_000,
        }
    }
}

/// Summary statistics of a reachability graph; see
/// [`StateGraph::stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of reachable states.
    pub states: usize,
    /// Number of (non-stuttering) transitions.
    pub transitions: usize,
    /// Number of states without outgoing transitions.
    pub deadlocks: usize,
    /// Longest shortest path from an initial state (BFS depth).
    pub depth: usize,
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} states, {} transitions, depth {}, {} deadlocks",
            self.states, self.transitions, self.depth, self.deadlocks
        )
    }
}

/// An edge of the reachability graph: which action fired and where it
/// leads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Edge {
    /// Index of the action in the system's action list.
    pub action: usize,
    /// Index of the target state in the graph.
    pub target: usize,
}

/// The reachable state graph of a [`System`], with a BFS tree for
/// shortest-trace reconstruction.
///
/// Exploration order is deterministic (BFS over the system's action
/// order), so state indices — and therefore counterexamples — are
/// reproducible.
#[derive(Clone, Debug)]
pub struct StateGraph {
    states: Vec<State>,
    index: HashMap<State, usize>,
    init: Vec<usize>,
    edges: Vec<Vec<Edge>>,
    parents: Vec<Option<(usize, usize)>>,
}

impl StateGraph {
    /// Number of reachable states.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the graph is empty (no initial states).
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Total number of (non-stuttering) transitions.
    pub fn edge_count(&self) -> usize {
        self.edges.iter().map(Vec::len).sum()
    }

    /// The state with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn state(&self, id: usize) -> &State {
        &self.states[id]
    }

    /// All reachable states in discovery order.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// The index of a state, if reachable.
    pub fn index_of(&self, s: &State) -> Option<usize> {
        self.index.get(s).copied()
    }

    /// Indices of the initial states.
    pub fn init(&self) -> &[usize] {
        &self.init
    }

    /// Outgoing edges of a state.
    pub fn edges(&self, id: usize) -> &[Edge] {
        &self.edges[id]
    }

    /// States with no outgoing transition — "deadlocks" in the TLC
    /// sense. In TLA semantics these states merely stutter forever,
    /// which is often legitimate (a terminated protocol), but an
    /// unexpected deadlock usually signals an over-constrained guard.
    pub fn deadlocks(&self) -> Vec<usize> {
        (0..self.len()).filter(|i| self.edges[*i].is_empty()).collect()
    }

    /// Summary statistics of the graph: states, transitions, deadlock
    /// count, and the BFS depth (longest shortest path from an initial
    /// state).
    pub fn stats(&self) -> GraphStats {
        // BFS depth from all initial states.
        let mut depth = vec![usize::MAX; self.len()];
        let mut queue = std::collections::VecDeque::new();
        for &i in &self.init {
            depth[i] = 0;
            queue.push_back(i);
        }
        let mut max_depth = 0;
        while let Some(s) = queue.pop_front() {
            for e in &self.edges[s] {
                if depth[e.target] == usize::MAX {
                    depth[e.target] = depth[s] + 1;
                    max_depth = max_depth.max(depth[e.target]);
                    queue.push_back(e.target);
                }
            }
        }
        GraphStats {
            states: self.len(),
            transitions: self.edge_count(),
            deadlocks: self.deadlocks().len(),
            depth: max_depth,
        }
    }

    /// The shortest trace from an initial state to `id`, as
    /// `(action index leading into the state, state index)` pairs; the
    /// first entry has no action.
    pub fn trace_to(&self, id: usize) -> Vec<(Option<usize>, usize)> {
        let mut rev = Vec::new();
        let mut cur = id;
        loop {
            match self.parents[cur] {
                Some((pred, action)) => {
                    rev.push((Some(action), cur));
                    cur = pred;
                }
                None => {
                    rev.push((None, cur));
                    break;
                }
            }
        }
        rev.reverse();
        rev
    }

    /// Shortest path (sequence of `(action, state)` hops) from `from`
    /// to `to` inside the subgraph induced by `allowed` (a predicate on
    /// state indices). Returns `None` if unreachable.
    ///
    /// The path starts *after* `from`: an empty path means
    /// `from == to`.
    pub fn path_within(
        &self,
        from: usize,
        to: usize,
        mut allowed: impl FnMut(usize) -> bool,
    ) -> Option<Vec<(usize, usize)>> {
        if from == to {
            return Some(Vec::new());
        }
        let mut prev: HashMap<usize, (usize, usize)> = HashMap::new();
        let mut queue = std::collections::VecDeque::from([from]);
        while let Some(s) = queue.pop_front() {
            for e in &self.edges[s] {
                if !allowed(e.target) || prev.contains_key(&e.target) || e.target == from
                {
                    continue;
                }
                prev.insert(e.target, (s, e.action));
                if e.target == to {
                    let mut rev = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let (p, a) = prev[&cur];
                        rev.push((a, cur));
                        cur = p;
                    }
                    rev.reverse();
                    return Some(rev);
                }
                queue.push_back(e.target);
            }
        }
        None
    }
}

/// A (possibly partial) exploration: the graph built so far, how the
/// run ended, and — when the budget ran out — the BFS frontier still
/// waiting to be expanded.
///
/// Dereferences to its [`StateGraph`], so invariant checks and trace
/// reconstruction work on partial explorations unchanged.
#[derive(Clone, Debug)]
pub struct Exploration {
    /// The reachability graph built within budget. On a
    /// [`Outcome::Complete`] run this is the full reachable graph.
    pub graph: StateGraph,
    /// Whether the run covered the whole reachable space.
    pub outcome: Outcome,
    /// State indices discovered but not yet expanded when the run
    /// stopped (empty on complete runs). Edges out of these states are
    /// missing from `graph`.
    pub frontier: Vec<usize>,
}

impl std::ops::Deref for Exploration {
    type Target = StateGraph;

    fn deref(&self) -> &StateGraph {
        &self.graph
    }
}

impl Governed for Exploration {
    fn exhaustion(&self) -> Option<&ExhaustReason> {
        self.outcome.exhaustion()
    }
}

/// Explores the reachable states of a system breadth-first under a
/// resource [`Budget`].
///
/// Budget exhaustion is **not** an error: the result carries the
/// partial [`StateGraph`] (every state and edge recorded is genuinely
/// reachable), an [`Outcome::Exhausted`] tag with the reason and
/// statistics, and the unexpanded BFS frontier. Unique states are
/// counted once, at insertion — the initial-state loop and the
/// successor loop charge the same meter, so the limit trips at exactly
/// `max_states` regardless of where the frontier stood.
///
/// # Errors
///
/// * [`CheckError::NoInitialStates`] if the initial specification is
///   empty;
/// * evaluation/domain errors from firing actions.
pub fn explore_governed(system: &System, budget: &Budget) -> Result<Exploration, CheckError> {
    let init_states = system.init().states(system.universe())?;
    if init_states.is_empty() {
        return Err(CheckError::NoInitialStates);
    }
    let mut meter = Meter::start(budget);
    let mut graph = StateGraph {
        states: Vec::new(),
        index: HashMap::new(),
        init: Vec::new(),
        edges: Vec::new(),
        parents: Vec::new(),
    };
    let mut queue = std::collections::VecDeque::new();
    let mut exhausted: Option<ExhaustReason> = None;
    for s in init_states {
        if graph.index.contains_key(&s) {
            continue;
        }
        if let Some(reason) = meter.charge_state() {
            exhausted = Some(reason);
            break;
        }
        let id = graph.states.len();
        graph.index.insert(s.clone(), id);
        graph.states.push(s);
        graph.edges.push(Vec::new());
        graph.parents.push(None);
        graph.init.push(id);
        queue.push_back(id);
    }
    'bfs: while exhausted.is_none() {
        if let Some(reason) = meter.checkpoint() {
            exhausted = Some(reason);
            break;
        }
        let Some(id) = queue.pop_front() else {
            break;
        };
        let succ = system.successors(&graph.states[id].clone())?;
        for (action, t) in succ {
            if let Some(reason) = meter.charge_transition() {
                // Re-queue the half-expanded state so the frontier
                // honestly reports it as uncovered.
                queue.push_front(id);
                exhausted = Some(reason);
                break 'bfs;
            }
            let target = match graph.index.get(&t) {
                Some(existing) => *existing,
                None => {
                    if let Some(reason) = meter.charge_state() {
                        queue.push_front(id);
                        exhausted = Some(reason);
                        break 'bfs;
                    }
                    let nid = graph.states.len();
                    graph.index.insert(t.clone(), nid);
                    graph.states.push(t);
                    graph.edges.push(Vec::new());
                    graph.parents.push(Some((id, action)));
                    queue.push_back(nid);
                    nid
                }
            };
            graph.edges[id].push(Edge { action, target });
        }
    }
    let outcome = match exhausted {
        None => Outcome::Complete,
        Some(reason) => Outcome::Exhausted {
            reason,
            frontier_size: queue.len(),
            stats: graph.stats(),
        },
    };
    Ok(Exploration {
        frontier: queue.into_iter().collect(),
        graph,
        outcome,
    })
}

/// Explores the reachable states of a system breadth-first.
///
/// This is the all-or-nothing interface: exceeding
/// `options.max_states` is reported as an error. Callers who want the
/// partial graph (and finer-grained limits) should use
/// [`explore_governed`].
///
/// # Errors
///
/// * [`CheckError::NoInitialStates`] if the initial specification is
///   empty;
/// * [`CheckError::TooManyStates`] beyond `options.max_states`;
/// * evaluation/domain errors from firing actions.
pub fn explore(system: &System, options: &ExploreOptions) -> Result<StateGraph, CheckError> {
    let run = explore_governed(system, &Budget::default().states(options.max_states))?;
    match run.outcome {
        Outcome::Complete => Ok(run.graph),
        Outcome::Exhausted { .. } => Err(CheckError::TooManyStates {
            limit: options.max_states,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GuardedAction, Init};
    use opentla_kernel::{Domain, Expr, Value, Vars};

    fn counter(max: i64) -> System {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, max));
        let incr = GuardedAction::new(
            "incr",
            Expr::var(x).lt(Expr::int(max)),
            vec![(x, Expr::var(x).add(Expr::int(1)))],
        );
        System::new(vars, Init::new([(x, Value::Int(0))]), vec![incr])
    }

    #[test]
    fn explores_chain() {
        let graph = explore(&counter(5), &ExploreOptions::default()).unwrap();
        assert_eq!(graph.len(), 6);
        assert_eq!(graph.edge_count(), 5);
        assert_eq!(graph.init(), &[0]);
        assert!(!graph.is_empty());
    }

    #[test]
    fn trace_reconstruction() {
        let graph = explore(&counter(5), &ExploreOptions::default()).unwrap();
        let last = graph.len() - 1;
        let trace = graph.trace_to(last);
        assert_eq!(trace.len(), 6);
        assert_eq!(trace[0].0, None);
        assert!(trace[1..].iter().all(|(a, _)| a.is_some()));
    }

    #[test]
    fn state_limit_enforced() {
        let opts = ExploreOptions { max_states: 3 };
        assert!(matches!(
            explore(&counter(10), &opts),
            Err(CheckError::TooManyStates { limit: 3 })
        ));
    }

    #[test]
    fn no_initial_states() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let sys = System::new(
            vars,
            Init::new([]).with_constraint(Expr::var(x).eq(Expr::int(7))),
            vec![],
        );
        assert!(matches!(
            explore(&sys, &ExploreOptions::default()),
            Err(CheckError::NoInitialStates)
        ));
    }

    #[test]
    fn toggle_graph_and_paths() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let toggle = GuardedAction::new(
            "toggle",
            Expr::bool(true),
            vec![(x, Expr::int(1).sub(Expr::var(x)))],
        );
        let sys = System::new(vars, Init::new([(x, Value::Int(0))]), vec![toggle]);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert_eq!(graph.len(), 2);
        // Path 0 → 1 within the full graph.
        let p = graph.path_within(0, 1, |_| true).unwrap();
        assert_eq!(p.len(), 1);
        // Path 0 → 0: empty.
        assert_eq!(graph.path_within(0, 0, |_| true).unwrap().len(), 0);
        // With state 1 forbidden, 0 → 1 is unreachable.
        assert!(graph.path_within(0, 1, |s| s != 1).is_none());
    }

    #[test]
    fn deadlocks_and_stats() {
        let graph = explore(&counter(5), &ExploreOptions::default()).unwrap();
        // Only x = 5 is terminal.
        assert_eq!(graph.deadlocks().len(), 1);
        let stats = graph.stats();
        assert_eq!(stats.states, 6);
        assert_eq!(stats.transitions, 5);
        assert_eq!(stats.deadlocks, 1);
        assert_eq!(stats.depth, 5);
        let text = stats.to_string();
        assert!(text.contains("6 states") && text.contains("depth 5"), "{text}");
    }

    #[test]
    fn governed_exploration_returns_partial_graph() {
        // Acceptance: max_states = 3 still yields a usable partial
        // graph with readable stats, instead of an all-or-nothing Err.
        let run = explore_governed(&counter(10), &Budget::default().states(3)).unwrap();
        assert_eq!(run.graph.len(), 3);
        let stats = run.stats(); // through Deref
        assert_eq!(stats.states, 3);
        assert_eq!(stats.transitions, 2);
        match &run.outcome {
            Outcome::Exhausted {
                reason,
                frontier_size,
                stats,
            } => {
                assert_eq!(*reason, ExhaustReason::StateLimit { limit: 3 });
                assert_eq!(*frontier_size, run.frontier.len());
                assert_eq!(stats.states, 3);
            }
            Outcome::Complete => panic!("3 states cannot cover counter(10)"),
        }
        // Every recorded state is genuinely reachable and traceable.
        for id in 0..run.graph.len() {
            assert!(!run.trace_to(id).is_empty());
        }
        // The half-expanded state is on the frontier, not silently lost.
        assert!(!run.frontier.is_empty());
    }

    #[test]
    fn both_charge_sites_agree_on_unique_state_counting() {
        // A system whose *initial* enumeration already exceeds the
        // limit: the init loop and the successor loop must trip at the
        // same effective limit (unique insertions, not enumerations).
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, 7));
        let sys = System::new(vars, Init::new([]), vec![]);
        let run = explore_governed(&sys, &Budget::default().states(5)).unwrap();
        assert_eq!(run.graph.len(), 5);
        assert_eq!(
            run.outcome.exhaustion(),
            Some(&ExhaustReason::StateLimit { limit: 5 })
        );
        let _ = x;

        // Exactly at the limit: complete, not exhausted.
        let run = explore_governed(&counter(4), &Budget::default().states(5)).unwrap();
        assert!(run.outcome.is_complete());
        assert_eq!(run.graph.len(), 5);
        assert!(run.frontier.is_empty());
    }

    #[test]
    fn transition_budget_requeues_interrupted_state() {
        let run =
            explore_governed(&counter(10), &Budget::default().transitions(2)).unwrap();
        assert_eq!(run.graph.edge_count(), 2);
        assert!(matches!(
            run.outcome.exhaustion(),
            Some(ExhaustReason::TransitionLimit { limit: 2 })
        ));
        // The state whose expansion was cut short is on the frontier.
        assert!(!run.frontier.is_empty());
    }

    #[test]
    fn cancelled_budget_stops_immediately() {
        let budget = Budget::default();
        budget.request_cancel();
        let run = explore_governed(&counter(10), &budget).unwrap();
        assert!(matches!(
            run.outcome.exhaustion(),
            Some(ExhaustReason::Cancelled)
        ));
    }

    #[test]
    fn escalate_reaches_completion() {
        let run = crate::escalate(&Budget::default().states(2), 4, 3, |b| {
            explore_governed(&counter(9), b)
        })
        .unwrap();
        assert!(run.outcome.is_complete());
        assert_eq!(run.graph.len(), 10);
    }

    #[test]
    fn duplicate_init_states_deduplicated() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        // Free variable x, no constraint: two initial states; plus a
        // second enumeration of the same pinned one must not duplicate.
        let sys = System::new(vars, Init::new([]), vec![]);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert_eq!(graph.len(), 2);
        assert_eq!(graph.init().len(), 2);
        assert!(graph.index_of(graph.state(0)).is_some());
        let _ = x;
    }
}
