//! Sampling real behaviors of a system.
//!
//! Property-based tests want behaviors that the system can actually
//! take (arbitrary random lassos mostly violate any interesting spec).
//! [`sample_behavior`] random-walks the reachability graph and closes
//! the walk into a lasso — on a revisited state when possible, by
//! stuttering otherwise — so the result *always* satisfies the
//! system's safety part (though not necessarily its fairness).

use crate::StateGraph;
use opentla_semantics::Lasso;
use rand::Rng;

/// Random-walks `graph` from a random initial state for at most
/// `max_steps` transitions and closes the walk into a lasso.
///
/// The returned behavior satisfies `Init ∧ □[N]_v` by construction;
/// fairness is *not* guaranteed (a walk may stop while actions remain
/// enabled).
///
/// # Panics
///
/// Panics if the graph has no initial states (exploration would have
/// failed earlier).
pub fn sample_behavior<R: Rng + ?Sized>(
    graph: &StateGraph,
    max_steps: usize,
    rng: &mut R,
) -> Lasso {
    assert!(!graph.init().is_empty(), "graph must have initial states");
    assert!(
        !graph.is_reduced(),
        "sampled behaviors must be real behaviors: explore with Reduction::none()"
    );
    let start = graph.init()[rng.gen_range(0..graph.init().len())];
    let mut ids = vec![start];
    for _ in 0..max_steps {
        let cur = *ids.last().expect("nonempty");
        let edges = graph.edges(cur);
        if edges.is_empty() {
            break;
        }
        // Occasionally stutter in place to exercise stuttering steps.
        if rng.gen_ratio(1, 8) {
            ids.push(cur);
            continue;
        }
        ids.push(edges[rng.gen_range(0..edges.len())].target);
    }
    // Close the lasso: loop back to the first earlier occurrence of
    // the final state if there is one, otherwise stutter on it.
    let last = *ids.last().expect("nonempty");
    let first_occurrence = ids
        .iter()
        .position(|s| *s == last)
        .expect("the last element is present");
    if first_occurrence == ids.len() - 1 {
        // The final state is new: stutter on it forever.
        let states = ids.iter().map(|i| graph.state(*i).clone()).collect();
        Lasso::new(states, ids.len() - 1).expect("walk is nonempty")
    } else {
        // Drop the duplicated final state; the wrap step re-enters at
        // its first occurrence, so every step of the lasso (including
        // the wrap) is a real step of the walk.
        let states = ids[..ids.len() - 1]
            .iter()
            .map(|i| graph.state(*i).clone())
            .collect();
        Lasso::new(states, first_occurrence).expect("walk is nonempty")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, ExploreOptions, GuardedAction, Init, System};
    use opentla_kernel::{Domain, Expr, Formula, Value, Vars};
    use opentla_semantics::{eval, EvalCtx};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn toggle_system() -> System {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let y = vars.declare("y", Domain::int_range(0, 2));
        let toggle = GuardedAction::new(
            "toggle",
            Expr::bool(true),
            vec![(x, Expr::int(1).sub(Expr::var(x)))],
        );
        let spin = GuardedAction::new(
            "spin",
            Expr::bool(true),
            vec![(
                y,
                Expr::var(y)
                    .eq(Expr::int(2))
                    .ite(Expr::int(0), Expr::var(y).add(Expr::int(1))),
            )],
        );
        System::new(
            vars,
            Init::new([(x, Value::Int(0)), (y, Value::Int(0))]),
            vec![toggle, spin],
        )
    }

    #[test]
    fn samples_satisfy_the_safety_part() {
        let sys = toggle_system();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let safety = Formula::pred(sys.init().as_pred())
            .and(Formula::act_box(sys.next_expr(), sys.frame()));
        let ctx = EvalCtx::default();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let sigma = sample_behavior(&graph, 12, &mut rng);
            assert!(
                eval(&safety, &sigma, &ctx).unwrap(),
                "sampled behavior must satisfy Init ∧ □[N]_v: {sigma:?}"
            );
        }
    }

    #[test]
    fn samples_vary() {
        let sys = toggle_system();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let distinct: std::collections::HashSet<String> = (0..50)
            .map(|_| format!("{:?}", sample_behavior(&graph, 10, &mut rng)))
            .collect();
        assert!(distinct.len() > 10, "got {} distinct walks", distinct.len());
    }
}
