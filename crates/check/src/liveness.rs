//! Fairness-aware liveness checking.
//!
//! A liveness property fails on a finite-state system iff some **fair
//! lasso** violates it: a reachable cycle on which every one of the
//! system's fairness requirements can be satisfied while the property
//! is violated. The search is the classic one:
//!
//! 1. restrict the state graph to the states/edges a violating cycle
//!    may use (this encodes the *negation* of the property);
//! 2. enumerate strongly connected components of the restriction
//!    (single nodes count — TLA behaviors may stutter forever);
//! 3. check that each fairness requirement is *satisfiable* inside the
//!    component: a `WF` needs an internal step of its action or a state
//!    where it is disabled; an `SF` needs an internal step or the
//!    absence of any enabled state — when an `SF` fails only because of
//!    enabled states, those states are removed and the search recurses
//!    on the sub-components (the standard Streett-condition
//!    decomposition);
//! 4. build the counterexample: shortest prefix, then a cycle visiting
//!    a witness for every fairness requirement.
//!
//! Every returned [`Counterexample`] is a lasso that can be replayed
//! against the trace semantics of `opentla-semantics` — the test suite
//! does exactly that.

use crate::budget::{Budget, ExhaustReason, Governed, Meter, Outcome};
use crate::{CheckError, Counterexample, StateGraph, System, Verdict};
use opentla_kernel::{Expr, Fairness, FairnessKind, StatePair};

/// Why the metered liveness core stopped: budget exhaustion (with a
/// count of pending work items, where cheaply known) or a hard error.
enum Stop {
    Exhausted { reason: ExhaustReason, pending: usize },
    Error(CheckError),
}

impl Stop {
    fn exhausted(reason: ExhaustReason) -> Self {
        Stop::Exhausted { reason, pending: 0 }
    }
}

impl From<CheckError> for Stop {
    fn from(e: CheckError) -> Self {
        Stop::Error(e)
    }
}

/// The liveness property to verify. `Expr`s are state predicates.
#[derive(Clone, Debug)]
pub enum LiveTarget {
    /// The system guarantees this fairness condition (typically an
    /// abstract `WF`/`SF` obligation after a refinement mapping).
    ///
    /// `enabled_with`, if given, is the state predicate to use as
    /// `Enabled ⟨A⟩_v` instead of the brute-force next-state search
    /// over the system's universe. This matters for refinement
    /// mappings: **`Enabled` does not commute with substitution** (the
    /// classic TLA caveat), so the enabledness of a mapped abstract
    /// action must be the *abstract* one — for guarded abstract actions
    /// that is "some guard holds and its update would change the
    /// subscript", mapped through the refinement — not what the
    /// concrete successors happen to realize. The `opentla::compose`
    /// engine supplies exactly that predicate. An over-approximation of
    /// the true enabledness keeps `Holds` verdicts sound (more
    /// violation candidates are searched); an under-approximation would
    /// not.
    Fair {
        /// The fairness condition to establish.
        fair: Fairness,
        /// Optional explicit enabledness predicate for the angle
        /// action.
        enabled_with: Option<Expr>,
    },
    /// `◇P`.
    Eventually(Expr),
    /// `□◇P`.
    AlwaysEventually(Expr),
    /// `◇□P`.
    EventuallyAlways(Expr),
    /// `P ↝ Q`.
    LeadsTo(Expr, Expr),
}

impl LiveTarget {
    /// A fairness target whose enabledness is decided by next-state
    /// search over the system's universe (right for unmapped,
    /// concrete-variable actions).
    pub fn fair(fair: Fairness) -> Self {
        LiveTarget::Fair {
            fair,
            enabled_with: None,
        }
    }

    /// A fairness target with an explicit enabledness predicate (see
    /// [`LiveTarget::Fair`] — required under refinement mappings).
    pub fn fair_with_enabled(fair: Fairness, enabled: Expr) -> Self {
        LiveTarget::Fair {
            fair,
            enabled_with: Some(enabled),
        }
    }
}

/// Per-fairness-requirement facts about the graph.
struct FairInfo {
    kind: FairnessKind,
    /// `angle[s][i]`: is the i-th edge of `s` an `⟨A⟩_v` step?
    angle: Vec<Vec<bool>>,
    /// Is `⟨A⟩_v` enabled in state `s`?
    enabled: Vec<bool>,
    /// Human-readable name for diagnostics.
    #[allow(dead_code)]
    name: String,
}

fn system_fair_infos(
    system: &System,
    graph: &StateGraph,
    meter: &mut Meter,
) -> Result<Vec<FairInfo>, Stop> {
    system
        .fairness()
        .iter()
        .map(|f| {
            let mut angle = Vec::with_capacity(graph.len());
            let mut enabled = vec![false; graph.len()];
            for (id, s) in graph.states().iter().enumerate() {
                let flags: Vec<bool> = graph
                    .edges(id)
                    .iter()
                    .map(|e| {
                        meter
                            .charge_transition()
                            .map_or(Ok(()), |r| Err(Stop::exhausted(r)))?;
                        Ok(f.action_ids.contains(&e.action)
                            && !s.agrees_with(graph.state(e.target), &f.sub))
                    })
                    .collect::<Result<_, Stop>>()?;
                enabled[id] = flags.iter().any(|b| *b);
                angle.push(flags);
            }
            let names: Vec<&str> = f
                .action_ids
                .iter()
                .map(|i| system.actions()[*i].name())
                .collect();
            Ok(FairInfo {
                kind: f.kind,
                angle,
                enabled,
                name: format!(
                    "{}({})",
                    match f.kind {
                        FairnessKind::Weak => "WF",
                        FairnessKind::Strong => "SF",
                    },
                    names.join(" ∨ ")
                ),
            })
        })
        .collect()
}

/// Facts about the target fairness condition (semantic, since the
/// action may be an abstract action under a refinement mapping).
fn target_fair_info(
    system: &System,
    graph: &StateGraph,
    fair: &Fairness,
    enabled_with: Option<&Expr>,
    meter: &mut Meter,
) -> Result<(Vec<Vec<bool>>, Vec<bool>), Stop> {
    let angle_expr = fair.angle_action();
    let mut angle = Vec::with_capacity(graph.len());
    let mut enabled = vec![false; graph.len()];
    for (id, s) in graph.states().iter().enumerate() {
        if let Some(reason) = meter.checkpoint() {
            return Err(Stop::Exhausted {
                reason,
                pending: graph.len() - id,
            });
        }
        let flags: Vec<bool> = graph
            .edges(id)
            .iter()
            .map(|e| {
                meter
                    .charge_transition()
                    .map_or(Ok(()), |r| Err(Stop::exhausted(r)))?;
                angle_expr
                    .holds_action(StatePair::new(s, graph.state(e.target)))
                    .map_err(|e| Stop::Error(e.into()))
            })
            .collect::<Result<_, Stop>>()?;
        angle.push(flags);
        enabled[id] = match enabled_with {
            Some(pred) => pred.holds_state(s).map_err(CheckError::from)?,
            None => system
                .universe()
                .enabled(&angle_expr, s)
                .map_err(CheckError::from)?,
        };
    }
    Ok((angle, enabled))
}

/// What the violating cycle must look like, beyond fairness.
struct Violation {
    /// Description for the counterexample.
    reason: String,
    /// States the cycle may visit.
    cycle_node_ok: Vec<bool>,
    /// Edges the cycle may take (`None` = all).
    cycle_edge_ok: Option<Vec<Vec<bool>>>,
    /// States the (post-`starts`) path may visit (`None` = all).
    path_node_ok: Option<Vec<bool>>,
    /// Where the violating suffix may begin (each must be reachable;
    /// the prefix up to it is unrestricted).
    starts: Vec<usize>,
    /// The cycle must contain a state from this set (`None` = no
    /// requirement).
    must_contain: Option<Vec<bool>>,
}

/// Checks a liveness property of the system.
///
/// # Errors
///
/// Propagates evaluation errors (e.g. a type error in a predicate or in
/// the target's action).
///
/// # Example
///
/// A counter reaches its bound only under weak fairness:
///
/// ```
/// use opentla_check::{
///     check_liveness, explore, ExploreOptions, GuardedAction, Init, LiveTarget,
///     System, SystemFairness,
/// };
/// use opentla_kernel::{Domain, Expr, Value, Vars};
///
/// # fn main() -> Result<(), opentla_check::CheckError> {
/// let mut vars = Vars::new();
/// let x = vars.declare("x", Domain::int_range(0, 2));
/// let incr = GuardedAction::new(
///     "incr",
///     Expr::var(x).lt(Expr::int(2)),
///     vec![(x, Expr::var(x).add(Expr::int(1)))],
/// );
/// let goal = LiveTarget::Eventually(Expr::var(x).eq(Expr::int(2)));
///
/// // Without fairness the system may stutter forever.
/// let lazy = System::new(vars.clone(), Init::new([(x, Value::Int(0))]), vec![incr.clone()]);
/// let graph = explore(&lazy, &ExploreOptions::default())?;
/// assert!(!check_liveness(&lazy, &graph, &goal)?.holds());
///
/// // WF(incr) forces progress.
/// let eager = System::new(vars, Init::new([(x, Value::Int(0))]), vec![incr])
///     .with_fairness(SystemFairness::weak(vec![0], vec![x]));
/// let graph = explore(&eager, &ExploreOptions::default())?;
/// assert!(check_liveness(&eager, &graph, &goal)?.holds());
/// # Ok(())
/// # }
/// ```
pub fn check_liveness(
    system: &System,
    graph: &StateGraph,
    target: &LiveTarget,
) -> Result<Verdict, CheckError> {
    let run = check_liveness_governed(system, graph, target, &Budget::unlimited())?;
    Ok(run
        .verdict
        .expect("an unlimited budget cannot be exhausted"))
}

/// Result of a budget-governed liveness check: the verdict when the
/// budget sufficed to decide it, plus the run's [`Outcome`].
#[derive(Clone, Debug)]
pub struct LivenessRun {
    /// `Some` iff the check ran to a decision within budget. A
    /// decision reached before exhaustion (e.g. a violation found
    /// early) is authoritative.
    pub verdict: Option<Verdict>,
    /// How the run ended. On exhaustion, `frontier_size` counts the
    /// pending work items (states or components not yet analyzed) at
    /// the point the budget ran out, where cheaply known.
    pub outcome: Outcome,
}

impl Governed for LivenessRun {
    fn exhaustion(&self) -> Option<&ExhaustReason> {
        self.outcome.exhaustion()
    }
}

/// Checks a liveness property under a resource [`Budget`].
///
/// The budget's transition limit meters edge-level work (fairness
/// tables, component search); the deadline and cancellation flag are
/// polled at loop heads. Exhaustion yields `verdict: None` with an
/// [`Outcome::Exhausted`] tag — never a hard error — so callers can
/// [`escalate`](crate::escalate) or report partial coverage.
///
/// # Errors
///
/// Propagates evaluation errors, as [`check_liveness`] does.
pub fn check_liveness_governed(
    system: &System,
    graph: &StateGraph,
    target: &LiveTarget,
    budget: &Budget,
) -> Result<LivenessRun, CheckError> {
    // Liveness on a reduced graph hits the *ignoring problem*: an ample
    // set may defer an action forever along a cycle, and symmetry edges
    // connect canonical representatives rather than genuine step
    // endpoints — fair-cycle detection over such a graph is unsound in
    // both directions. We refuse rather than fight it: re-explore with
    // `Reduction::none()` for liveness.
    if graph.is_reduced() {
        return Err(CheckError::Precondition {
            message: "liveness checking needs the full state graph; this graph \
                      was explored under a Reduction (re-explore with \
                      Reduction::none())"
                .to_string(),
        });
    }
    let _phase = crate::obs::PhaseGuard::enter(&budget.recorder, crate::obs::Phase::Liveness);
    let mut meter = Meter::start(budget);
    let decided = (|| -> Result<Verdict, Stop> {
        let violation = build_violation(system, graph, target, &mut meter)?;
        let fair_infos = system_fair_infos(system, graph, &mut meter)?;
        match find_violation(system, graph, &fair_infos, &violation, &mut meter)? {
            Some(cx) => Ok(Verdict::Violated(cx)),
            None => Ok(Verdict::Holds),
        }
    })();
    if let Ok(Verdict::Violated(cx)) = &decided {
        crate::obs::emit_counterexample(&budget.recorder, "liveness", cx);
    }
    match decided {
        Ok(verdict) => Ok(LivenessRun {
            verdict: Some(verdict),
            outcome: Outcome::Complete,
        }),
        Err(Stop::Exhausted { reason, pending }) => Ok(LivenessRun {
            verdict: None,
            outcome: Outcome::Exhausted {
                reason,
                frontier_size: pending,
                stats: graph.stats(),
                resume: None,
            },
        }),
        Err(Stop::Error(e)) => Err(e),
    }
}

fn eval_pred(graph: &StateGraph, p: &Expr) -> Result<Vec<bool>, CheckError> {
    graph
        .states()
        .iter()
        .map(|s| p.holds_state(s).map_err(CheckError::from))
        .collect()
}

fn build_violation(
    system: &System,
    graph: &StateGraph,
    target: &LiveTarget,
    meter: &mut Meter,
) -> Result<Violation, Stop> {
    let all = vec![true; graph.len()];
    Ok(match target {
        LiveTarget::Fair { fair, enabled_with } => {
            let (angle, enabled) =
                target_fair_info(system, graph, fair, enabled_with.as_ref(), meter)?;
            let not_angle: Vec<Vec<bool>> = angle
                .iter()
                .map(|row| row.iter().map(|b| !b).collect())
                .collect();
            match fair.kind {
                FairnessKind::Weak => Violation {
                    reason: "target WF violated: its action stays enabled but is never taken"
                        .into(),
                    cycle_node_ok: enabled,
                    cycle_edge_ok: Some(not_angle),
                    path_node_ok: None,
                    starts: graph.init().to_vec(),
                    must_contain: None,
                },
                FairnessKind::Strong => Violation {
                    reason:
                        "target SF violated: its action is enabled infinitely often but taken only finitely often"
                            .into(),
                    cycle_node_ok: all,
                    cycle_edge_ok: Some(not_angle),
                    path_node_ok: None,
                    starts: graph.init().to_vec(),
                    must_contain: Some(enabled),
                },
            }
        }
        LiveTarget::Eventually(p) => {
            let pv = eval_pred(graph, p)?;
            let not_p: Vec<bool> = pv.iter().map(|b| !b).collect();
            Violation {
                reason: format!("◇({}) violated", p.display(system.vars())),
                cycle_node_ok: not_p.clone(),
                cycle_edge_ok: None,
                path_node_ok: Some(not_p.clone()),
                starts: graph
                    .init()
                    .iter()
                    .copied()
                    .filter(|i| not_p[*i])
                    .collect(),
                must_contain: None,
            }
        }
        LiveTarget::AlwaysEventually(p) => {
            let pv = eval_pred(graph, p)?;
            let not_p: Vec<bool> = pv.iter().map(|b| !b).collect();
            Violation {
                reason: format!("□◇({}) violated", p.display(system.vars())),
                cycle_node_ok: not_p,
                cycle_edge_ok: None,
                path_node_ok: None,
                starts: graph.init().to_vec(),
                must_contain: None,
            }
        }
        LiveTarget::EventuallyAlways(p) => {
            let pv = eval_pred(graph, p)?;
            let not_p: Vec<bool> = pv.iter().map(|b| !b).collect();
            Violation {
                reason: format!("◇□({}) violated", p.display(system.vars())),
                cycle_node_ok: all,
                cycle_edge_ok: None,
                path_node_ok: None,
                starts: graph.init().to_vec(),
                must_contain: Some(not_p),
            }
        }
        LiveTarget::LeadsTo(p, q) => {
            let pv = eval_pred(graph, p)?;
            let qv = eval_pred(graph, q)?;
            let not_q: Vec<bool> = qv.iter().map(|b| !b).collect();
            let starts: Vec<usize> = (0..graph.len())
                .filter(|i| pv[*i] && not_q[*i])
                .collect();
            Violation {
                reason: format!(
                    "({}) ↝ ({}) violated",
                    p.display(system.vars()),
                    q.display(system.vars())
                ),
                cycle_node_ok: not_q.clone(),
                cycle_edge_ok: None,
                path_node_ok: Some(not_q),
                starts,
                must_contain: None,
            }
        }
    })
}

/// A witness that a fairness requirement is satisfied by the cycle.
#[derive(Clone, Copy, Debug)]
enum Waypoint {
    /// Traverse this edge (source node, index into its edge list).
    Edge(usize, usize),
    /// Visit this node.
    Node(usize),
}

fn find_violation(
    system: &System,
    graph: &StateGraph,
    fair_infos: &[FairInfo],
    v: &Violation,
    meter: &mut Meter,
) -> Result<Option<Counterexample>, Stop> {
    if v.starts.is_empty() {
        return Ok(None);
    }
    let edge_ok = |s: usize, i: usize| -> bool {
        v.cycle_node_ok[s]
            && v.cycle_node_ok[graph.edges(s)[i].target]
            && v.cycle_edge_ok.as_ref().is_none_or(|rows| rows[s][i])
    };
    // SCCs of the restricted graph.
    let sccs = tarjan_sccs(graph, &v.cycle_node_ok, &edge_ok, meter)?;
    // Which states can begin the violating suffix (path constraint).
    let path_region = reachable_from(graph, &v.starts, v.path_node_ok.as_deref());
    for (done, scc) in sccs.iter().enumerate() {
        if let Some(reason) = meter.checkpoint() {
            return Err(Stop::Exhausted {
                reason,
                pending: sccs.len() - done,
            });
        }
        if let Some((nodes, waypoints)) =
            fair_subcomponent(graph, fair_infos, &edge_ok, scc, v.must_contain.as_deref(), meter)?
        {
            // Entry: a node of the component reachable under the path
            // constraint.
            let Some(&entry) = nodes.iter().find(|n| path_region[**n]) else {
                continue;
            };
            return Ok(Some(build_counterexample(
                system, graph, v, &nodes, &waypoints, entry, &edge_ok,
            )));
        }
    }
    Ok(None)
}

/// A fair node set plus one waypoint per fairness requirement that
/// needs an explicit witness.
type FairWitness = (Vec<usize>, Vec<Waypoint>);

/// Depth-first search for a strongly connected node set (within `scc`)
/// in which every fairness requirement is satisfiable and the
/// `must_contain` requirement holds. Returns the node set plus one
/// waypoint per fairness requirement that needs an explicit witness.
fn fair_subcomponent(
    graph: &StateGraph,
    fair_infos: &[FairInfo],
    edge_ok: &dyn Fn(usize, usize) -> bool,
    scc: &[usize],
    must_contain: Option<&[bool]>,
    meter: &mut Meter,
) -> Result<Option<FairWitness>, Stop> {
    if let Some(reason) = meter.checkpoint() {
        return Err(Stop::exhausted(reason));
    }
    if let Some(req) = must_contain {
        if !scc.iter().any(|n| req[*n]) {
            return Ok(None);
        }
    }
    let in_scc = |n: usize| scc.contains(&n);
    let mut waypoints = Vec::new();
    if let Some(req) = must_contain {
        let node = scc.iter().copied().find(|n| req[*n]).expect("checked");
        waypoints.push(Waypoint::Node(node));
    }
    for info in fair_infos {
        // An internal ⟨A⟩_v edge satisfies both WF and SF.
        let mut edge_witness = None;
        'search: for &s in scc {
            for (i, e) in graph.edges(s).iter().enumerate() {
                if let Some(reason) = meter.charge_transition() {
                    return Err(Stop::exhausted(reason));
                }
                if info.angle[s][i] && edge_ok(s, i) && in_scc(e.target) {
                    edge_witness = Some(Waypoint::Edge(s, i));
                    break 'search;
                }
            }
        }
        if let Some(w) = edge_witness {
            waypoints.push(w);
            continue;
        }
        match info.kind {
            FairnessKind::Weak => {
                // A state where the action is disabled, visited
                // infinitely often, also satisfies WF.
                match scc.iter().copied().find(|n| !info.enabled[*n]) {
                    Some(n) => waypoints.push(Waypoint::Node(n)),
                    None => return Ok(None), // WF unsatisfiable here and in any subset.
                }
            }
            FairnessKind::Strong => {
                // SF needs *no* enabled state in the cycle. If some are
                // enabled, remove them and recurse on the
                // sub-components (Streett decomposition).
                if scc.iter().all(|n| !info.enabled[*n]) {
                    continue; // Satisfied without a waypoint.
                }
                let survivors: Vec<usize> = scc
                    .iter()
                    .copied()
                    .filter(|n| !info.enabled[*n])
                    .collect();
                if survivors.is_empty() {
                    return Ok(None);
                }
                let mut node_ok = vec![false; graph.len()];
                for &n in &survivors {
                    node_ok[n] = true;
                }
                let sub_edge_ok =
                    |s: usize, i: usize| edge_ok(s, i) && node_ok[graph.edges(s)[i].target];
                for sub in tarjan_sccs(graph, &node_ok, &sub_edge_ok, meter)? {
                    if let Some(found) = fair_subcomponent(
                        graph,
                        fair_infos,
                        edge_ok,
                        &sub,
                        must_contain,
                        meter,
                    )? {
                        return Ok(Some(found));
                    }
                }
                return Ok(None);
            }
        }
    }
    Ok(Some((scc.to_vec(), waypoints)))
}

/// Iterative Tarjan over the restricted graph. Single nodes form
/// components of their own (TLA behaviors may stutter forever, so every
/// node carries an implicit self-loop).
fn tarjan_sccs(
    graph: &StateGraph,
    node_ok: &[bool],
    edge_ok: &dyn Fn(usize, usize) -> bool,
    meter: &mut Meter,
) -> Result<Vec<Vec<usize>>, Stop> {
    let n = graph.len();
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut sccs: Vec<Vec<usize>> = Vec::new();

    // Explicit DFS stack: (node, next edge position).
    for root in 0..n {
        if !node_ok[root] || index[root] != usize::MAX {
            continue;
        }
        if let Some(reason) = meter.checkpoint() {
            return Err(Stop::exhausted(reason));
        }
        let mut dfs: Vec<(usize, usize)> = vec![(root, 0)];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;
        while let Some((node, pos)) = dfs.last_mut() {
            let node = *node;
            let edges = graph.edges(node);
            if *pos < edges.len() {
                let i = *pos;
                *pos += 1;
                if let Some(reason) = meter.charge_transition() {
                    return Err(Stop::exhausted(reason));
                }
                if !edge_ok(node, i) {
                    continue;
                }
                let t = edges[i].target;
                if !node_ok[t] {
                    continue;
                }
                if index[t] == usize::MAX {
                    index[t] = next_index;
                    low[t] = next_index;
                    next_index += 1;
                    stack.push(t);
                    on_stack[t] = true;
                    dfs.push((t, 0));
                } else if on_stack[t] {
                    low[node] = low[node].min(index[t]);
                }
            } else {
                dfs.pop();
                if let Some((parent, _)) = dfs.last() {
                    low[*parent] = low[*parent].min(low[node]);
                }
                if low[node] == index[node] {
                    let mut comp = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        comp.push(w);
                        if w == node {
                            break;
                        }
                    }
                    comp.sort_unstable();
                    sccs.push(comp);
                }
            }
        }
    }
    Ok(sccs)
}

/// States reachable from `starts` through states satisfying
/// `node_ok` (`None` = all). Start states must satisfy it themselves.
fn reachable_from(
    graph: &StateGraph,
    starts: &[usize],
    node_ok: Option<&[bool]>,
) -> Vec<bool> {
    let ok = |n: usize| node_ok.is_none_or(|f| f[n]);
    let mut seen = vec![false; graph.len()];
    let mut queue: std::collections::VecDeque<usize> = starts
        .iter()
        .copied()
        .filter(|n| ok(*n))
        .inspect(|n| seen[*n] = true)
        .collect();
    while let Some(s) = queue.pop_front() {
        for e in graph.edges(s) {
            if ok(e.target) && !seen[e.target] {
                seen[e.target] = true;
                queue.push_back(e.target);
            }
        }
    }
    seen
}

/// BFS path inside a filtered graph, returning `(edge index, node)`
/// hops after `from`.
fn path_filtered(
    graph: &StateGraph,
    from: usize,
    goal: &dyn Fn(usize) -> bool,
    node_ok: &dyn Fn(usize) -> bool,
    edge_ok: &dyn Fn(usize, usize) -> bool,
) -> Option<Vec<(usize, usize)>> {
    if goal(from) {
        return Some(Vec::new());
    }
    let mut prev: std::collections::HashMap<usize, (usize, usize)> =
        std::collections::HashMap::new();
    let mut queue = std::collections::VecDeque::from([from]);
    while let Some(s) = queue.pop_front() {
        for (i, e) in graph.edges(s).iter().enumerate() {
            if !edge_ok(s, i) || !node_ok(e.target) {
                continue;
            }
            if e.target == from || prev.contains_key(&e.target) {
                continue;
            }
            prev.insert(e.target, (s, i));
            if goal(e.target) {
                let mut rev = Vec::new();
                let mut cur = e.target;
                while cur != from {
                    let (p, i) = prev[&cur];
                    rev.push((i, cur));
                    cur = p;
                }
                rev.reverse();
                return Some(rev);
            }
            queue.push_back(e.target);
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn build_counterexample(
    system: &System,
    graph: &StateGraph,
    v: &Violation,
    nodes: &[usize],
    waypoints: &[Waypoint],
    entry: usize,
    edge_ok: &dyn Fn(usize, usize) -> bool,
) -> Counterexample {
    let action_name =
        |i: usize| -> Option<String> { Some(system.actions()[i].name().to_string()) };
    // Prefix: unrestricted shortest trace to the suffix start, then a
    // path (under the path constraint) from the start to the entry.
    let start = *v
        .starts
        .iter()
        .find(|s| {
            let region = reachable_from(graph, &[**s], v.path_node_ok.as_deref());
            region[entry]
        })
        .expect("entry was reachable from some start");
    let mut ids: Vec<(Option<usize>, usize)> = graph.trace_to(start);
    let path_ok = |n: usize| v.path_node_ok.as_ref().is_none_or(|f| f[n]);
    let to_entry = path_filtered(
        graph,
        start,
        &|n| n == entry,
        &path_ok,
        &|_, _| true,
    )
    .expect("reachability established");
    ids.extend(to_entry.iter().map(|(i, n)| (Some(*i), *n)));

    let loop_start = ids.len() - 1; // Index of `entry` in the trace.

    // Cycle: visit every waypoint inside the component, then return.
    let in_nodes = |n: usize| nodes.contains(&n);
    let comp_edge_ok = |s: usize, i: usize| edge_ok(s, i) && in_nodes(graph.edges(s)[i].target);
    let mut cur = entry;
    let append_path_to = |goal: usize, ids: &mut Vec<(Option<usize>, usize)>, cur: &mut usize| {
        let hops = path_filtered(graph, *cur, &|n| n == goal, &in_nodes, &comp_edge_ok)
            .expect("component is strongly connected");
        ids.extend(hops.iter().map(|(i, n)| (Some(*i), *n)));
        *cur = goal;
    };
    for wp in waypoints {
        match wp {
            Waypoint::Node(n) => append_path_to(*n, &mut ids, &mut cur),
            Waypoint::Edge(s, i) => {
                append_path_to(*s, &mut ids, &mut cur);
                let e = graph.edges(*s)[*i];
                ids.push((Some(e.action), e.target));
                cur = e.target;
            }
        }
    }
    if cur != entry {
        append_path_to(entry, &mut ids, &mut cur);
        // The walk re-appended `entry`; drop it — the lasso wraps there.
        ids.pop();
    }
    let states = ids.iter().map(|(_, n)| graph.state(*n).clone()).collect();
    let actions = ids
        .iter()
        .map(|(a, _)| a.and_then(action_name))
        .collect();
    Counterexample::new(v.reason.clone(), states, actions, Some(loop_start))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{explore, ExploreOptions, GuardedAction, Init, SystemFairness};
    use opentla_kernel::{Domain, Formula, Value, VarId, Vars};
    use opentla_semantics::{eval, EvalCtx};

    /// x counts 0..=3; `incr` increments, `reset` jumps back to 0.
    fn counter(fair: bool) -> (System, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, 3));
        let incr = GuardedAction::new(
            "incr",
            Expr::var(x).lt(Expr::int(3)),
            vec![(x, Expr::var(x).add(Expr::int(1)))],
        );
        let mut sys = System::new(vars, Init::new([(x, Value::Int(0))]), vec![incr]);
        if fair {
            let frame = sys.frame();
            sys = sys.with_fairness(SystemFairness::weak(vec![0], frame));
        }
        (sys, x)
    }

    fn confirm_semantically(system: &System, cx: &Counterexample, target: &Formula) {
        // The counterexample must be a real fair behavior of the system
        // that violates the target.
        let lasso = cx.to_lasso();
        let ctx = EvalCtx::with_universe(system.universe().clone());
        let spec = system.formula();
        assert!(
            eval(&spec, &lasso, &ctx).unwrap(),
            "counterexample must satisfy the system spec (incl. fairness)"
        );
        assert!(
            !eval(target, &lasso, &ctx).unwrap(),
            "counterexample must violate the target"
        );
    }

    #[test]
    fn eventually_fails_without_fairness() {
        let (sys, x) = counter(false);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let p = Expr::var(x).eq(Expr::int(3));
        let verdict =
            check_liveness(&sys, &graph, &LiveTarget::Eventually(p.clone())).unwrap();
        let cx = verdict.counterexample().expect("stuttering violates ◇");
        confirm_semantically(&sys, cx, &Formula::pred(p).eventually());
    }

    #[test]
    fn governed_liveness_reports_exhaustion_not_error() {
        use crate::Budget;
        let (sys, x) = counter(true);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let p = Expr::var(x).eq(Expr::int(3));
        let target = LiveTarget::Eventually(p);
        // A transition budget of 1 cannot even build the fairness
        // tables: the verdict is undecided, the outcome explains why.
        let run = check_liveness_governed(
            &sys,
            &graph,
            &target,
            &Budget::default().transitions(1),
        )
        .unwrap();
        assert!(run.verdict.is_none());
        assert!(matches!(
            run.outcome.exhaustion(),
            Some(crate::ExhaustReason::TransitionLimit { limit: 1 })
        ));
        // Escalating geometrically reaches a decision.
        let run = crate::escalate(&Budget::default().transitions(1), 8, 4, |b| {
            check_liveness_governed(&sys, &graph, &target, b)
        })
        .unwrap();
        assert!(run.verdict.expect("escalated budget decides").holds());
    }

    #[test]
    fn governed_liveness_honors_cancellation() {
        use crate::Budget;
        let (sys, x) = counter(false);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let budget = Budget::default();
        budget.request_cancel();
        let run = check_liveness_governed(
            &sys,
            &graph,
            &LiveTarget::Eventually(Expr::var(x).eq(Expr::int(3))),
            &budget,
        )
        .unwrap();
        assert!(run.verdict.is_none());
        assert!(matches!(
            run.outcome.exhaustion(),
            Some(crate::ExhaustReason::Cancelled)
        ));
    }

    #[test]
    fn eventually_holds_with_fairness() {
        let (sys, x) = counter(true);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let p = Expr::var(x).eq(Expr::int(3));
        assert!(check_liveness(&sys, &graph, &LiveTarget::Eventually(p))
            .unwrap()
            .holds());
    }

    #[test]
    fn leads_to() {
        let (sys, x) = counter(true);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let p = Expr::var(x).eq(Expr::int(1));
        let q = Expr::var(x).eq(Expr::int(3));
        assert!(
            check_liveness(&sys, &graph, &LiveTarget::LeadsTo(p.clone(), q.clone()))
                .unwrap()
                .holds()
        );
        // Reverse direction is violated: x = 3 is terminal (only
        // stuttering remains), so ◇(x = 1) fails from there.
        let verdict =
            check_liveness(&sys, &graph, &LiveTarget::LeadsTo(q.clone(), p.clone()))
                .unwrap();
        let cx = verdict.counterexample().expect("3 never leads to 1");
        confirm_semantically(
            &sys,
            cx,
            &Formula::pred(q).leads_to(Formula::pred(p)),
        );
    }

    #[test]
    fn eventually_always_and_always_eventually() {
        let (sys, x) = counter(true);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        // ◇□(x = 3): holds — fairness drives x to 3, which is terminal.
        let p = Expr::var(x).eq(Expr::int(3));
        assert!(
            check_liveness(&sys, &graph, &LiveTarget::EventuallyAlways(p.clone()))
                .unwrap()
                .holds()
        );
        // □◇(x = 0): fails — x never returns to 0.
        let z = Expr::var(x).eq(Expr::int(0));
        let verdict =
            check_liveness(&sys, &graph, &LiveTarget::AlwaysEventually(z.clone()))
                .unwrap();
        let cx = verdict.counterexample().expect("x leaves 0 forever");
        confirm_semantically(
            &sys,
            cx,
            &Formula::pred(z).eventually().always(),
        );
    }

    /// Toggle system with two actions; weak fairness on one of them.
    fn toggle_pair() -> (System, VarId, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let y = vars.declare("y", Domain::bits());
        let set_x = GuardedAction::new(
            "set_x",
            Expr::var(x).eq(Expr::int(0)),
            vec![(x, Expr::int(1))],
        );
        let toggle_y = GuardedAction::new(
            "toggle_y",
            Expr::bool(true),
            vec![(y, Expr::int(1).sub(Expr::var(y)))],
        );
        let sys = System::new(
            vars,
            Init::new([(x, Value::Int(0)), (y, Value::Int(0))]),
            vec![set_x, toggle_y],
        );
        (sys, x, y)
    }

    #[test]
    fn target_wf_obligation() {
        // Without system fairness, the target WF(set_x) is violated by
        // toggling y forever.
        let (sys, x, _) = toggle_pair();
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let frame = sys.frame();
        let set_x_expr = sys.actions()[0].action_expr(&frame);
        let target = Fairness::weak(set_x_expr.clone(), vec![x]);
        let verdict =
            check_liveness(&sys, &graph, &LiveTarget::fair(target.clone())).unwrap();
        let cx = verdict.counterexample().expect("y-toggling starves set_x");
        confirm_semantically(&sys, cx, &Formula::Fair(target.clone()));

        // With WF on set_x as a system requirement, the obligation
        // holds.
        let sys = sys.with_fairness(SystemFairness::weak(vec![0], vec![x]));
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert!(check_liveness(&sys, &graph, &LiveTarget::fair(target))
            .unwrap()
            .holds());
    }

    #[test]
    fn strong_fairness_distinguished() {
        // Action `grab` is enabled only when y = 0, and y toggles
        // forever: enabled infinitely often, disabled infinitely often.
        // WF(grab) is satisfied by the toggling run; SF(grab) is not.
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let y = vars.declare("y", Domain::bits());
        let grab = GuardedAction::new(
            "grab",
            Expr::all([Expr::var(y).eq(Expr::int(0)), Expr::var(x).eq(Expr::int(0))]),
            vec![(x, Expr::int(1))],
        );
        let toggle_y = GuardedAction::new(
            "toggle_y",
            Expr::bool(true),
            vec![(y, Expr::int(1).sub(Expr::var(y)))],
        );
        let sys = System::new(
            vars,
            Init::new([(x, Value::Int(0)), (y, Value::Int(0))]),
            vec![grab, toggle_y],
        );
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let frame = sys.frame();
        let grab_expr = sys.actions()[0].action_expr(&frame);

        let wf_target = Fairness::weak(grab_expr.clone(), vec![x]);
        let sf_target = Fairness::strong(grab_expr.clone(), vec![x]);
        // Neither obligation holds for the bare system (stuttering or
        // staying at y=0 starves grab while it is enabled).
        assert!(!check_liveness(&sys, &graph, &LiveTarget::fair(wf_target.clone()))
            .unwrap()
            .holds());
        // Under system WF(toggle_y) + WF(grab): grab can still starve?
        // No: WF(grab) forces it whenever continuously enabled; but
        // toggling makes it non-continuously enabled, so WF(grab) is
        // satisfiable without firing grab — SF target must still fail.
        let sys = sys
            .with_fairness(SystemFairness::weak(vec![1], vec![y]))
            .with_fairness(SystemFairness::weak(vec![0], vec![x]));
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let wf_verdict =
            check_liveness(&sys, &graph, &LiveTarget::fair(wf_target.clone())).unwrap();
        assert!(wf_verdict.holds(), "WF target holds under system WF");
        let sf_verdict =
            check_liveness(&sys, &graph, &LiveTarget::fair(sf_target.clone())).unwrap();
        let cx = sf_verdict
            .counterexample()
            .expect("SF target fails: toggling starves grab fairly");
        confirm_semantically(&sys, cx, &Formula::Fair(sf_target));
    }

    #[test]
    fn system_sf_makes_target_hold() {
        // Same system, but now the *system* promises SF(grab) and
        // WF(toggle_y): toggling keeps grab enabled infinitely often,
        // SF excludes starving it, so ◇(x = 1) holds. (SF(grab) alone
        // would not suffice: the system could park at y = 1, where grab
        // is disabled, satisfying SF vacuously.)
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let y = vars.declare("y", Domain::bits());
        let grab = GuardedAction::new(
            "grab",
            Expr::all([Expr::var(y).eq(Expr::int(0)), Expr::var(x).eq(Expr::int(0))]),
            vec![(x, Expr::int(1))],
        );
        let toggle_y = GuardedAction::new(
            "toggle_y",
            Expr::bool(true),
            vec![(y, Expr::int(1).sub(Expr::var(y)))],
        );
        let sys = System::new(
            vars,
            Init::new([(x, Value::Int(0)), (y, Value::Int(0))]),
            vec![grab, toggle_y],
        )
        .with_fairness(SystemFairness::strong(vec![0], vec![x]))
        .with_fairness(SystemFairness::weak(vec![1], vec![y]));
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let p = Expr::var(x).eq(Expr::int(1));
        assert!(
            check_liveness(&sys, &graph, &LiveTarget::Eventually(p.clone()))
                .unwrap()
                .holds(),
            "SF(grab) + WF(toggle_y) force grab"
        );
        // Under only WF(grab) it fails (the Streett decomposition must
        // find the toggling sub-component where grab is disabled —
        // wait, WF: the toggling cycle satisfies WF(grab) because grab
        // is disabled at y=1 states infinitely often).
        let sys2 = {
            let mut vars = Vars::new();
            let x = vars.declare("x", Domain::bits());
            let y = vars.declare("y", Domain::bits());
            let grab = GuardedAction::new(
                "grab",
                Expr::all([
                    Expr::var(y).eq(Expr::int(0)),
                    Expr::var(x).eq(Expr::int(0)),
                ]),
                vec![(x, Expr::int(1))],
            );
            let toggle_y = GuardedAction::new(
                "toggle_y",
                Expr::bool(true),
                vec![(y, Expr::int(1).sub(Expr::var(y)))],
            );
            System::new(
                vars,
                Init::new([(x, Value::Int(0)), (y, Value::Int(0))]),
                vec![grab, toggle_y],
            )
            .with_fairness(SystemFairness::weak(vec![0], vec![x]))
            .with_fairness(SystemFairness::weak(vec![1], vec![y]))
        };
        let graph2 = explore(&sys2, &ExploreOptions::default()).unwrap();
        let verdict =
            check_liveness(&sys2, &graph2, &LiveTarget::Eventually(p)).unwrap();
        assert!(!verdict.holds(), "WF(grab) is too weak");
    }

    #[test]
    fn streett_decomposition_for_system_sf() {
        // spin cycles y through 0, 1, 2; mark is enabled only at y = 2
        // and sets x. The system promises SF(mark).
        fn make(with_spin_wf: bool) -> System {
            let mut vars = Vars::new();
            let x = vars.declare("x", Domain::bits());
            let y = vars.declare("y", Domain::int_range(0, 2));
            let spin = GuardedAction::new(
                "spin",
                Expr::bool(true),
                vec![(
                    y,
                    Expr::var(y)
                        .eq(Expr::int(2))
                        .ite(Expr::int(0), Expr::var(y).add(Expr::int(1))),
                )],
            );
            let mark = GuardedAction::new(
                "mark",
                Expr::all([
                    Expr::var(y).eq(Expr::int(2)),
                    Expr::var(x).eq(Expr::int(0)),
                ]),
                vec![(x, Expr::int(1))],
            );
            let mut sys = System::new(
                vars,
                Init::new([(x, Value::Int(0)), (y, Value::Int(0))]),
                vec![spin, mark],
            )
            .with_fairness(SystemFairness::strong(vec![1], vec![x]));
            if with_spin_wf {
                sys = sys.with_fairness(SystemFairness::weak(vec![0], vec![y]));
            }
            sys
        }
        let x_of = |sys: &System| sys.vars().find("x").unwrap();

        // With SF(mark) alone, the system may loop below y = 2 (where
        // mark stays disabled), so ◇(x = 1) fails. Finding this
        // violation requires the Streett decomposition: the candidate
        // component contains y = 2 states where mark is enabled, and
        // they must be carved out.
        let sys = make(false);
        let p = Expr::var(x_of(&sys)).eq(Expr::int(1));
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        let verdict =
            check_liveness(&sys, &graph, &LiveTarget::Eventually(p.clone())).unwrap();
        let cx = verdict
            .counterexample()
            .expect("looping below y=2 keeps mark disabled");
        confirm_semantically(&sys, cx, &Formula::pred(p.clone()).eventually());

        // Adding WF(spin) forces y to keep cycling, so mark is enabled
        // infinitely often and SF(mark) forces it: ◇(x = 1) holds.
        let sys = make(true);
        let graph = explore(&sys, &ExploreOptions::default()).unwrap();
        assert!(check_liveness(&sys, &graph, &LiveTarget::Eventually(p))
            .unwrap()
            .holds());
    }
}
