//! Transition systems in guarded-command form.

use crate::CheckError;
use opentla_kernel::{
    unchanged, Expr, Fairness, FairnessKind, Formula, State, Value, VarId, Vars,
};
use opentla_semantics::Universe;

/// One atomic action: a guard (a state predicate) plus a deterministic
/// update of a subset of the variables.
///
/// Nondeterminism is expressed by *having several actions* — a
/// parameterized action like the paper's `Put` (send an arbitrary
/// value) expands into one ground action per parameter value; see
/// [`GuardedAction::family`].
#[derive(Clone, Debug)]
pub struct GuardedAction {
    name: String,
    guard: Expr,
    updates: Vec<(VarId, Expr)>,
}

impl GuardedAction {
    /// Builds an action from its name, guard, and updates. Variables
    /// not listed in `updates` are left unchanged by the action.
    ///
    /// # Panics
    ///
    /// Panics if the guard or any update expression contains primed
    /// variables, or if a variable is updated twice — all of these are
    /// malformed specifications.
    pub fn new(
        name: impl Into<String>,
        guard: Expr,
        updates: Vec<(VarId, Expr)>,
    ) -> Self {
        let name = name.into();
        assert!(
            guard.is_state_fn(),
            "guard of action {name} contains primed variables"
        );
        for (i, (v, e)) in updates.iter().enumerate() {
            assert!(
                e.is_state_fn(),
                "update of action {name} contains primed variables"
            );
            assert!(
                !updates[..i].iter().any(|(w, _)| w == v),
                "action {name} updates variable #{} twice",
                v.index()
            );
        }
        GuardedAction {
            name,
            guard,
            updates,
        }
    }

    /// Expands a parameterized action into ground actions, one per
    /// value: `make(v)` receives each value of `values`.
    pub fn family(
        name: impl AsRef<str>,
        values: impl IntoIterator<Item = Value>,
        mut make: impl FnMut(&Value) -> (Expr, Vec<(VarId, Expr)>),
    ) -> Vec<GuardedAction> {
        values
            .into_iter()
            .map(|v| {
                let (guard, updates) = make(&v);
                GuardedAction::new(format!("{}({})", name.as_ref(), v), guard, updates)
            })
            .collect()
    }

    /// The action's name (diagnostics only).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The guard predicate.
    pub fn guard(&self) -> &Expr {
        &self.guard
    }

    /// The updates `(variable, new-value expression)`.
    pub fn updates(&self) -> &[(VarId, Expr)] {
        &self.updates
    }

    /// The variables this action may change.
    pub fn touched(&self) -> impl Iterator<Item = VarId> + '_ {
        self.updates.iter().map(|(v, _)| *v)
    }

    /// Fires the action in state `s`, returning the successor state if
    /// the guard holds and all updates stay within their domains.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors; reports
    /// [`CheckError::OutOfDomain`] if an update leaves the variable's
    /// domain.
    pub fn fire(&self, s: &State, vars: &Vars) -> Result<Option<State>, CheckError> {
        if !self.guard.holds_state(s)? {
            return Ok(None);
        }
        let mut assignments = Vec::with_capacity(self.updates.len());
        for (v, e) in &self.updates {
            let value = e.eval_state(s)?;
            if !vars.domain(*v).contains(&value) {
                return Err(CheckError::OutOfDomain {
                    action: self.name.clone(),
                    var: *v,
                    value,
                });
            }
            assignments.push((*v, value));
        }
        Ok(Some(s.with(&assignments)))
    }

    /// The action as a TLA action expression:
    /// `guard ∧ ∧(v' = e) ∧ UNCHANGED ⟨rest of frame⟩`.
    ///
    /// `frame` is the tuple of all variables owned by the enclosing
    /// system; unlisted frame variables are constrained to stutter,
    /// which matches [`GuardedAction::fire`].
    pub fn action_expr(&self, frame: &[VarId]) -> Expr {
        let mut conjuncts = vec![self.guard.clone()];
        for (v, e) in &self.updates {
            conjuncts.push(Expr::prime(*v).eq(e.clone()));
        }
        let untouched: Vec<VarId> = frame
            .iter()
            .copied()
            .filter(|v| !self.updates.iter().any(|(w, _)| w == v))
            .collect();
        conjuncts.push(unchanged(&untouched));
        Expr::all(conjuncts)
    }
}

/// A fairness requirement over a subset of a system's actions:
/// `WF_sub(A_{i1} ∨ … ∨ A_{im})` or the `SF` analogue.
#[derive(Clone, Debug)]
pub struct SystemFairness {
    /// Weak or strong.
    pub kind: FairnessKind,
    /// Indices into the system's action list.
    pub action_ids: Vec<usize>,
    /// The subscript tuple.
    pub sub: Vec<VarId>,
}

impl SystemFairness {
    /// Weak fairness of the given actions.
    pub fn weak(action_ids: Vec<usize>, sub: Vec<VarId>) -> Self {
        SystemFairness {
            kind: FairnessKind::Weak,
            action_ids,
            sub,
        }
    }

    /// Strong fairness of the given actions.
    pub fn strong(action_ids: Vec<usize>, sub: Vec<VarId>) -> Self {
        SystemFairness {
            kind: FairnessKind::Strong,
            action_ids,
            sub,
        }
    }
}

/// An initial-state specification: some variables pinned to fixed
/// values, the rest ranging over their domains, optionally filtered by
/// a constraint predicate.
///
/// This representation keeps initial-state enumeration proportional to
/// the product of the *free* variables' domains only.
#[derive(Clone, Debug, Default)]
pub struct Init {
    fixed: Vec<(VarId, Value)>,
    constraint: Option<Expr>,
}

impl Init {
    /// Pins the listed variables; all others range over their domains.
    pub fn new(fixed: impl IntoIterator<Item = (VarId, Value)>) -> Self {
        Init {
            fixed: fixed.into_iter().collect(),
            constraint: None,
        }
    }

    /// Adds a filtering predicate over the initial states.
    #[must_use]
    pub fn with_constraint(mut self, constraint: Expr) -> Self {
        self.constraint = Some(match self.constraint.take() {
            None => constraint,
            Some(c) => c.and(constraint),
        });
        self
    }

    /// Merges two initial specifications (used when composing closed
    /// systems from components).
    ///
    /// # Panics
    ///
    /// Panics if the two specifications pin the same variable to
    /// different values.
    #[must_use]
    pub fn merge(mut self, other: &Init) -> Self {
        for (v, val) in &other.fixed {
            match self.fixed.iter().find(|(w, _)| w == v) {
                Some((_, existing)) => assert_eq!(
                    existing,
                    val,
                    "conflicting initial values for variable #{}",
                    v.index()
                ),
                None => self.fixed.push((*v, val.clone())),
            }
        }
        if let Some(c) = &other.constraint {
            self = self.with_constraint(c.clone());
        }
        self
    }

    /// The pinned variables.
    pub fn fixed(&self) -> &[(VarId, Value)] {
        &self.fixed
    }

    /// The filtering constraint, if any.
    pub fn constraint(&self) -> Option<&Expr> {
        self.constraint.as_ref()
    }

    /// The initial condition as a state predicate.
    pub fn as_pred(&self) -> Expr {
        let mut conjuncts: Vec<Expr> = self
            .fixed
            .iter()
            .map(|(v, val)| Expr::var(*v).eq(Expr::con(val.clone())))
            .collect();
        if let Some(c) = &self.constraint {
            conjuncts.push(c.clone());
        }
        Expr::all(conjuncts)
    }

    /// Enumerates the initial states over a universe.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors from the constraint.
    pub fn states(&self, universe: &Universe) -> Result<Vec<State>, CheckError> {
        let vars = universe.vars();
        let free: Vec<VarId> = vars
            .iter()
            .filter(|v| !self.fixed.iter().any(|(w, _)| w == v))
            .collect();
        // Base state: fixed values, first domain value elsewhere.
        let values: Vec<Value> = vars
            .iter()
            .map(|v| {
                self.fixed
                    .iter()
                    .find(|(w, _)| *w == v)
                    .map(|(_, val)| val.clone())
                    .unwrap_or_else(|| vars.domain(v).values()[0].clone())
            })
            .collect();
        let base = State::new(values);
        let mut out = Vec::new();
        for s in universe.variants(&base, &free) {
            if match &self.constraint {
                None => true,
                Some(c) => c.holds_state(&s)?,
            } {
                out.push(s);
            }
        }
        Ok(out)
    }
}

/// A transition system: a finite universe, initial states, guarded
/// actions, and fairness requirements.
///
/// The next-state relation is the disjunction of the actions; every
/// step fires exactly one action (interleaving), and stuttering is
/// implicitly allowed, as everywhere in TLA.
#[derive(Clone, Debug)]
pub struct System {
    universe: Universe,
    init: Init,
    actions: Vec<GuardedAction>,
    fairness: Vec<SystemFairness>,
}

impl System {
    /// Builds a system over the full registry of `vars`.
    pub fn new(vars: Vars, init: Init, actions: Vec<GuardedAction>) -> Self {
        System {
            universe: Universe::new(vars),
            init,
            actions,
            fairness: Vec::new(),
        }
    }

    /// Adds a fairness requirement.
    ///
    /// # Panics
    ///
    /// Panics if an action index is out of range.
    #[must_use]
    pub fn with_fairness(mut self, fairness: SystemFairness) -> Self {
        for id in &fairness.action_ids {
            assert!(
                *id < self.actions.len(),
                "fairness refers to action index {id} out of {}",
                self.actions.len()
            );
        }
        self.fairness.push(fairness);
        self
    }

    /// The universe of states.
    pub fn universe(&self) -> &Universe {
        &self.universe
    }

    /// The variable registry.
    pub fn vars(&self) -> &Vars {
        self.universe.vars()
    }

    /// The initial-state specification.
    pub fn init(&self) -> &Init {
        &self.init
    }

    /// The actions.
    pub fn actions(&self) -> &[GuardedAction] {
        &self.actions
    }

    /// The fairness requirements.
    pub fn fairness(&self) -> &[SystemFairness] {
        &self.fairness
    }

    /// All variables, as the frame tuple for [`GuardedAction::action_expr`].
    pub fn frame(&self) -> Vec<VarId> {
        self.vars().iter().collect()
    }

    /// The next-state relation `N = A₁ ∨ … ∨ A_n` as an expression.
    pub fn next_expr(&self) -> Expr {
        let frame = self.frame();
        Expr::any(self.actions.iter().map(|a| a.action_expr(&frame)))
    }

    /// The disjunction of a subset of actions as an expression (used
    /// for fairness formulas).
    pub fn subset_expr(&self, action_ids: &[usize]) -> Expr {
        let frame = self.frame();
        Expr::any(
            action_ids
                .iter()
                .map(|i| self.actions[*i].action_expr(&frame)),
        )
    }

    /// A fairness requirement as a kernel [`Fairness`] condition.
    pub fn fairness_condition(&self, f: &SystemFairness) -> Fairness {
        Fairness {
            kind: f.kind,
            action: self.subset_expr(&f.action_ids),
            sub: f.sub.clone(),
        }
    }

    /// The system as a TLA formula
    /// `Init ∧ □[N]_{all vars} ∧ fairness` — used for semantic
    /// cross-validation of the checker itself.
    pub fn formula(&self) -> Formula {
        let mut conjuncts = vec![
            Formula::pred(self.init.as_pred()),
            Formula::act_box(self.next_expr(), self.frame()),
        ];
        for f in &self.fairness {
            conjuncts.push(Formula::Fair(self.fairness_condition(f)));
        }
        Formula::all(conjuncts)
    }

    /// All successors of a state, labeled with the action index.
    ///
    /// # Errors
    ///
    /// Propagates guard/update evaluation errors and domain violations.
    pub fn successors(&self, s: &State) -> Result<Vec<(usize, State)>, CheckError> {
        let mut out = Vec::new();
        self.successors_into(s, &mut out)?;
        Ok(out)
    }

    /// Appends all successors of a state into `out`, reusing its
    /// capacity — the allocation-free variant of [`System::successors`]
    /// for exploration hot loops. `out` is cleared first.
    ///
    /// # Errors
    ///
    /// Propagates guard/update evaluation errors and domain violations.
    pub fn successors_into(
        &self,
        s: &State,
        out: &mut Vec<(usize, State)>,
    ) -> Result<(), CheckError> {
        out.clear();
        for (i, a) in self.actions.iter().enumerate() {
            if let Some(t) = a.fire(s, self.vars())? {
                out.push((i, t));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_kernel::{Domain, StatePair};

    fn counter() -> (System, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, 3));
        let incr = GuardedAction::new(
            "incr",
            Expr::var(x).lt(Expr::int(3)),
            vec![(x, Expr::var(x).add(Expr::int(1)))],
        );
        (System::new(vars, Init::new([(x, Value::Int(0))]), vec![incr]), x)
    }

    #[test]
    fn fire_respects_guard_and_domain() {
        let (sys, x) = counter();
        let s0 = State::new(vec![Value::Int(0)]);
        let s3 = State::new(vec![Value::Int(3)]);
        let succ = sys.successors(&s0).unwrap();
        assert_eq!(succ.len(), 1);
        assert_eq!(succ[0].1.get(x), &Value::Int(1));
        assert!(sys.successors(&s3).unwrap().is_empty());
    }

    #[test]
    fn out_of_domain_is_reported() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, 1));
        let bad = GuardedAction::new(
            "bad",
            Expr::bool(true),
            vec![(x, Expr::var(x).add(Expr::int(5)))],
        );
        let sys = System::new(vars, Init::new([(x, Value::Int(0))]), vec![bad]);
        let s = State::new(vec![Value::Int(0)]);
        assert!(matches!(
            sys.successors(&s),
            Err(CheckError::OutOfDomain { .. })
        ));
    }

    #[test]
    fn action_expr_matches_fire() {
        let (sys, _) = counter();
        let frame = sys.frame();
        let a = &sys.actions()[0];
        let e = a.action_expr(&frame);
        let s0 = State::new(vec![Value::Int(0)]);
        let s1 = State::new(vec![Value::Int(1)]);
        let s2 = State::new(vec![Value::Int(2)]);
        assert!(e.holds_action(StatePair::new(&s0, &s1)).unwrap());
        assert!(!e.holds_action(StatePair::new(&s0, &s2)).unwrap());
        assert!(!e.holds_action(StatePair::stutter(&s0)).unwrap());
    }

    #[test]
    fn init_enumeration_with_free_vars() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let y = vars.declare("y", Domain::int_range(0, 2));
        let sys = System::new(
            vars,
            Init::new([(x, Value::Int(0))])
                .with_constraint(Expr::var(y).ne(Expr::int(1))),
            vec![],
        );
        let states = sys.init().states(sys.universe()).unwrap();
        // y ranges over {0, 2}.
        assert_eq!(states.len(), 2);
        for s in &states {
            assert_eq!(s.get(x), &Value::Int(0));
            assert_ne!(s.get(y), &Value::Int(1));
        }
    }

    #[test]
    fn init_merge_conflicts_panic() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let a = Init::new([(x, Value::Int(0))]);
        let b = Init::new([(x, Value::Int(0))]);
        let merged = a.clone().merge(&b);
        assert_eq!(merged.fixed().len(), 1);
        let c = Init::new([(x, Value::Int(1))]);
        let result = std::panic::catch_unwind(|| a.merge(&c));
        assert!(result.is_err());
    }

    #[test]
    fn family_expansion() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, 2));
        let puts = GuardedAction::family(
            "put",
            Domain::int_range(0, 2).values().to_vec(),
            |v| (Expr::bool(true), vec![(x, Expr::con(v.clone()))]),
        );
        assert_eq!(puts.len(), 3);
        assert_eq!(puts[1].name(), "put(1)");
        let s = State::new(vec![Value::Int(0)]);
        let mut vars2 = Vars::new();
        let _ = vars2.declare("x", Domain::int_range(0, 2));
        let t = puts[2].fire(&s, &vars2).unwrap().unwrap();
        assert_eq!(t.get(x), &Value::Int(2));
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_update_panics() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::bits());
        let _ = GuardedAction::new(
            "dup",
            Expr::bool(true),
            vec![(x, Expr::int(0)), (x, Expr::int(1))],
        );
    }

    #[test]
    fn system_formula_shape() {
        let (sys, _) = counter();
        let frame = sys.frame();
        let sys = sys.with_fairness(SystemFairness::weak(vec![0], frame));
        let f = sys.formula();
        // Init ∧ □[N]_v ∧ WF — three conjuncts.
        match &f {
            Formula::And(fs) => assert_eq!(fs.len(), 3),
            other => panic!("unexpected shape {other:?}"),
        }
    }
}
