//! Counterexample traces.

use opentla_kernel::{State, Vars};
use opentla_semantics::Lasso;
use std::fmt;

/// A counterexample: a finite trace, optionally closed into a lasso.
///
/// Safety violations are finite traces (`loop_start == None`); liveness
/// violations are fair lassos (`loop_start == Some(l)`). Either way the
/// counterexample converts into a semantic [`Lasso`] via
/// [`Counterexample::to_lasso`] (finite traces are extended by
/// stuttering), so it can be re-validated against the trace semantics
/// of `opentla-semantics`.
#[derive(Clone, Debug)]
pub struct Counterexample {
    reason: String,
    states: Vec<State>,
    actions: Vec<Option<String>>,
    loop_start: Option<usize>,
}

impl Counterexample {
    /// Builds a counterexample.
    ///
    /// `actions[i]` names the action that produced `states[i]`
    /// (`None` for initial states and stutters), so `actions` and
    /// `states` have equal length.
    ///
    /// # Panics
    ///
    /// Panics if `states` is empty, lengths differ, or `loop_start` is
    /// out of range.
    pub fn new(
        reason: impl Into<String>,
        states: Vec<State>,
        actions: Vec<Option<String>>,
        loop_start: Option<usize>,
    ) -> Self {
        assert!(!states.is_empty(), "counterexample must have states");
        assert_eq!(states.len(), actions.len(), "one action label per state");
        if let Some(l) = loop_start {
            assert!(l < states.len(), "loop start {l} out of range");
        }
        Counterexample {
            reason: reason.into(),
            states,
            actions,
            loop_start,
        }
    }

    /// Why this trace is a counterexample.
    pub fn reason(&self) -> &str {
        &self.reason
    }

    /// The states of the trace.
    pub fn states(&self) -> &[State] {
        &self.states
    }

    /// The action labels (parallel to [`Counterexample::states`]).
    pub fn actions(&self) -> &[Option<String>] {
        &self.actions
    }

    /// Where the lasso loops back to, if this is a lasso.
    pub fn loop_start(&self) -> Option<usize> {
        self.loop_start
    }

    /// The counterexample as an infinite behavior: the lasso itself, or
    /// the finite trace extended by stuttering.
    pub fn to_lasso(&self) -> Lasso {
        match self.loop_start {
            Some(l) => Lasso::new(self.states.clone(), l).expect("validated"),
            None => Lasso::stutter_extend(self.states.clone()).expect("validated"),
        }
    }

    /// Renders the trace with variable names.
    pub fn display<'a>(&'a self, vars: &'a Vars) -> CounterexampleDisplay<'a> {
        CounterexampleDisplay { cx: self, vars }
    }
}

/// Helper returned by [`Counterexample::display`].
#[derive(Clone, Copy)]
pub struct CounterexampleDisplay<'a> {
    cx: &'a Counterexample,
    vars: &'a Vars,
}

impl fmt::Display for CounterexampleDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "counterexample: {}", self.cx.reason)?;
        for (i, (s, a)) in self.cx.states.iter().zip(&self.cx.actions).enumerate() {
            if self.cx.loop_start == Some(i) {
                writeln!(f, "  ┌─ loop")?;
            }
            let label = a.as_deref().unwrap_or("(init)");
            writeln!(f, "  {i:3} [{label}] {}", s.display(self.vars))?;
        }
        if let Some(l) = self.cx.loop_start {
            writeln!(f, "  └─ back to state {l}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use opentla_kernel::{Domain, Value};

    fn st(i: i64) -> State {
        State::new(vec![Value::Int(i)])
    }

    #[test]
    fn finite_trace_stutter_extends() {
        let cx = Counterexample::new(
            "invariant violated",
            vec![st(0), st(1)],
            vec![None, Some("incr".into())],
            None,
        );
        let lasso = cx.to_lasso();
        assert_eq!(lasso.state(0), &st(0));
        assert_eq!(lasso.state(5), &st(1));
    }

    #[test]
    fn lasso_trace_loops() {
        let cx = Counterexample::new(
            "liveness violated",
            vec![st(0), st(1), st(2)],
            vec![None, Some("a".into()), Some("b".into())],
            Some(1),
        );
        let lasso = cx.to_lasso();
        assert_eq!(lasso.loop_start(), 1);
        assert_eq!(lasso.state(3), &st(1));
    }

    #[test]
    fn display_shows_loop() {
        let mut vars = Vars::new();
        vars.declare("x", Domain::int_range(0, 3));
        let cx = Counterexample::new(
            "x stuck",
            vec![st(0), st(1)],
            vec![None, Some("incr".into())],
            Some(1),
        );
        let text = cx.display(&vars).to_string();
        assert!(text.contains("x stuck"));
        assert!(text.contains("loop"));
        assert!(text.contains("incr"));
    }

    #[test]
    #[should_panic(expected = "states")]
    fn empty_rejected() {
        let _ = Counterexample::new("bad", vec![], vec![], None);
    }
}
