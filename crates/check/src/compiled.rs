//! A compiled stepper: guards and updates flattened to stack-machine
//! programs.
//!
//! The tree-walking evaluator in `opentla-kernel` chases `Box` pointers
//! and pays a recursive call per AST node — fine for checking a single
//! invariant, dominant in an exploration hot loop that fires every
//! action in every reachable state. [`CompiledSystem`] compiles each
//! action's guard and update expressions **once** into flat postfix
//! programs ([`CompiledExpr`]) executed over a reusable value stack
//! ([`EvalScratch`]), eliminating per-node allocation and recursion
//! from successor computation.
//!
//! The compiled form is semantics-preserving by construction: operator
//! application delegates to the kernel's own [`UnOp::apply`] /
//! [`BinOp::apply`], and short-circuiting (`∧`, `∨`, `⇒`, `IF`) is
//! reproduced with explicit jumps, so evaluation order, verdicts, *and
//! errors* are identical to [`Expr::eval_state`] — a property pinned
//! down by the `proptest_compiled` suite.
//!
//! Only state functions can be compiled; guards and updates are state
//! functions by construction ([`crate::GuardedAction::new`] asserts
//! it). A primed variable compiles to an instruction that reproduces
//! the interpreter's lazy [`EvalError::PrimeInStateContext`] — lazily,
//! so primes in short-circuited branches stay unobserved, exactly as in
//! the tree walker.

use crate::{CheckError, System};
use opentla_kernel::{expect_bool, BinOp, EvalError, Expr, State, UnOp, Value, VarId};

/// One instruction of a compiled state-function program.
#[derive(Clone, Debug)]
enum Op {
    /// Push a constant.
    Const(Value),
    /// Push the value of an unprimed variable.
    Load(VarId),
    /// Reproduce the interpreter's error for a primed variable in a
    /// state context (guards/updates are state functions, so this only
    /// executes for malformed expressions — and then with the same
    /// error and the same laziness as the tree walker).
    PrimeErr(VarId),
    /// Pop the operand, push `op(operand)`.
    Unary(UnOp),
    /// Pop both operands, push `op(a, b)`.
    Binary(BinOp),
    /// Conjunct boundary: pop a bool; on `false`, push `FALSE` and jump
    /// to `end` (skipping the remaining conjuncts).
    AndProbe { end: u32 },
    /// Disjunct boundary: pop a bool; on `true`, push `TRUE` and jump
    /// to `end`.
    OrProbe { end: u32 },
    /// Antecedent boundary of `⇒`: pop a bool; on `false`, push `TRUE`
    /// and jump to `end` (the consequent stays unevaluated).
    ImpliesProbe { end: u32 },
    /// Pop a bool; jump to `target` when it is false (the `IF` branch).
    JumpIfFalse { target: u32 },
    /// Unconditional jump (joins the `THEN` arm to the end).
    Jump { target: u32 },
    /// Push a boolean constant (the unit of an `∧`/`∨` chain).
    PushBool(bool),
    /// Assert the top of stack is a boolean (the `⇒` consequent's
    /// "boolean context" check), leaving it in place.
    EnsureBool,
    /// Pop `n` values, push the tuple of them (in evaluation order).
    MkTuple(u32),
    /// Pop `n` values, push the sequence of them.
    MkSeq(u32),
    /// Pop a value, push whether it belongs to the listed set.
    InSet(Vec<Value>),
}

/// A state function compiled to a flat postfix program.
///
/// Build with [`CompiledExpr::compile`], run with
/// [`CompiledExpr::eval`] against a reusable [`EvalScratch`].
#[derive(Clone, Debug)]
pub struct CompiledExpr {
    ops: Vec<Op>,
}

impl CompiledExpr {
    /// Compiles a state function. Any expression is accepted; primed
    /// variables produce programs that fail at evaluation time exactly
    /// like the interpreter does.
    pub fn compile(expr: &Expr) -> CompiledExpr {
        let mut ops = Vec::new();
        emit(expr, &mut ops);
        CompiledExpr { ops }
    }

    /// Evaluates the program on a state.
    ///
    /// # Errors
    ///
    /// The same evaluation errors, in the same evaluation order, as
    /// [`Expr::eval_state`] on the source expression.
    pub fn eval(&self, s: &State, scratch: &mut EvalScratch) -> Result<Value, EvalError> {
        self.eval_on(s.values(), scratch)
    }

    /// Evaluates the program on a bare value slice indexed by
    /// [`VarId`] — the packed-state engines unpack a buffer into a
    /// reused `Vec<Value>` and evaluate here without materializing a
    /// [`State`] (no `Arc` allocation on the hot path).
    ///
    /// # Errors
    ///
    /// As [`CompiledExpr::eval`].
    pub fn eval_on(
        &self,
        values: &[Value],
        scratch: &mut EvalScratch,
    ) -> Result<Value, EvalError> {
        let stack = &mut scratch.stack;
        stack.clear();
        let mut pc = 0usize;
        while let Some(op) = self.ops.get(pc) {
            pc += 1;
            match op {
                Op::Const(v) => stack.push(v.clone()),
                Op::Load(v) => match values.get(v.index()) {
                    Some(value) => stack.push(value.clone()),
                    None => {
                        return Err(EvalError::UnboundVar {
                            var: *v,
                            state_len: values.len(),
                        })
                    }
                },
                Op::PrimeErr(v) => {
                    return Err(EvalError::PrimeInStateContext { var: *v })
                }
                Op::Unary(un) => {
                    let v = pop(stack);
                    stack.push(un.apply(v)?);
                }
                Op::Binary(bin) => {
                    let b = pop(stack);
                    let a = pop(stack);
                    stack.push(bin.apply(a, b)?);
                }
                Op::AndProbe { end } => {
                    if !expect_bool(pop(stack))? {
                        stack.push(Value::Bool(false));
                        pc = *end as usize;
                    }
                }
                Op::OrProbe { end } => {
                    if expect_bool(pop(stack))? {
                        stack.push(Value::Bool(true));
                        pc = *end as usize;
                    }
                }
                Op::ImpliesProbe { end } => {
                    if !expect_bool(pop(stack))? {
                        stack.push(Value::Bool(true));
                        pc = *end as usize;
                    }
                }
                Op::JumpIfFalse { target } => {
                    if !expect_bool(pop(stack))? {
                        pc = *target as usize;
                    }
                }
                Op::Jump { target } => pc = *target as usize,
                Op::PushBool(b) => stack.push(Value::Bool(*b)),
                Op::EnsureBool => {
                    let v = pop(stack);
                    stack.push(Value::Bool(expect_bool(v)?));
                }
                Op::MkTuple(n) => {
                    let items = stack.split_off(stack.len() - *n as usize);
                    stack.push(Value::Tuple(items.into()));
                }
                Op::MkSeq(n) => {
                    let items = stack.split_off(stack.len() - *n as usize);
                    stack.push(Value::Seq(items.into()));
                }
                Op::InSet(set) => {
                    let v = pop(stack);
                    stack.push(Value::Bool(set.contains(&v)));
                }
            }
        }
        debug_assert_eq!(stack.len(), 1, "compiled program left a ragged stack");
        Ok(pop(stack))
    }

    /// Evaluates the program as a boolean (guard) on a state.
    ///
    /// # Errors
    ///
    /// As [`CompiledExpr::eval`], plus "boolean context" if the result
    /// is not a boolean.
    pub fn holds(&self, s: &State, scratch: &mut EvalScratch) -> Result<bool, EvalError> {
        expect_bool(self.eval(s, scratch)?)
    }

    /// Evaluates the program as a boolean on a bare value slice.
    ///
    /// # Errors
    ///
    /// As [`CompiledExpr::holds`].
    pub fn holds_on(
        &self,
        values: &[Value],
        scratch: &mut EvalScratch,
    ) -> Result<bool, EvalError> {
        expect_bool(self.eval_on(values, scratch)?)
    }
}

#[inline]
fn pop(stack: &mut Vec<Value>) -> Value {
    stack.pop().expect("compiled program underflowed its stack")
}

fn emit(expr: &Expr, ops: &mut Vec<Op>) {
    match expr {
        Expr::Const(v) => ops.push(Op::Const(v.clone())),
        Expr::Var(v) => ops.push(Op::Load(*v)),
        Expr::Prime(v) => ops.push(Op::PrimeErr(*v)),
        Expr::Unary(op, e) => {
            emit(e, ops);
            ops.push(Op::Unary(*op));
        }
        Expr::Binary(BinOp::Implies, a, b) => {
            emit(a, ops);
            let probe = ops.len();
            ops.push(Op::ImpliesProbe { end: 0 });
            emit(b, ops);
            ops.push(Op::EnsureBool);
            let end = ops.len() as u32;
            let Op::ImpliesProbe { end: slot } = &mut ops[probe] else {
                unreachable!("probe written above")
            };
            *slot = end;
        }
        Expr::Binary(op, a, b) => {
            emit(a, ops);
            emit(b, ops);
            ops.push(Op::Binary(*op));
        }
        Expr::And(es) => emit_chain(es, ops, true),
        Expr::Or(es) => emit_chain(es, ops, false),
        Expr::Ite(c, a, b) => {
            emit(c, ops);
            let branch = ops.len();
            ops.push(Op::JumpIfFalse { target: 0 });
            emit(a, ops);
            let join = ops.len();
            ops.push(Op::Jump { target: 0 });
            let else_at = ops.len() as u32;
            emit(b, ops);
            let end = ops.len() as u32;
            let Op::JumpIfFalse { target } = &mut ops[branch] else {
                unreachable!("branch written above")
            };
            *target = else_at;
            let Op::Jump { target } = &mut ops[join] else {
                unreachable!("join written above")
            };
            *target = end;
        }
        Expr::Tuple(es) => {
            for e in es {
                emit(e, ops);
            }
            ops.push(Op::MkTuple(es.len() as u32));
        }
        Expr::MkSeq(es) => {
            for e in es {
                emit(e, ops);
            }
            ops.push(Op::MkSeq(es.len() as u32));
        }
        Expr::InSet(e, set) => {
            emit(e, ops);
            ops.push(Op::InSet(set.clone()));
        }
    }
}

/// Emits an `∧` chain (`conjunctive = true`) or `∨` chain, with each
/// element followed by a probe that short-circuits to the end.
fn emit_chain(es: &[Expr], ops: &mut Vec<Op>, conjunctive: bool) {
    let mut probes = Vec::with_capacity(es.len());
    for e in es {
        emit(e, ops);
        probes.push(ops.len());
        ops.push(if conjunctive {
            Op::AndProbe { end: 0 }
        } else {
            Op::OrProbe { end: 0 }
        });
    }
    // Every element held (resp. failed): push the chain's unit.
    ops.push(Op::PushBool(conjunctive));
    let end = ops.len() as u32;
    for p in probes {
        match &mut ops[p] {
            Op::AndProbe { end: slot } | Op::OrProbe { end: slot } => *slot = end,
            _ => unreachable!("probe written above"),
        }
    }
}

/// Reusable evaluation buffers for the compiled stepper: the value
/// stack and the pending-update list. One scratch per worker thread;
/// after warm-up the hot loop performs no stack/update allocations.
#[derive(Debug, Default)]
pub struct EvalScratch {
    stack: Vec<Value>,
    assignments: Vec<(VarId, Value)>,
}

impl EvalScratch {
    /// Fresh (empty) scratch buffers.
    pub fn new() -> EvalScratch {
        EvalScratch::default()
    }
}

/// One compiled guarded action: the guard program plus one update
/// program per assigned variable.
#[derive(Debug)]
struct CompiledAction {
    guard: CompiledExpr,
    updates: Vec<(VarId, CompiledExpr)>,
}

/// A [`System`] with every action compiled for high-throughput
/// successor computation.
///
/// Borrowing — not consuming — the system keeps the compiled form a
/// pure accelerator: names, domains, and error reporting still come
/// from the source system, and [`CompiledSystem::successors_into`] is
/// observationally identical to [`System::successors`].
#[derive(Debug)]
pub struct CompiledSystem<'a> {
    system: &'a System,
    actions: Vec<CompiledAction>,
}

impl<'a> CompiledSystem<'a> {
    /// Compiles every action of the system. Cost is linear in the total
    /// expression size — negligible next to any exploration.
    pub fn compile(system: &'a System) -> CompiledSystem<'a> {
        let actions = system
            .actions()
            .iter()
            .map(|a| CompiledAction {
                guard: CompiledExpr::compile(a.guard()),
                updates: a
                    .updates()
                    .iter()
                    .map(|(v, e)| (*v, CompiledExpr::compile(e)))
                    .collect(),
            })
            .collect();
        CompiledSystem { system, actions }
    }

    /// The source system.
    pub fn system(&self) -> &'a System {
        self.system
    }

    /// Visits every enabled action of `s` in action order, handing the
    /// visitor the action index and the evaluated, domain-checked
    /// update assignments — *without* materializing the successor
    /// state. The visitor builds it with `s.with(assignments)` if it
    /// needs it; fingerprinted explorers first derive the successor's
    /// fingerprint from the assignments
    /// ([`State::fingerprint_with`](opentla_kernel::State::fingerprint_with))
    /// and skip construction for already-visited successors.
    ///
    /// Returns the visitor's break value, if it broke early.
    ///
    /// # Errors
    ///
    /// Exactly the errors [`System::successors`] reports, in the same
    /// order: guard/update evaluation errors and
    /// [`CheckError::OutOfDomain`] violations.
    pub fn for_each_successor<B>(
        &self,
        s: &State,
        scratch: &mut EvalScratch,
        visit: impl FnMut(usize, &[(VarId, Value)]) -> std::ops::ControlFlow<B>,
    ) -> Result<Option<B>, CheckError> {
        self.for_each_successor_values(s.values(), scratch, visit)
    }

    /// [`CompiledSystem::for_each_successor`] over a bare value slice
    /// indexed by [`VarId`] — the entry point for packed-state
    /// engines, which unpack into a reused buffer and never build a
    /// parent [`State`] at all.
    ///
    /// # Errors
    ///
    /// As [`CompiledSystem::for_each_successor`].
    pub fn for_each_successor_values<B>(
        &self,
        values: &[Value],
        scratch: &mut EvalScratch,
        mut visit: impl FnMut(usize, &[(VarId, Value)]) -> std::ops::ControlFlow<B>,
    ) -> Result<Option<B>, CheckError> {
        let vars = self.system.vars();
        for (i, ca) in self.actions.iter().enumerate() {
            if !ca.guard.holds_on(values, scratch)? {
                continue;
            }
            scratch.assignments.clear();
            for (v, e) in &ca.updates {
                let value = e.eval_on(values, scratch)?;
                if !vars.domain(*v).contains(&value) {
                    return Err(CheckError::OutOfDomain {
                        action: self.system.actions()[i].name().to_string(),
                        var: *v,
                        value,
                    });
                }
                scratch.assignments.push((*v, value));
            }
            if let std::ops::ControlFlow::Break(b) = visit(i, &scratch.assignments) {
                return Ok(Some(b));
            }
        }
        Ok(None)
    }

    /// Appends all successors of `s` into `out` (cleared first),
    /// labeled with action indices — the compiled, allocation-lean
    /// equivalent of [`System::successors_into`].
    ///
    /// # Errors
    ///
    /// As [`CompiledSystem::for_each_successor`].
    pub fn successors_into(
        &self,
        s: &State,
        out: &mut Vec<(usize, State)>,
        scratch: &mut EvalScratch,
    ) -> Result<(), CheckError> {
        out.clear();
        self.for_each_successor(s, scratch, |i, assignments| {
            out.push((i, s.with(assignments)));
            std::ops::ControlFlow::<std::convert::Infallible>::Continue(())
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GuardedAction, Init};
    use opentla_kernel::{Domain, Vars};

    fn ev(e: &Expr, s: &State) -> (Result<Value, EvalError>, Result<Value, EvalError>) {
        let compiled = CompiledExpr::compile(e);
        let mut scratch = EvalScratch::new();
        (e.eval_state(s), compiled.eval(s, &mut scratch))
    }

    fn assert_agree(e: &Expr, s: &State) {
        let (tree, flat) = ev(e, s);
        assert_eq!(tree, flat, "for {e:?}");
    }

    fn setup() -> (Vars, VarId, VarId) {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, 7));
        let q = vars.declare("q", Domain::seqs_up_to(&Domain::bits(), 2));
        (vars, x, q)
    }

    #[test]
    fn literals_vars_and_arith() {
        let (_, x, q) = setup();
        let s = State::new(vec![Value::Int(3), Value::seq(vec![Value::Int(1)])]);
        assert_agree(&Expr::int(42), &s);
        assert_agree(&Expr::var(x).add(Expr::int(1)).mul(Expr::int(2)), &s);
        assert_agree(&Expr::var(q).len(), &s);
        assert_agree(&Expr::var(q).head(), &s);
        assert_agree(&Expr::var(q).tail(), &s);
        assert_agree(
            &Expr::var(q).concat(Expr::MkSeq(vec![Expr::int(0)])),
            &s,
        );
        assert_agree(&Expr::Tuple(vec![Expr::var(x), Expr::int(9)]), &s);
    }

    #[test]
    fn short_circuits_match_the_interpreter() {
        let (_, x, _) = setup();
        let s = State::new(vec![Value::Int(1), Value::empty_seq()]);
        // Second conjunct is a type error — skipped by both evaluators.
        let e = Expr::bool(false).and(Expr::var(x).add(Expr::int(1)));
        assert_agree(&e, &s);
        let e = Expr::bool(true).or(Expr::var(x).add(Expr::int(1)));
        assert_agree(&e, &s);
        let e = Expr::bool(false).implies(Expr::var(x).add(Expr::int(1)));
        assert_agree(&e, &s);
        // Non-short-circuited paths must error identically.
        let e = Expr::bool(true).and(Expr::var(x).add(Expr::int(1)));
        assert_agree(&e, &s);
        let e = Expr::bool(true).implies(Expr::var(x).add(Expr::int(1)));
        assert_agree(&e, &s);
        // Empty chains.
        assert_agree(&Expr::And(vec![]), &s);
        assert_agree(&Expr::Or(vec![]), &s);
    }

    #[test]
    fn ite_in_set_and_errors() {
        let (_, x, q) = setup();
        let s = State::new(vec![Value::Int(2), Value::empty_seq()]);
        let e = Expr::var(x)
            .eq(Expr::int(2))
            .ite(Expr::var(x).add(Expr::int(1)), Expr::int(0));
        assert_agree(&e, &s);
        let e = Expr::var(x)
            .eq(Expr::int(3))
            .ite(Expr::var(x).add(Expr::int(1)), Expr::int(0));
        assert_agree(&e, &s);
        assert_agree(&Expr::var(x).in_set([Value::Int(2), Value::Int(5)]), &s);
        // Head of empty errors identically.
        assert_agree(&Expr::var(q).head(), &s);
        // Primes error identically (and lazily).
        assert_agree(&Expr::prime(x), &s);
        assert_agree(&Expr::bool(false).and(Expr::prime(x)), &s);
        // Unbound variable.
        let short = State::new(vec![Value::Int(0)]);
        assert_agree(&Expr::var(q), &short);
    }

    #[test]
    fn compiled_successors_match_interpreted() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, 3));
        let y = vars.declare("y", Domain::bits());
        let actions = vec![
            GuardedAction::new(
                "incr",
                Expr::var(x).lt(Expr::int(3)),
                vec![(x, Expr::var(x).add(Expr::int(1)))],
            ),
            GuardedAction::new(
                "flip",
                Expr::bool(true),
                vec![(y, Expr::int(1).sub(Expr::var(y)))],
            ),
        ];
        let sys = System::new(vars, Init::new([(x, Value::Int(0)), (y, Value::Int(0))]), actions);
        let compiled = CompiledSystem::compile(&sys);
        let mut scratch = EvalScratch::new();
        let mut out = Vec::new();
        for xv in 0..=3 {
            for yv in 0..=1 {
                let s = State::new(vec![Value::Int(xv), Value::Int(yv)]);
                compiled.successors_into(&s, &mut out, &mut scratch).unwrap();
                assert_eq!(out, sys.successors(&s).unwrap(), "at x={xv} y={yv}");
            }
        }
    }

    #[test]
    fn compiled_domain_violation_matches() {
        let mut vars = Vars::new();
        let x = vars.declare("x", Domain::int_range(0, 1));
        let bad = GuardedAction::new(
            "bad",
            Expr::bool(true),
            vec![(x, Expr::var(x).add(Expr::int(5)))],
        );
        let sys = System::new(vars, Init::new([(x, Value::Int(0))]), vec![bad]);
        let compiled = CompiledSystem::compile(&sys);
        let s = State::new(vec![Value::Int(0)]);
        let mut out = Vec::new();
        let err = compiled
            .successors_into(&s, &mut out, &mut EvalScratch::new())
            .unwrap_err();
        assert!(
            matches!(&err, CheckError::OutOfDomain { action, .. } if action == "bad"),
            "{err:?}"
        );
    }
}
