//! The parallel bounded-memory exploration engine
//! ([`Engine::SpillWs`](super::Engine::SpillWs)): the work-stealing
//! scheduler of [`super::ws`] composed with the disk-backed spill
//! tiers of [`super::spill`].
//!
//! * **Scheduling** is exactly the work-stealing engine's: per-worker
//!   deques (owners pop the front, thieves the back), quiescence via a
//!   shared `in_flight` counter, a stop flag for budget cuts, and a
//!   panic backstop that raises the stop flag before propagating.
//! * **The state arena and edge records** live in two shared
//!   [`SegmentStore`]s (`wsarena-*` / `wsedges-*` segments) behind
//!   plain mutexes: every worker funnels its encoded records through
//!   the single sealed-segment writer, and a record's *arrival id* —
//!   its index in the arena store — is the provisional id the workers
//!   exchange. Parents are read back through the store's LRU cache, so
//!   the working set stays within the byte budget even while many
//!   workers expand concurrently.
//! * **The visited set** is the two-tier design of the sequential
//!   spill engine, sharded across the [`NUM_SHARDS`] lock stripes:
//!   each stripe owns a byte-accounted hot fingerprint map and its own
//!   one-bit filter, and drains to a sorted [`FingerprintRun`] file
//!   when its accounted bytes reach a fixed per-shard threshold. Run
//!   files are globally sequenced by a coordinator-owned drain lock
//!   (held only to allocate the next `visited-NNNNN.run` name), so
//!   concurrent drains never collide on a path.
//!
//! **Why sharded drains preserve determinism.** A drain moves keys
//! between tiers of one stripe; it never changes *membership*. Each
//! key is inserted at most once globally (fingerprint mode) or carries
//! every colliding id (exact mode, verified against arena bytes), so a
//! lookup's answer is independent of which tier holds the key — and
//! therefore independent of when drains fired or how worker
//! interleavings assigned arrival ids. The drain threshold itself is a
//! pure function of the stripe's insert stream (16 accounted bytes per
//! entry, drain at a fixed byte mark), not of timing. Nondeterministic
//! arrival ids are then erased by the same canonical renumbering
//! replay the other parallel engines use: a completed run's
//! [`StateGraph`] is **byte-identical** to the sequential spill
//! engine's and to plain sequential exploration. (Sole exception,
//! shared with the in-RAM work-stealing engine: under *forced*
//! fingerprint collisions — a narrowed `fp_bits` in fingerprint mode —
//! first-insert-wins picks each collision class's representative by
//! arrival order, so multi-worker conflation is racy by construction;
//! exact mode verifies candidates against their arena bytes and stays
//! deterministic at every worker count.)
//!
//! Checkpointing: like the work-stealing engine there are no level
//! boundaries, so no mid-run snapshots are taken; a checkpointing
//! budget gets one snapshot at the exhaustion point (a quiescent
//! point), rolled back to the deepest consistent level boundary. When
//! the segment directory is persistent the snapshot is written in the
//! spill wire format — the rolled-back canonical graph is re-encoded
//! into fresh `arena-*` / `edges-*` stores and referenced by name, so
//! the snapshot costs O(unsealed tail) to embed and **any** engine
//! (sequential, spill, work-stealing, or this one, at any thread
//! count) can resume it.

use super::spill::{self, Tuning};
use super::*;
use crate::checkpoint::{CheckpointError, SpillManifest};
use crate::obs::RecorderHandle;
use opentla_kernel::store::{self, FingerprintRun, SegmentStore, StoreError};
use opentla_kernel::{PackedLayout, Value};
use std::collections::hash_map::Entry;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};

/// One lock stripe of the sharded two-tier visited set.
struct SpillShard {
    /// First arrival id per key — masked fingerprints in fingerprint
    /// mode, unmasked in exact mode (candidates, not answers).
    hot: FxHashMap<u64, u64>,
    /// Exact-mode extras: second and later arrival ids under a
    /// genuinely colliding key. Every key here is also in `hot`.
    dups: FxHashMap<u64, Vec<u64>>,
    /// Bytes accounted against this stripe's hot tier (16 per entry,
    /// key + id), reset by each drain.
    hot_bytes: usize,
    /// Created at this stripe's first drain, like the sequential
    /// engine's: a run-free stripe never pays for the bit array.
    filter: Option<spill::Filter>,
    runs: Vec<FingerprintRun>,
    probe: Vec<u64>,
}

impl SpillShard {
    fn new() -> SpillShard {
        SpillShard {
            hot: FxHashMap::default(),
            dups: FxHashMap::default(),
            hot_bytes: 0,
            filter: None,
            runs: Vec::new(),
            probe: Vec::new(),
        }
    }

    /// Drains this stripe's hot tier (and exact-mode dups) into a
    /// sorted run file. The coordinator's drain lock is held only to
    /// allocate the globally-sequenced file name — the write itself
    /// goes to a path no other drain can pick, so stripes drain
    /// concurrently.
    fn drain(
        &mut self,
        ctl: &Mutex<DrainCtl>,
        filter_bytes: usize,
    ) -> Result<spill::SpillInfo, StoreError> {
        let filter = self
            .filter
            .get_or_insert_with(|| spill::Filter::new(filter_bytes));
        let mut entries: Vec<(u64, u64)> = Vec::with_capacity(self.hot.len() + self.dups.len());
        for (key, id) in self.hot.drain() {
            filter.set(key);
            entries.push((key, id));
        }
        // Dup keys are a subset of the drained hot keys, so their
        // filter bits are already set.
        for (key, ids) in self.dups.drain() {
            entries.extend(ids.into_iter().map(|id| (key, id)));
        }
        entries.sort_unstable();
        self.hot_bytes = 0;
        let (seq, path) = {
            let mut ctl = lock(ctl);
            let seq = ctl.seq;
            ctl.seq += 1;
            (seq, ctl.dir.join(format!("visited-{seq:05}.run")))
        };
        let run = FingerprintRun::write(&path, &entries)?;
        let info = spill::SpillInfo {
            tier: "visited",
            seq,
            records: entries.len() as u64,
            bytes: run.bytes(),
        };
        self.runs.push(run);
        Ok(info)
    }
}

/// Coordinator-owned drain state: the one name allocator behind every
/// stripe's run files.
struct DrainCtl {
    dir: PathBuf,
    seq: u64,
}

/// Why a worker-side store operation stopped: a budget cut (normal) or
/// a typed store/codec failure.
enum WsStop {
    Cut(ExhaustReason),
    Fail(CheckError),
}

fn fail(e: StoreError) -> WsStop {
    WsStop::Fail(CheckpointError::from(e).into())
}

/// Shared coordination state of one parallel spill run.
struct SpillWsShared<'a> {
    visited: Striped<SpillShard>,
    drain: Mutex<DrainCtl>,
    /// The shared state arena: one sealed-segment writer every worker
    /// funnels its records through. A record's index is its arrival id.
    arena: Mutex<SegmentStore>,
    /// The shared edge-record store; one record per completed parent.
    edges: Mutex<SegmentStore>,
    /// Per-stripe hot-tier drain threshold, in accounted bytes.
    shard_hot_bytes: usize,
    /// Per-stripe filter size (the budget's filter share, split).
    shard_filter_bytes: usize,
    deques: Vec<Mutex<VecDeque<Pid>>>,
    in_flight: AtomicUsize,
    mask: u64,
    mode: VisitedMode,
    meter: &'a Meter,
    rec: &'a RecorderHandle,
    stop: AtomicBool,
    reason: Mutex<Option<ExhaustReason>>,
    error: Mutex<Option<CheckError>>,
}

impl SpillWsShared<'_> {
    fn note_exhaustion(&self, r: ExhaustReason) {
        lock(&self.reason).get_or_insert(r);
        self.stop.store(true, Ordering::Relaxed);
    }

    fn note_error(&self, e: CheckError) {
        lock(&self.error).get_or_insert(e);
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Appends one encoded arena record, returning its arrival id.
    /// Lock order everywhere is stripe → store, so calling this while
    /// holding a stripe lock is deadlock-free.
    fn append_arena(&self, rec: &[u8]) -> Result<u64, StoreError> {
        let mut store = lock(&self.arena);
        let id = store.len();
        let info = store
            .append(rec)?
            .map(|meta| spill::seal_info("arena", &store, &meta));
        drop(store);
        if let Some(info) = info {
            spill::note_spill(self.meter, self.rec, &info);
        }
        Ok(id)
    }

    /// Appends one encoded edge record (a completed parent's full
    /// successor list).
    fn append_edges(&self, rec: &[u8]) -> Result<(), StoreError> {
        let mut store = lock(&self.edges);
        let info = store
            .append(rec)?
            .map(|meta| spill::seal_info("edges", &store, &meta));
        drop(store);
        if let Some(info) = info {
            spill::note_spill(self.meter, self.rec, &info);
        }
        Ok(())
    }

    /// Fingerprint-mode intern: probe the key's stripe across both
    /// tiers, and only on an admitted full miss run `encode` to build
    /// the record and append it to the arena — already-visited
    /// successors never materialize their bytes. The charge-then-admit
    /// order matches the sequential spill engine's
    /// [`fp_entry`](super::spill) discipline.
    fn intern_fp(
        &self,
        fp: u64,
        encode: impl FnOnce(&mut Vec<u8>),
        rec_buf: &mut Vec<u8>,
    ) -> Result<(u64, bool), WsStop> {
        let key = fp & self.mask;
        let (_si, mut shard) = self.visited.lock_key(key);
        {
            let SpillShard {
                hot,
                runs,
                filter,
                probe,
                ..
            } = &mut *shard;
            if let Some(&id) = hot.get(&key) {
                return Ok((id, false));
            }
            if !runs.is_empty() && filter.as_ref().is_some_and(|f| f.maybe(key)) {
                probe.clear();
                for run in runs.iter_mut() {
                    run.lookup(key, probe).map_err(fail)?;
                    if let Some(&id) = probe.first() {
                        return Ok((id, false));
                    }
                }
            }
        }
        if let Some(reason) = self.meter.charge_state() {
            return Err(WsStop::Cut(reason));
        }
        encode(rec_buf);
        let id = self.append_arena(rec_buf).map_err(fail)?;
        shard.hot.insert(key, id);
        shard.hot_bytes += 16;
        let spilled = if shard.hot_bytes >= self.shard_hot_bytes {
            Some(
                shard
                    .drain(&self.drain, self.shard_filter_bytes)
                    .map_err(fail)?,
            )
        } else {
            None
        };
        drop(shard);
        if let Some(info) = spilled {
            spill::note_spill(self.meter, self.rec, &info);
        }
        Ok((id, true))
    }

    /// Exact-mode intern: the unmasked fingerprint only *indexes*
    /// candidates, each verified against its arena record before the
    /// probe state is declared visited — forced collisions give false
    /// candidates, never false answers. The caller pre-encodes the
    /// probe's full record (`rec_buf`); on the packed path equality is
    /// decided on the payload bytes (packing is injective on in-domain
    /// states), on the tree path by decoding the candidate.
    fn intern_exact(
        &self,
        fp: u64,
        rec_buf: &[u8],
        child: Option<&State>,
        layout: Option<&PackedLayout>,
        read_buf: &mut Vec<u8>,
        cand: &mut Vec<u64>,
    ) -> Result<(u64, bool), WsStop> {
        let (_si, mut shard) = self.visited.lock_key(fp & self.mask);
        cand.clear();
        {
            let SpillShard {
                hot,
                dups,
                runs,
                filter,
                ..
            } = &mut *shard;
            if let Some(&id) = hot.get(&fp) {
                cand.push(id);
                if let Some(extra) = dups.get(&fp) {
                    cand.extend_from_slice(extra);
                }
            }
            if !runs.is_empty() && filter.as_ref().is_some_and(|f| f.maybe(fp)) {
                for run in runs.iter_mut() {
                    run.lookup(fp, cand).map_err(fail)?;
                }
            }
        }
        // Verification happens under the stripe lock so no peer can
        // admit the same state between our probe and our insert.
        for &cid in cand.iter() {
            {
                let mut store = lock(&self.arena);
                store.read(cid, read_buf).map_err(fail)?;
            }
            let held = match child {
                // Packed payloads start at byte 17 in both records.
                None => read_buf[17..] == rec_buf[17..],
                Some(s) => {
                    let r = checkpoint::decode_arena_record(read_buf, layout)
                        .map_err(|e| WsStop::Fail(e.into()))?;
                    &r.state == s
                }
            };
            if held {
                return Ok((cid, false));
            }
        }
        if let Some(reason) = self.meter.charge_state() {
            return Err(WsStop::Cut(reason));
        }
        let id = self.append_arena(rec_buf).map_err(fail)?;
        match shard.hot.entry(fp) {
            Entry::Occupied(_) => shard.dups.entry(fp).or_default().push(id),
            Entry::Vacant(e) => {
                e.insert(id);
            }
        }
        shard.hot_bytes += 16;
        let spilled = if shard.hot_bytes >= self.shard_hot_bytes {
            Some(
                shard
                    .drain(&self.drain, self.shard_filter_bytes)
                    .map_err(fail)?,
            )
        } else {
            None
        };
        drop(shard);
        if let Some(info) = spilled {
            spill::note_spill(self.meter, self.rec, &info);
        }
        Ok((id, true))
    }

    /// Resume seeding: records `id` under `fp` with the same
    /// first-id-wins (fingerprint) / keep-every-id (exact) discipline
    /// as the sequential spill engine's re-ingest, meter-free. Drains
    /// may fire mid-seed; the returned info is the caller's to report.
    fn seed_visited(&self, fp: u64, id: u64) -> Result<Option<spill::SpillInfo>, StoreError> {
        let key = match self.mode {
            VisitedMode::Fingerprint => fp & self.mask,
            VisitedMode::Exact => fp,
        };
        let (_si, mut shard) = self.visited.lock_key(fp & self.mask);
        match self.mode {
            VisitedMode::Fingerprint => {
                let SpillShard {
                    hot,
                    runs,
                    filter,
                    probe,
                    ..
                } = &mut *shard;
                if hot.contains_key(&key) {
                    return Ok(None);
                }
                if !runs.is_empty() && filter.as_ref().is_some_and(|f| f.maybe(key)) {
                    probe.clear();
                    for run in runs.iter_mut() {
                        run.lookup(key, probe)?;
                        if !probe.is_empty() {
                            return Ok(None);
                        }
                    }
                }
                hot.insert(key, id);
            }
            VisitedMode::Exact => match shard.hot.entry(key) {
                Entry::Occupied(_) => shard.dups.entry(key).or_default().push(id),
                Entry::Vacant(e) => {
                    e.insert(id);
                }
            },
        }
        shard.hot_bytes += 16;
        if shard.hot_bytes >= self.shard_hot_bytes {
            return shard
                .drain(&self.drain, self.shard_filter_bytes)
                .map(Some);
        }
        Ok(None)
    }
}

/// One worker's accumulated output.
#[derive(Default)]
struct SpillWsOut {
    /// Parents whose expansion was cut short by budget exhaustion.
    interrupted: Vec<Pid>,
    /// Cut parents' partial edge runs — kept in RAM only, never
    /// written to the edge store (same invariant as the sequential
    /// spill engine's `cut_edges`).
    cut: Vec<(Pid, Vec<Edge>)>,
    claimed: u64,
    inserted: u64,
}

/// Claims the next parent: own deque front first, then a sweep
/// stealing from the backs of the peers'.
fn claim(shared: &SpillWsShared<'_>, me: usize) -> Option<Pid> {
    if let Some(p) = lock(&shared.deques[me]).pop_front() {
        return Some(p);
    }
    let n = shared.deques.len();
    for k in 1..n {
        if let Some(p) = lock(&shared.deques[(me + k) % n]).pop_back() {
            return Some(p);
        }
    }
    None
}

/// The worker loop over packed records: read the parent's record
/// through the arena cache, unpack into a reused value buffer, derive
/// child fingerprints incrementally, intern child records.
fn run_worker_packed(
    shared: &SpillWsShared<'_>,
    compiled: &CompiledSystem<'_>,
    layout: &PackedLayout,
    me: usize,
    out: &mut SpillWsOut,
) {
    use std::ops::ControlFlow;

    let fp_probe = matches!(shared.mode, VisitedMode::Fingerprint);
    let mut scratch = EvalScratch::new();
    let mut parent_rec: Vec<u8> = Vec::new();
    let mut rec_buf: Vec<u8> = Vec::new();
    let mut read_buf: Vec<u8> = Vec::new();
    let mut cand: Vec<u64> = Vec::new();
    let mut edge_rec_buf: Vec<u8> = Vec::new();
    let mut values: Vec<Value> = Vec::new();
    let mut updates: Vec<(usize, u32)> = Vec::new();
    let mut born: Vec<Pid> = Vec::new();
    let mut edge_list: Vec<Edge> = Vec::new();
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(reason) = shared.meter.checkpoint() {
            shared.note_exhaustion(reason);
            break;
        }
        let Some(parent) = claim(shared, me) else {
            if shared.in_flight.load(Ordering::Acquire) == 0 {
                break;
            }
            std::thread::yield_now();
            continue;
        };
        out.claimed += 1;
        let mut failed = false;
        let mut cut = false;
        {
            let mut store = lock(&shared.arena);
            if let Err(e) = store.read(local_of(parent) as u64, &mut parent_rec) {
                drop(store);
                shared.note_error(CheckpointError::from(e).into());
                failed = true;
            }
        }
        if !failed {
            debug_assert_eq!(parent_rec[0], 1, "packed runs write only tag-1 records");
            let parent_fp = u64::from_le_bytes(parent_rec[9..17].try_into().unwrap());
            layout.unpack_into(&parent_rec[17..], &mut values);
            edge_list.clear();
            let result =
                compiled.for_each_successor_values(&values, &mut scratch, |action, assignments| {
                    if let Some(reason) = shared.meter.charge_transition() {
                        shared.note_exhaustion(reason);
                        out.interrupted.push(parent);
                        cut = true;
                        return ControlFlow::Break(());
                    }
                    let mut child_fp = parent_fp;
                    updates.clear();
                    for (v, val) in assignments {
                        let slot = v.index();
                        let old = layout.read_code(&parent_rec[17..], slot);
                        let new = layout
                            .code_of(slot, val)
                            .expect("stepper domain-checks every update value");
                        if new != old {
                            child_fp ^= layout.fingerprint_delta(slot, old, new);
                            updates.push((slot, new));
                        }
                    }
                    let encode = |buf: &mut Vec<u8>| {
                        buf.clear();
                        buf.push(1u8);
                        buf.extend_from_slice(&(local_of(parent) as u32).to_le_bytes());
                        buf.extend_from_slice(&(action as u32).to_le_bytes());
                        buf.extend_from_slice(&child_fp.to_le_bytes());
                        let start = buf.len();
                        buf.extend_from_slice(&parent_rec[17..]);
                        for &(slot, new) in &updates {
                            layout.write_code(&mut buf[start..], slot, new);
                        }
                    };
                    let interned = if fp_probe {
                        shared.intern_fp(child_fp, encode, &mut rec_buf)
                    } else {
                        encode(&mut rec_buf);
                        shared.intern_exact(
                            child_fp,
                            &rec_buf,
                            None,
                            Some(layout),
                            &mut read_buf,
                            &mut cand,
                        )
                    };
                    match interned {
                        Ok((child, is_new)) => {
                            if is_new {
                                out.inserted += 1;
                                shared.in_flight.fetch_add(1, Ordering::AcqRel);
                                born.push(pid(0, child as usize));
                            }
                            edge_list.push(Edge {
                                action,
                                target: child as usize,
                            });
                            ControlFlow::Continue(())
                        }
                        Err(WsStop::Cut(reason)) => {
                            shared.note_exhaustion(reason);
                            out.interrupted.push(parent);
                            cut = true;
                            ControlFlow::Break(())
                        }
                        Err(WsStop::Fail(e)) => {
                            shared.note_error(e);
                            failed = true;
                            ControlFlow::Break(())
                        }
                    }
                });
            if let Err(e) = result {
                shared.note_error(e);
                failed = true;
            }
            if cut {
                out.cut.push((parent, std::mem::take(&mut edge_list)));
            } else if !failed {
                checkpoint::encode_edge_record(local_of(parent), &edge_list, &mut edge_rec_buf);
                if let Err(e) = shared.append_edges(&edge_rec_buf) {
                    shared.note_error(CheckpointError::from(e).into());
                    failed = true;
                }
            }
        }
        // Flush on every exit path — a counted-but-unqueued child
        // would wedge quiescence or drop out of the resume frontier.
        if !born.is_empty() {
            lock(&shared.deques[me]).extend(born.drain(..));
        }
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        if failed {
            break;
        }
    }
}

/// The worker loop for the tree fallback: records carry codec-encoded
/// states, child fingerprints come from [`State::fingerprint_with`].
fn run_worker_tree(
    shared: &SpillWsShared<'_>,
    compiled: &CompiledSystem<'_>,
    me: usize,
    out: &mut SpillWsOut,
) {
    use std::ops::ControlFlow;

    let fp_probe = matches!(shared.mode, VisitedMode::Fingerprint);
    let mut scratch = EvalScratch::new();
    let mut parent_rec: Vec<u8> = Vec::new();
    let mut rec_buf: Vec<u8> = Vec::new();
    let mut read_buf: Vec<u8> = Vec::new();
    let mut cand: Vec<u64> = Vec::new();
    let mut edge_rec_buf: Vec<u8> = Vec::new();
    let mut pack_scratch: Vec<u8> = Vec::new();
    let mut born: Vec<Pid> = Vec::new();
    let mut edge_list: Vec<Edge> = Vec::new();
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(reason) = shared.meter.checkpoint() {
            shared.note_exhaustion(reason);
            break;
        }
        let Some(parent) = claim(shared, me) else {
            if shared.in_flight.load(Ordering::Acquire) == 0 {
                break;
            }
            std::thread::yield_now();
            continue;
        };
        out.claimed += 1;
        let mut failed = false;
        let mut cut = false;
        {
            let mut store = lock(&shared.arena);
            if let Err(e) = store.read(local_of(parent) as u64, &mut parent_rec) {
                drop(store);
                shared.note_error(CheckpointError::from(e).into());
                failed = true;
            }
        }
        let decoded = if failed {
            None
        } else {
            match checkpoint::decode_arena_record(&parent_rec, None) {
                Ok(r) => Some((r.state, r.fp)),
                Err(e) => {
                    shared.note_error(e.into());
                    failed = true;
                    None
                }
            }
        };
        if let Some((s, s_fp)) = decoded {
            edge_list.clear();
            let result = compiled.for_each_successor(&s, &mut scratch, |action, assignments| {
                if let Some(reason) = shared.meter.charge_transition() {
                    shared.note_exhaustion(reason);
                    out.interrupted.push(parent);
                    cut = true;
                    return ControlFlow::Break(());
                }
                let child_fp = s.fingerprint_with(s_fp, assignments);
                let interned = if fp_probe {
                    shared.intern_fp(
                        child_fp,
                        |buf| {
                            checkpoint::encode_arena_record(
                                &s.with(assignments),
                                child_fp,
                                Some((local_of(parent), action)),
                                None,
                                &mut pack_scratch,
                                buf,
                            );
                        },
                        &mut rec_buf,
                    )
                } else {
                    let child = s.with(assignments);
                    checkpoint::encode_arena_record(
                        &child,
                        child_fp,
                        Some((local_of(parent), action)),
                        None,
                        &mut pack_scratch,
                        &mut rec_buf,
                    );
                    shared.intern_exact(
                        child_fp,
                        &rec_buf,
                        Some(&child),
                        None,
                        &mut read_buf,
                        &mut cand,
                    )
                };
                match interned {
                    Ok((child, is_new)) => {
                        if is_new {
                            out.inserted += 1;
                            shared.in_flight.fetch_add(1, Ordering::AcqRel);
                            born.push(pid(0, child as usize));
                        }
                        edge_list.push(Edge {
                            action,
                            target: child as usize,
                        });
                        ControlFlow::Continue(())
                    }
                    Err(WsStop::Cut(reason)) => {
                        shared.note_exhaustion(reason);
                        out.interrupted.push(parent);
                        cut = true;
                        ControlFlow::Break(())
                    }
                    Err(WsStop::Fail(e)) => {
                        shared.note_error(e);
                        failed = true;
                        ControlFlow::Break(())
                    }
                }
            });
            if let Err(e) = result {
                shared.note_error(e);
                failed = true;
            }
            if cut {
                out.cut.push((parent, std::mem::take(&mut edge_list)));
            } else if !failed {
                checkpoint::encode_edge_record(local_of(parent), &edge_list, &mut edge_rec_buf);
                if let Err(e) = shared.append_edges(&edge_rec_buf) {
                    shared.note_error(CheckpointError::from(e).into());
                    failed = true;
                }
            }
        }
        // Flush on every exit path — a counted-but-unqueued child
        // would wedge quiescence or drop out of the resume frontier.
        if !born.is_empty() {
            lock(&shared.deques[me]).extend(born.drain(..));
        }
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
        if failed {
            break;
        }
    }
}

/// Writes the exhaustion snapshot in the spill wire format: the
/// rolled-back canonical graph re-encoded, in canonical id order, into
/// fresh `arena-*` / `edges-*` stores (sealed segments referenced by
/// name, unsealed tails embedded). Because ids, parents, and edges are
/// all canonical, the manifest is indistinguishable from one the
/// sequential spill engine would have written — any engine resumes it.
#[allow(clippy::too_many_arguments)]
fn spill_exhaustion_snapshot(
    dir: &Path,
    t: &Tuning,
    states: &[State],
    fps: &[u64],
    init: &[usize],
    edges: &[Vec<Edge>],
    parents: &[Option<(usize, usize)>],
    keep: usize,
    frontier: &[usize],
    options: &ExploreOptions,
    sys_hash: u64,
    layout: Option<&PackedLayout>,
    meter: &Meter,
    rec: &RecorderHandle,
) -> Result<Box<Snapshot>, CheckError> {
    let mut arena = SegmentStore::create(dir, "arena", t.seg_target, t.arena_cache)
        .map_err(CheckpointError::from)?;
    let mut edge_out = SegmentStore::create(dir, "edges", t.seg_target, t.edge_cache)
        .map_err(CheckpointError::from)?;
    let mut in_frontier = vec![false; keep];
    for &f in frontier {
        in_frontier[f] = true;
    }
    let mut scratch = Vec::new();
    let mut buf = Vec::new();
    let mut transitions: u64 = 0;
    for i in 0..keep {
        checkpoint::encode_arena_record(&states[i], fps[i], parents[i], layout, &mut scratch, &mut buf);
        if let Some(meta) = arena.append(&buf).map_err(CheckpointError::from)? {
            spill::note_spill(meter, rec, &spill::seal_info("arena", &arena, &meta));
        }
        // Frontier states re-expand on resume, so they must have no
        // banked edge record — the invariant `capture` enforces by
        // clearing frontier edge lists.
        if !in_frontier[i] {
            checkpoint::encode_edge_record(i, &edges[i], &mut buf);
            if let Some(meta) = edge_out.append(&buf).map_err(CheckpointError::from)? {
                spill::note_spill(meter, rec, &spill::seal_info("edges", &edge_out, &meta));
            }
            transitions += edges[i].len() as u64;
        }
    }
    Ok(Box::new(Snapshot {
        fp_bits: options.fp_bits.clamp(1, 64),
        mode: options.mode,
        reduced: false,
        system_hash: sys_hash,
        seq: 0,
        states: Vec::new(),
        init: init.to_vec(),
        edges: Vec::new(),
        parents: Vec::new(),
        frontier: frontier.to_vec(),
        reduction: None,
        spill: Some(SpillManifest {
            dir: arena.dir().to_path_buf(),
            states: keep as u64,
            transitions,
            arena_segments: arena.sealed().to_vec(),
            arena_hot: arena.hot_records().map(<[u8]>::to_vec).collect(),
            edge_segments: edge_out.sealed().to_vec(),
            edge_hot: edge_out.hot_records().map(<[u8]>::to_vec).collect(),
        }),
    }))
}

/// The engine entry point; see the module docs. Wraps the run with
/// the shared segment-directory policy (persistent next to a
/// checkpoint, ephemeral otherwise).
pub(super) fn explore_spill_ws(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
    threads: usize,
    resume: Option<&Snapshot>,
) -> Result<Exploration, CheckError> {
    let mem = options
        .resolved_mem_budget()
        .unwrap_or(spill::DEFAULT_SPILL_BUDGET);
    let (dir, ephemeral) = spill::spill_dir(budget);
    let result = explore_spill_ws_in(system, budget, options, threads, resume, mem, &dir);
    if ephemeral {
        let _ = std::fs::remove_dir_all(&dir);
    }
    result
}

fn explore_spill_ws_in(
    system: &System,
    budget: &Budget,
    options: &ExploreOptions,
    threads: usize,
    resume: Option<&Snapshot>,
    mem: usize,
    dir: &Path,
) -> Result<Exploration, CheckError> {
    let threads = threads.max(1);
    let compiled = CompiledSystem::compile(system);
    let sys_hash = checkpoint::system_hash(system);
    let mut ck = Checkpointer::new(budget.checkpoint.clone());
    let rec = budget.recorder.clone();
    let t = Tuning::for_budget(mem);
    let meter = match resume {
        Some(snap) => Meter::start_resumed(budget, snap.states_used(), snap.transitions_used()),
        None => Meter::start(budget),
    };

    let init_states: Option<Vec<State>> = match resume {
        Some(_) => None,
        None => {
            let states = system.init().states(system.universe())?;
            if states.is_empty() {
                return Err(CheckError::NoInitialStates);
            }
            Some(states)
        }
    };

    // Layout election as in the work-stealing engine: packed when the
    // declared domains compile and every seed state actually packs.
    let layout_owned = PackedLayout::compile(system.vars()).filter(|l| {
        let packs = |s: &State| l.pack(s).is_some();
        match (&init_states, resume) {
            (Some(states), _) => states.iter().all(packs),
            (None, Some(snap)) => snap.states.iter().all(packs),
            (None, None) => true,
        }
    });
    let layout = layout_owned.as_ref();

    let arena_store = SegmentStore::create(dir, "wsarena", t.seg_target, t.arena_cache)
        .map_err(CheckpointError::from)?;
    let edge_store = SegmentStore::create(dir, "wsedges", t.seg_target, t.edge_cache)
        .map_err(CheckpointError::from)?;
    spill::clean_visited_runs(dir).map_err(CheckpointError::from)?;

    let shared = SpillWsShared {
        visited: Striped::new(SpillShard::new),
        drain: Mutex::new(DrainCtl {
            dir: dir.to_path_buf(),
            seq: 0,
        }),
        arena: Mutex::new(arena_store),
        edges: Mutex::new(edge_store),
        // The budget's hot-tier share (entries × 16 accounted bytes),
        // split evenly across the stripes.
        shard_hot_bytes: (t.hot_cap * 16 / NUM_SHARDS).max(256),
        shard_filter_bytes: t.filter_bytes / NUM_SHARDS,
        deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
        in_flight: AtomicUsize::new(0),
        mask: options.mask(),
        mode: options.mode,
        meter: &meter,
        rec: &rec,
        stop: AtomicBool::new(false),
        reason: Mutex::new(None),
        error: Mutex::new(None),
    };

    let mut init_ids: Vec<u64> = Vec::new();
    let mut exhausted_in_init = false;
    let frontier_seed: Vec<Pid>;
    let mut rec_buf: Vec<u8> = Vec::new();
    let mut pack_scratch: Vec<u8> = Vec::new();
    match (init_states, resume) {
        (None, Some(snap)) => {
            // Re-ingest the materialized snapshot in canonical order,
            // exactly as the sequential spill engine does: arrival ids
            // equal canonical ids, the visited set is rebuilt with
            // first-id-wins inserts, and every non-frontier state gets
            // its edge record banked — the finalization read-back then
            // cannot tell banked work from new work.
            let n = snap.states.len();
            let mut in_frontier = vec![false; n];
            for &f in &snap.frontier {
                in_frontier[f] = true;
            }
            for (id, s) in snap.states.iter().enumerate() {
                let fp = s.fingerprint();
                if let Some(info) = shared
                    .seed_visited(fp, id as u64)
                    .map_err(CheckpointError::from)?
                {
                    spill::note_spill(&meter, &rec, &info);
                }
                checkpoint::encode_arena_record(
                    s,
                    fp,
                    snap.parents[id],
                    layout,
                    &mut pack_scratch,
                    &mut rec_buf,
                );
                let got = shared.append_arena(&rec_buf).map_err(CheckpointError::from)?;
                debug_assert_eq!(got, id as u64, "seeding assigns arrival ids in order");
                if !in_frontier[id] {
                    checkpoint::encode_edge_record(id, &snap.edges[id], &mut rec_buf);
                    shared.append_edges(&rec_buf).map_err(CheckpointError::from)?;
                }
            }
            init_ids = snap.init.iter().map(|&i| i as u64).collect();
            frontier_seed = snap.frontier.iter().map(|&i| pid(0, i)).collect();
        }
        (Some(states), _) => {
            // Initial states intern sequentially so their canonical
            // order is the enumeration order, as in every engine.
            let _init_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreInit);
            let mut read_buf: Vec<u8> = Vec::new();
            let mut cand: Vec<u64> = Vec::new();
            for s in &states {
                let fp = s.fingerprint();
                let r = match options.mode {
                    VisitedMode::Fingerprint => shared.intern_fp(
                        fp,
                        |buf| {
                            checkpoint::encode_arena_record(
                                s,
                                fp,
                                None,
                                layout,
                                &mut pack_scratch,
                                buf,
                            );
                        },
                        &mut rec_buf,
                    ),
                    VisitedMode::Exact => {
                        checkpoint::encode_arena_record(
                            s,
                            fp,
                            None,
                            layout,
                            &mut pack_scratch,
                            &mut rec_buf,
                        );
                        shared.intern_exact(
                            fp,
                            &rec_buf,
                            if layout.is_some() { None } else { Some(s) },
                            layout,
                            &mut read_buf,
                            &mut cand,
                        )
                    }
                };
                match r {
                    Ok((id, true)) => init_ids.push(id),
                    Ok((_, false)) => {}
                    Err(WsStop::Cut(reason)) => {
                        shared.note_exhaustion(reason);
                        exhausted_in_init = true;
                        break;
                    }
                    Err(WsStop::Fail(e)) => return Err(e),
                }
            }
            frontier_seed = init_ids.iter().map(|&i| pid(0, i as usize)).collect();
        }
        (None, None) => unreachable!("fresh runs enumerate initial states above"),
    }

    let observe = meter.observed();
    let mut pending: Vec<Pid> = Vec::new();
    let mut cut_partials: Vec<(Pid, Vec<Edge>)> = Vec::new();
    if exhausted_in_init {
        pending.extend(&frontier_seed);
    } else {
        // Seed the deques round-robin and prime the quiescence counter.
        for (i, &p) in frontier_seed.iter().enumerate() {
            lock(&shared.deques[i % threads]).push_back(p);
        }
        shared
            .in_flight
            .store(frontier_seed.len(), Ordering::Release);
        let expand_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreExpand);
        let outs: Vec<SpillWsOut> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|me| {
                    let shared = &shared;
                    let compiled = &compiled;
                    let recorder = &budget.recorder;
                    scope.spawn(move || {
                        let mut out = SpillWsOut::default();
                        let body = std::panic::AssertUnwindSafe(|| match layout {
                            Some(l) => run_worker_packed(shared, compiled, l, me, &mut out),
                            None => run_worker_tree(shared, compiled, me, &mut out),
                        });
                        if let Err(payload) = std::panic::catch_unwind(body) {
                            // Backstop, not panic tolerance: raise the
                            // stop flag so the peers' quiescence spin
                            // terminates, note the casualty, then let
                            // the panic surface through the scope.
                            shared.stop.store(true, Ordering::Relaxed);
                            if recorder.enabled() {
                                recorder.record(&Event::WorkerFailure {
                                    worker: me,
                                    level: 0,
                                    requeued: 0,
                                });
                            }
                            std::panic::resume_unwind(payload);
                        }
                        out
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join()
                        .unwrap_or_else(|p| -> SpillWsOut { std::panic::resume_unwind(p) })
                })
                .collect()
        });
        drop(expand_phase);
        for (worker, out) in outs.iter().enumerate() {
            if observe {
                budget.recorder.record(&Event::WorkerLevel {
                    worker,
                    level: 0,
                    claimed: out.claimed,
                    inserted: out.inserted,
                });
            }
        }
        for mut out in outs {
            pending.append(&mut out.interrupted);
            cut_partials.append(&mut out.cut);
        }
        // Deque remnants after a budget stop are honestly pending.
        for d in &shared.deques {
            pending.extend(lock(d).drain(..));
        }
    }

    if let Some(e) = lock(&shared.error).take() {
        return Err(e);
    }
    let SpillWsShared {
        arena,
        edges: edge_mutex,
        reason,
        ..
    } = shared;
    let arena_store = arena.into_inner().unwrap_or_else(PoisonError::into_inner);
    let edge_store = edge_mutex
        .into_inner()
        .unwrap_or_else(PoisonError::into_inner);
    let reason = reason.into_inner().unwrap_or_else(PoisonError::into_inner);

    if rec.enabled() {
        let a = arena_store.cache_stats();
        let e = edge_store.cache_stats();
        rec.record(&Event::CacheStats {
            hits: a.hits + e.hits,
            misses: a.misses + e.misses,
            evictions: a.evictions + e.evictions,
            resident_bytes: a.resident_bytes + e.resident_bytes,
            spilled_bytes: meter.spilled_bytes(),
        });
    }

    let renumber_phase = PhaseGuard::enter(&budget.recorder, Phase::ExploreRenumber);
    let n = arena_store.len() as usize;
    // Decode the arena stream in arrival order (sealed segments, then
    // the unsealed tail), like the sequential engine's teardown.
    let mut arr_states: Vec<Option<State>> = Vec::with_capacity(n);
    let mut arr_fps: Vec<u64> = Vec::with_capacity(n);
    {
        let mut take = |bytes: &[u8]| -> Result<(), CheckpointError> {
            let r = checkpoint::decode_arena_record(bytes, layout)?;
            arr_states.push(Some(r.state));
            arr_fps.push(r.fp);
            Ok(())
        };
        for meta in arena_store.sealed() {
            let segment = store::read_segment(&arena_store.dir().join(&meta.name), Some(meta))
                .map_err(CheckpointError::from)?;
            for bytes in segment {
                take(&bytes)?;
            }
        }
        for bytes in arena_store.hot_records() {
            take(bytes)?;
        }
    }

    // Rebuild the edge-record runs: banked records (one contiguous run
    // per completed parent, in id order) plus the in-RAM partial runs
    // of cut parents — cut parents never wrote a record, so the runs
    // are disjoint and the replay sees each parent's edges exactly
    // once.
    let banked_edges = spill::collect_edges(&edge_store, n)?;
    let mut all_edges: Vec<Vec<(Pid, u32, Pid)>> = Vec::new();
    let total: usize = banked_edges.iter().map(Vec::len).sum();
    let mut recs: Vec<(Pid, u32, Pid)> = Vec::with_capacity(total);
    for (id, es) in banked_edges.iter().enumerate() {
        for e in es {
            recs.push((pid(0, id), e.action as u32, pid(0, e.target)));
        }
    }
    if !recs.is_empty() {
        all_edges.push(recs);
    }
    for (parent, es) in &cut_partials {
        if es.is_empty() {
            continue;
        }
        all_edges.push(
            es.iter()
                .map(|e| (*parent, e.action as u32, pid(0, e.target)))
                .collect(),
        );
    }
    let init_pids: Vec<Pid> = init_ids.iter().map(|&i| pid(0, i as usize)).collect();
    let (mut replay, order) = replay_records_order(&[n], &all_edges, &init_pids);
    replay.states = order
        .iter()
        .map(|&p| {
            arr_states[local_of(p)]
                .take()
                .expect("each arrival id appears once in the canonical order")
        })
        .collect();
    let Replay {
        canon,
        states,
        edges,
        parents,
        init,
        depth,
    } = replay;

    // Exhaustion snapshot at the quiescent point, rolled back to the
    // deepest consistent level boundary of the canonical graph.
    let (snapshot, resume_token) = match reason {
        Some(_) if !exhausted_in_init => {
            let (keep, frontier_ids) = rollback_cut(&canon, &depth, states.len(), &pending);
            if ck.active() {
                let canon_fps: Vec<u64> = order.iter().map(|&p| arr_fps[local_of(p)]).collect();
                let snap = spill_exhaustion_snapshot(
                    dir,
                    &t,
                    &states,
                    &canon_fps,
                    &init,
                    &edges,
                    &parents,
                    keep,
                    &frontier_ids,
                    options,
                    sys_hash,
                    layout,
                    &meter,
                    &rec,
                )?;
                let token = ck.write((*snap).clone(), &budget.recorder);
                (Some(snap), token)
            } else {
                seq_exhaustion_snapshot(
                    &mut ck,
                    budget,
                    &states,
                    &init,
                    &edges,
                    &parents,
                    keep,
                    &frontier_ids,
                    options,
                    false,
                    sys_hash,
                    None,
                )
            }
        }
        _ => (None, None),
    };

    // The final visited map, rebuilt from the canonical order — the
    // same first-id-wins map the sequential spill engine produces
    // (its hot-tier move is this map when nothing ever drained).
    let visited = match options.mode {
        VisitedMode::Fingerprint => {
            let mask = options.mask();
            let mut map: FxHashMap<u64, usize> = FxHashMap::default();
            map.reserve(states.len());
            for (id, &p) in order.iter().enumerate() {
                map.entry(arr_fps[local_of(p)] & mask).or_insert(id);
            }
            Visited::Fingerprint { map, mask }
        }
        VisitedMode::Exact => {
            let mut map: HashMap<State, usize> = HashMap::with_capacity(states.len());
            for (id, s) in states.iter().enumerate() {
                map.insert(s.clone(), id);
            }
            Visited::Exact(map)
        }
    };
    let graph = StateGraph {
        states,
        visited,
        init,
        edges,
        parents,
        reduced: false,
        canon: None,
    };
    drop(renumber_phase);

    let outcome = match reason {
        None => Outcome::Complete,
        Some(reason) => Outcome::Exhausted {
            reason,
            frontier_size: {
                pending.sort_unstable();
                pending.dedup();
                pending.len()
            },
            stats: graph.stats(),
            resume: resume_token,
        },
    };
    let mut frontier: Vec<usize> = pending
        .iter()
        .filter_map(|&p| {
            let c = canon[shard_of(p)][local_of(p)];
            (c != u32::MAX).then_some(c as usize)
        })
        .collect();
    frontier.sort_unstable();
    frontier.dedup();
    Ok(Exploration {
        graph,
        outcome,
        frontier,
        reduction: None,
        snapshot,
    })
}
